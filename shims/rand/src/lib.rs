//! Offline shim for `rand` 0.8: the trait and sampling surface this
//! workspace uses, with deterministic, platform-independent behavior.
//!
//! `SeedableRng::seed_from_u64` reproduces the PCG32-based seed
//! expansion of `rand_core` 0.6 so that seeded generators (notably
//! `rand_chacha::ChaCha8Rng`) produce stable streams across runs.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with a PCG32 stream (the same
    /// scheme `rand_core` 0.6 uses), then calls [`Self::from_seed`].
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A distribution that can produce values of `T` from an RNG.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over a type's natural domain
/// (floats in `[0, 1)`).
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits, as rand's Standard does for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Types that `gen_range` can sample uniformly.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: low >= high");
                let span = (high as u64).wrapping_sub(low as u64);
                // Widening-multiply range reduction; bias is < 2^-64 per
                // draw, far below anything observable here.
                let hi = (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low >= high");
        let u: f64 = Standard.sample(rng);
        low + u * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: low >= high");
        let u: f32 = Standard.sample(rng);
        low + u * (high - low)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (low, high) = self.into_inner();
        if low == high {
            return low;
        }
        usize::sample_range(rng, low, high + 1)
    }
}

/// High-level convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, matching rand's visitation order.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut r = Step(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = Step(3);
        for _ in 0..1000 {
            let x = r.gen_range(-0.8..0.8);
            assert!((-0.8..0.8).contains(&x));
            let n = r.gen_range(5usize..17);
            assert!((5..17).contains(&n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..100).collect();
        let mut r = Step(11);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }
}
