//! Offline shim for `serde`: `Serialize`/`Deserialize` defined over a
//! small self-describing [`Value`] data model instead of serde's
//! visitor machinery. `serde_json` (the shim) renders and parses
//! `Value`; the `serde_derive` shim generates these impls for plain
//! structs and simple enums.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Self-describing tree a type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (exact).
    U64(u64),
    /// Negative integers (exact).
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: a human-readable path + expectation.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

fn expected(what: &str, got: &Value) -> DeError {
    DeError(format!("expected {what}, got {got:?}"))
}

// ---- primitives ----

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(expected("bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n).map_err(DeError::custom),
                    Value::I64(n) => <$t>::try_from(*n).map_err(DeError::custom),
                    other => Err(expected("unsigned integer", other)),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n).map_err(DeError::custom),
                    Value::I64(n) => <$t>::try_from(*n).map_err(DeError::custom),
                    other => Err(expected("integer", other)),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(expected("single-char string", other)),
        }
    }
}

// ---- forwarding / containers ----

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(expected("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $name::from_value(
                                it.next().ok_or_else(|| DeError::custom("tuple too short"))?
                            )?,
                        )+))
                    }
                    other => Err(expected("tuple sequence", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(expected("map", other)),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for stable output.
        let mut entries: Vec<_> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(expected("map", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn round_trip_containers() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let a = [1u32, 2, 3];
        assert_eq!(<[u32; 3]>::from_value(&a.to_value()).unwrap(), a);
        let t = (1u64, 2.5f64);
        assert_eq!(<(u64, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn type_mismatch_is_error() {
        assert!(bool::from_value(&Value::F64(1.0)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}
