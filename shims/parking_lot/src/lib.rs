//! Offline shim for `parking_lot`: a `Mutex` with the poison-free
//! `lock()` signature, backed by `std::sync::Mutex`.

use std::fmt;
use std::sync::Mutex as StdMutex;

/// Guard type returned by [`Mutex::lock`] — the std guard, re-exported so
/// callers can name it as `parking_lot::MutexGuard` like the real crate.
pub use std::sync::MutexGuard;

/// Drop-in replacement for `parking_lot::Mutex`.
///
/// `lock()` returns the guard directly (no `Result`); a poisoned inner
/// mutex is recovered, matching parking_lot's no-poisoning semantics.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
