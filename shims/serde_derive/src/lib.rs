//! Offline shim for `serde_derive`: generates impls of the `serde`
//! shim's `Serialize`/`Deserialize` traits (which are defined over a
//! self-describing `Value` tree, not serde's visitor API).
//!
//! Supported shapes — exactly what this workspace derives on:
//!
//! - structs with named fields (no generics),
//! - enums whose variants are unit or single-field tuples,
//! - `#[serde(default)]` / `#[serde(default = "path")]` on named fields
//!   (missing keys deserialize to `Default::default()` / `path()` instead
//!   of erroring — schema-evolution support for persisted artifacts).
//!
//! Anything else produces a `compile_error!` naming the limitation, so
//! unsupported usage fails loudly at the definition site.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving type.
enum Shape {
    /// Named-field struct: (name, fields).
    Struct(String, Vec<Field>),
    /// Enum: (name, variants), each variant unit or 1-tuple.
    Enum(String, Vec<Variant>),
}

/// One named struct field and its missing-key behaviour.
struct Field {
    name: String,
    /// `None` — required; `Some(None)` — `Default::default()`;
    /// `Some(Some(path))` — call `path()`.
    default: Option<Option<String>>,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Single-field tuple variant.
    Tuple1,
    /// Struct variant with named fields.
    Struct(Vec<Field>),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips attribute tokens (`#` followed by a bracket group), returning
/// the next non-attribute token.
fn next_skipping_attrs(iter: &mut impl Iterator<Item = TokenTree>) -> Option<TokenTree> {
    loop {
        match iter.next()? {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the attribute body.
                iter.next();
            }
            tok => return Some(tok),
        }
    }
}

fn parse_input(input: TokenStream) -> Result<Shape, String> {
    let mut iter = input.into_iter();

    // Header: attributes / visibility / struct|enum keyword.
    let kind = loop {
        match next_skipping_attrs(&mut iter) {
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => continue,
            // `pub(crate)` etc: visibility restriction group.
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => continue,
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break kw;
                }
                return Err(format!("unexpected token `{kw}` before struct/enum"));
            }
            Some(tok) => return Err(format!("unexpected token `{tok}` before struct/enum")),
            None => return Err("ran out of tokens before struct/enum".into()),
        }
    };

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };

    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "serde_derive shim: generic type `{name}` is not supported"
            ));
        }
        other => {
            return Err(format!(
                "serde_derive shim: `{name}` must be a braced struct or enum, got {other:?}"
            ));
        }
    };

    if kind == "struct" {
        Ok(Shape::Struct(name, parse_struct_fields(body)?))
    } else {
        Ok(Shape::Enum(name, parse_enum_variants(body)?))
    }
}

/// Parses a captured attribute body for `serde(default)` /
/// `serde(default = "path")`. Returns the field-default behaviour it
/// declares, if any.
fn parse_serde_default(attr: &TokenStream) -> Option<Option<String>> {
    let mut iter = attr.clone().into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let mut inner = inner.into_iter();
    match inner.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        _ => return None,
    }
    match inner.next() {
        None => Some(None),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => match inner.next() {
            Some(TokenTree::Literal(lit)) => {
                let path = lit.to_string();
                Some(Some(path.trim_matches('"').to_string()))
            }
            _ => None,
        },
        _ => None,
    }
}

fn parse_struct_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter();
    loop {
        // Field name (after attrs / visibility), capturing any
        // `#[serde(default...)]` attribute on the way.
        let mut default = None;
        let field = loop {
            match iter.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        if let Some(d) = parse_serde_default(&g.stream()) {
                            default = Some(d);
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => continue,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => continue,
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(tok) => return Err(format!("expected field name, got `{tok}`")),
            }
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{field}`, got {other:?}")),
        }
        // Skip the type up to a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field {
            name: field,
            default,
        });
    }
}

fn parse_enum_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        let name = loop {
            match next_skipping_attrs(&mut iter) {
                None => return Ok(variants),
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(tok) => return Err(format!("expected variant name, got `{tok}`")),
            }
        };
        let mut kind = VariantKind::Unit;
        match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                // Count top-level commas: exactly one field supported.
                let mut angle_depth = 0i32;
                let mut commas = 0;
                let mut empty = true;
                for tok in g.stream() {
                    empty = false;
                    match tok {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                            commas += 1
                        }
                        _ => {}
                    }
                }
                if empty || commas > 0 {
                    return Err(format!(
                        "serde_derive shim: tuple variant `{name}` must have exactly one field"
                    ));
                }
                kind = VariantKind::Tuple1;
                iter.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                kind = VariantKind::Struct(parse_struct_fields(g.stream())?);
                iter.next();
            }
            _ => {}
        }
        // Consume a trailing comma if present.
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        variants.push(Variant { name, kind });
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_input(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(String::from({f:?}), serde::Serialize::to_value(&self.{f})),")
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{
                     fn to_value(&self) -> serde::Value {{
                         serde::Value::Map(vec![{entries}])
                     }}
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("{name}::{vn} => serde::Value::Str(String::from({vn:?})),")
                        }
                        VariantKind::Tuple1 => format!(
                            "{name}::{vn}(inner) => serde::Value::Map(vec![(String::from({vn:?}), serde::Serialize::to_value(inner))]),"
                        ),
                        VariantKind::Struct(fields) => {
                            let bindings = fields
                                .iter()
                                .map(|f| f.name.as_str())
                                .collect::<Vec<_>>()
                                .join(", ");
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!("(String::from({f:?}), serde::Serialize::to_value({f})),")
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {bindings} }} => serde::Value::Map(vec![(String::from({vn:?}), serde::Value::Map(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{
                     fn to_value(&self) -> serde::Value {{
                         match self {{ {arms} }}
                     }}
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Generates one struct-field initializer for deserialization, honouring
/// the field's `#[serde(default)]` behaviour when the key is missing.
fn field_init(owner: &str, source: &str, f: &Field) -> String {
    let name = &f.name;
    match &f.default {
        None => format!(
            "{name}: serde::Deserialize::from_value(
                 {source}.get({name:?}).ok_or_else(|| serde::DeError::custom(
                     concat!(\"missing field `\", {name:?}, \"` in {owner}\")))?)?,"
        ),
        Some(None) => format!(
            "{name}: match {source}.get({name:?}) {{
                 Some(val) => serde::Deserialize::from_value(val)?,
                 None => std::default::Default::default(),
             }},"
        ),
        Some(Some(path)) => format!(
            "{name}: match {source}.get({name:?}) {{
                 Some(val) => serde::Deserialize::from_value(val)?,
                 None => {path}(),
             }},"
        ),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_input(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct(name, fields) => {
            let inits: String = fields.iter().map(|f| field_init(&name, "v", f)).collect();
            format!(
                "impl serde::Deserialize for {name} {{
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{
                         if v.as_map().is_none() {{
                             return Err(serde::DeError::custom(\"expected map for {name}\"));
                         }}
                         Ok({name} {{ {inits} }})
                     }}
                 }}"
            )
        }
        Shape::Enum(name, variants) => {
            let str_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => Ok({name}::{vn}),")
                })
                .collect();
            let map_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple1 => Some(format!(
                            "{vn:?} => Ok({name}::{vn}(serde::Deserialize::from_value(_inner)?)),"
                        )),
                        VariantKind::Struct(fields) => {
                            let owner = format!("{name}::{vn}");
                            let inits: String = fields
                                .iter()
                                .map(|f| field_init(&owner, "_inner", f))
                                .collect();
                            Some(format!("{vn:?} => Ok({name}::{vn} {{ {inits} }}),"))
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{
                     fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{
                         match v {{
                             serde::Value::Str(s) => match s.as_str() {{
                                 {str_arms}
                                 other => Err(serde::DeError::custom(
                                     format!(\"unknown {name} variant {{other:?}}\"))),
                             }},
                             serde::Value::Map(entries) if entries.len() == 1 => {{
                                 let (tag, _inner) = &entries[0];
                                 match tag.as_str() {{
                                     {map_arms}
                                     other => Err(serde::DeError::custom(
                                         format!(\"unknown {name} variant {{other:?}}\"))),
                                 }}
                             }}
                             other => Err(serde::DeError::custom(
                                 format!(\"expected {name} variant, got {{other:?}}\"))),
                         }}
                     }}
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
