//! Offline shim for `criterion`: a real (if simple) timing harness
//! behind criterion's API. Each benchmark is warmed up, then run for a
//! fixed number of samples; every sample times an adaptively chosen
//! batch of iterations and the median per-iteration time is reported.
//!
//! Not implemented: statistical regression analysis, HTML reports,
//! baselines. The point is honest wall-time numbers in an air-gapped
//! environment, printed one line per benchmark:
//!
//! ```text
//! group/bench             time:   [1.2345 ms]  (N samples)
//! ```

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
/// Target wall time for one sample (a batch of iterations).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(50);
const WARMUP_TIME: Duration = Duration::from_millis(200);

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Iteration driver passed to benchmark closures.
pub struct Bencher {
    /// Iterations the routine should run this sample.
    iters: u64,
    /// Measured wall time for those iterations.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<S, O, FS, FR>(&mut self, mut setup: FS, mut routine: FR, _size: BatchSize)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut outputs = Vec::with_capacity(self.iters as usize);
        let start = Instant::now();
        for _ in 0..self.iters {
            outputs.push(f());
        }
        self.elapsed = start.elapsed();
        drop(outputs);
    }
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `name/parameter` or just `parameter`.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

fn run_benchmark(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: also yields a per-iteration estimate for batch sizing.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warmup_start = Instant::now();
    let mut warmup_iters: u64 = 0;
    let mut est = Duration::ZERO;
    while warmup_start.elapsed() < WARMUP_TIME {
        f(&mut bencher);
        warmup_iters += bencher.iters;
        est = bencher.elapsed;
        if est > WARMUP_TIME {
            break;
        }
    }
    let _ = warmup_iters;

    // Pick an iteration count per sample aiming at TARGET_SAMPLE_TIME.
    let per_iter = est.max(Duration::from_nanos(1));
    let iters_per_sample = (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 20);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.iters = iters_per_sample as u64;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];

    println!(
        "{name:<55} time:   [{}]  ({} samples x {} iters)",
        format_time(median),
        sample_size,
        iters_per_sample
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} us", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Declares a benchmark-group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut count = 0u64;
        c.bench_function("shim/self_test", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::from_parameter(10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
    }
}
