//! Offline shim for `proptest`: random-input property testing with the
//! subset of proptest's API this workspace uses — the `proptest!`
//! macro, `Strategy` with `prop_map`, numeric range strategies, tuple
//! strategies, `proptest::collection::vec`, `Just`, `prop_oneof!`, and
//! the `prop_assert*`/`prop_assume!` macros.
//!
//! Simplifications vs. real proptest: no shrinking (a failing case
//! reports its inputs via `Debug` where available, and always its case
//! number and seed), and case generation is derived deterministically
//! from the test's module path + case index, so failures reproduce
//! exactly on re-run.

use std::ops::Range;

/// Runner configuration (`cases` = number of generated inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Sentinel error used by `prop_assume!` to skip a case.
pub const ASSUME_REJECT: &str = "__proptest_shim_assume_rejected__";

/// Deterministic splitmix64 generator for case inputs.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<U, S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy<Value = U>,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, S2: Strategy<Value = T>, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty integer range strategy");
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(__path, __case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| { { $body } ::std::result::Result::Ok(()) })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(e) if e == $crate::ASSUME_REJECT => {}
                    ::std::result::Result::Err(e) => {
                        panic!("property `{}` failed at case {}: {}", __path, __case, e);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside `proptest!`, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {}", stringify!($a), stringify!($b)));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let __a = $a;
        let __b = $b;
        if !(__a == __b) {
            return ::std::result::Result::Err(
                format!("assertion failed: {} == {}: {}",
                    stringify!($a), stringify!($b), format!($($fmt)+)));
        }
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let __a = $a;
        let __b = $b;
        if __a == __b {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

/// Skips the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::ASSUME_REJECT.to_string());
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let __choices: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strategy)),+];
        $crate::OneOf(__choices)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, u64)> {
        (0.5..1.5f64, 10u64..20).prop_map(|(x, n)| (x * 2.0, n + 1))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -0.8..0.8f64, n in 3usize..9) {
            prop_assert!((-0.8..0.8).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn mapped_strategies_apply(pair in arb_pair()) {
            prop_assert!((1.0..3.0).contains(&pair.0));
            prop_assert!((11..=20).contains(&pair.1));
        }

        #[test]
        fn vec_strategy_respects_size(v in crate::collection::vec((0.1..2.0f64, 0.1..2.0f64), 1..40)) {
            prop_assert!((1..40).contains(&v.len()));
            for (a, b) in &v {
                prop_assert!(*a >= 0.1 && *a < 2.0, "a = {}", a);
                prop_assert!(*b >= 0.1 && *b < 2.0);
            }
        }

        #[test]
        fn oneof_and_assume(pick in prop_oneof![Just(1u32), Just(2), Just(3)], n in 0u32..10) {
            prop_assume!(n != 5);
            prop_assert!(pick >= 1 && pick <= 3);
            prop_assert_ne!(n, 5);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("x::y", 3);
        let mut b = crate::TestRng::for_case("x::y", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x::y", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
