//! Offline shim for `serde_json`: renders and parses the `serde`
//! shim's [`serde::Value`] tree as standard JSON.
//!
//! Floats are written with Rust's shortest round-trip `Display`, so a
//! serialize → parse cycle reproduces every `f64` bit-exactly (finite
//! values; non-finite floats serialize as `null`, as serde_json does).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error type for both serialization and parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes a value to human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep integral floats distinguishable as numbers ("1.0").
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => render_f64(*x, out),
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render(val, out);
            }
            out.push('}');
        }
    }
}

fn render_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                render_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                render_string(k, out);
                out.push_str(": ");
                render_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => render(other, out),
    }
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!(
                        "invalid literal at offset {}",
                        self.pos
                    )))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                b as char, self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path over unescaped runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )));
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            // Keep integers exact (u64 seeds exceed f64's 53-bit mantissa).
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<i64>() {
                    return Ok(Value::I64(-n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested_value() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("kernel \"a\"\n".into())),
            (
                "xs".into(),
                Value::Seq(vec![Value::F64(1.5), Value::F64(0.1 + 0.2), Value::Null]),
            ),
            ("n".into(), Value::U64(u64::MAX)),
            ("neg".into(), Value::I64(-42)),
            ("ok".into(), Value::Bool(true)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for &x in &[1.0 / 3.0, 6.02214076e23, 1e-300, -0.0, 123456789.25] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("\"open").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::U64(1), Value::U64(2)])),
            (
                "b".into(),
                Value::Map(vec![("c".into(), Value::Bool(false))]),
            ),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Value>(&s).unwrap(), v);
    }
}
