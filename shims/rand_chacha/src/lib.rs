//! Offline shim for `rand_chacha`: a real ChaCha8 keystream generator
//! implementing the `rand` shim's `RngCore`/`SeedableRng` traits.
//!
//! The block function is the standard ChaCha construction (IETF
//! constants, 8 rounds); output words are emitted in block order, so a
//! given seed always yields the same stream on every platform.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, seeded with a 256-bit key.
#[derive(Clone)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (words 12-13 of the state).
    counter: u64,
    /// Stream/nonce words (14-15); fixed at zero.
    stream: [u32; 2],
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream[0];
        state[15] = self.stream[1];

        let mut working = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buffer[i] = working[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Word position in the keystream (used by tests; mirrors
    /// rand_chacha's `get_word_pos` in spirit).
    pub fn word_pos(&self) -> u128 {
        (self.counter as u128) * 16 + self.index as u128
    }
}

impl std::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaCha8Rng")
            .field("counter", &self.counter)
            .field("index", &self.index)
            .finish()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            stream: [0, 0],
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "streams should be uncorrelated, {same} collisions"
        );
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..21 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.word_pos(), b.word_pos());
        for _ in 0..40 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn keystream_words_look_uniform() {
        // Cheap sanity check: bit balance over a few thousand words.
        let mut r = ChaCha8Rng::seed_from_u64(1234);
        let mut ones = 0u64;
        const N: u64 = 4096;
        for _ in 0..N {
            ones += r.next_u32().count_ones() as u64;
        }
        let frac = ones as f64 / (N as f64 * 32.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }
}
