//! Offline shim for `rayon`: genuinely parallel iterators built on
//! `std::thread::scope`, covering the adapter surface this workspace
//! uses (`par_iter`, `par_iter_mut`, `into_par_iter`, `map`, `filter`,
//! `enumerate`, `copied`, `for_each`, `sum`, `reduce`, `collect`).
//!
//! Differences from real rayon, by design:
//!
//! - Adapters are **eager**: each `map` materializes its results before
//!   the next adapter runs. For the chunky closures this workspace
//!   parallelizes (whole frequency sweeps, whole tree fits) the extra
//!   allocation is noise.
//! - Item order is always preserved: work is dealt round-robin to a
//!   bounded set of worker threads and scattered back by index, so
//!   `collect` returns exactly what the sequential iterator would.
//! - Nested parallelism is throttled by a global thread budget instead
//!   of a work-stealing pool: inner `par_iter`s fall back to sequential
//!   execution once the budget is exhausted, bounding total threads to
//!   roughly the core count.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
    };
}

/// Outstanding worker threads across all live `par_*` calls.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parallel map preserving input order. Falls back to a sequential map
/// when the item count is small or the thread budget is spent.
fn pmap<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let budget = max_threads().saturating_sub(ACTIVE_WORKERS.load(Ordering::Relaxed));
    let workers = budget.min(n);
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Deal items round-robin so unevenly sized work spreads out.
    let mut buckets: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        buckets[i % workers].push((i, item));
    }

    ACTIVE_WORKERS.fetch_add(workers, Ordering::Relaxed);
    let f = &f;
    let produced: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    });
    ACTIVE_WORKERS.fetch_sub(workers, Ordering::Relaxed);

    // Scatter back by index to restore input order.
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for chunk in produced {
        for (i, u) in chunk {
            out[i] = Some(u);
        }
    }
    out.into_iter().map(|slot| slot.unwrap()).collect()
}

/// An order-preserving parallel iterator over materialized items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<U, F>(self, f: F) -> ParIter<U>
    where
        U: Send,
        F: Fn(T) -> U + Send + Sync,
    {
        ParIter {
            items: pmap(self.items, f),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Send + Sync,
    {
        pmap(self.items, f);
    }

    pub fn filter<F>(self, f: F) -> ParIter<T>
    where
        F: Fn(&T) -> bool + Send + Sync,
    {
        ParIter {
            items: self.items.into_iter().filter(|t| f(t)).collect(),
        }
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> T
    where
        Id: Fn() -> T + Send + Sync,
        Op: Fn(T, T) -> T + Send + Sync,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<T>,
    {
        self.items.into_iter().collect()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }
}

impl<'a, T: Copy + Send + Sync> ParIter<&'a T> {
    pub fn copied(self) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().copied().collect(),
        }
    }
}

impl<'a, T: Clone + Send + Sync> ParIter<&'a T> {
    pub fn cloned(self) -> ParIter<T> {
        ParIter {
            items: self.items.into_iter().cloned().collect(),
        }
    }
}

/// By-value conversion (`Vec<T>`, ranges).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! impl_range_into_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}

impl_range_into_par!(u32, u64, usize, i32, i64);

/// By-shared-reference conversion (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// By-mutable-reference conversion (`.par_iter_mut()`).
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let budget = max_threads().saturating_sub(ACTIVE_WORKERS.load(Ordering::Relaxed));
    if budget <= 1 {
        return (a(), b());
    }
    ACTIVE_WORKERS.fetch_add(1, Ordering::Relaxed);
    let out = std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon shim join worker panicked"))
    });
    ACTIVE_WORKERS.fetch_sub(1, Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_over_range() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 100);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v = vec![1u64; 64];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn sum_and_reduce_agree() {
        let v: Vec<f64> = (0..257).map(|i| i as f64).collect();
        let a: f64 = v.par_iter().copied().sum();
        let b = v.par_iter().copied().reduce(|| 0.0, |x, y| x + y);
        assert_eq!(a, b);
    }

    #[test]
    fn nested_parallelism_terminates() {
        let out: Vec<usize> = (0..32usize)
            .into_par_iter()
            .map(|i| {
                (0..32usize)
                    .into_par_iter()
                    .map(|j| i * j)
                    .collect::<Vec<_>>()
                    .len()
            })
            .collect();
        assert!(out.iter().all(|&n| n == 32));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }
}
