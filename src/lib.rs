//! # energy-repro — workspace umbrella crate
//!
//! Reproduction of *"Domain-Specific Energy Modeling for Drug Discovery and
//! Magnetohydrodynamics Applications"* (SC-W 2023). This crate re-exports
//! the workspace members so the examples and cross-crate integration tests
//! have a single import surface; the substance lives in the member crates:
//!
//! * [`gpu_sim`] — analytical DVFS GPU simulator (V100/MI100 stand-in)
//! * [`synergy`] — portable energy profiling / frequency scaling API
//! * [`cronos`] — finite-volume MHD solver (the Cronos stand-in)
//! * [`ligen`] — molecular docking & virtual screening (the LiGen stand-in)
//! * [`ml`] — from-scratch regression models, CV, and metrics
//! * [`energy_model`] — the paper's contribution: general-purpose and
//!   domain-specific energy/time models with Pareto-front analysis
//! * [`governor`] — the online frequency governor: versioned model
//!   registry, batched prediction serving, and deadline-aware closed-loop
//!   DVFS over the trained models

pub use cronos;
pub use energy_model;
pub use governor;
pub use gpu_sim;
pub use ligen;
pub use ml;
pub use synergy;
