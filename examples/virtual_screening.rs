//! Drug-discovery scenario: run a real virtual-screening campaign — dock
//! and score a synthetic chemical library against a pocket (Algorithm 2 of
//! the paper) — then measure the batched GPU workload's energy behaviour.
//!
//! ```text
//! cargo run --release --example virtual_screening
//! ```

use energy_repro::gpu_sim::DeviceSpec;
use energy_repro::ligen::dock::DockParams;
use energy_repro::ligen::{virtual_screening, ChemLibrary, GpuLigen, Pocket};
use energy_repro::synergy::{FrequencyPolicy, SynergyQueue};

fn main() {
    // --- Part 1: the actual chemistry -----------------------------------
    let library = ChemLibrary::generate(64, 31, 4, 2024);
    let pocket = Pocket::synthesize(24, 20.0, 6, 7);
    let params = DockParams::default();

    println!(
        "screening {} ligands (31 atoms, 4 fragments) against a pocket with {} sites",
        library.len(),
        pocket.sites().len()
    );
    let results = virtual_screening(&library, &pocket, &params);

    println!("\ntop 8 candidates (lower score = stronger predicted binding):");
    println!("  rank  ligand  score");
    for (rank, r) in results.iter().take(8).enumerate() {
        println!("  {:4}  {:6}  {:8.3}", rank + 1, r.ligand_id, r.score);
    }
    println!(
        "  … worst: ligand {} at {:.3}",
        results.last().unwrap().ligand_id,
        results.last().unwrap().score
    );

    // --- Part 2: the energy experiment ----------------------------------
    println!("\nGPU energy behaviour of a production-size batch (paper §3.2):");
    let workload = GpuLigen::new(10_000, 89, 20);
    let spec = DeviceSpec::v100();

    let mut q = SynergyQueue::for_spec(spec.clone());
    let base = workload.run(&mut q);
    println!(
        "  default clock ({:.0} MHz): {:.3} s, {:.1} J",
        spec.default_core_mhz, base.time_s, base.energy_j
    );
    for f in [1000.0, 1250.0, spec.max_core_mhz()] {
        let mut q = SynergyQueue::for_spec(spec.clone());
        q.set_policy(FrequencyPolicy::Fixed(f));
        let m = workload.run(&mut q);
        println!(
            "  {:6.0} MHz: {:.3} s ({:+.1}%), {:.1} J ({:+.1}%)",
            f,
            m.time_s,
            (m.time_s / base.time_s - 1.0) * 100.0,
            m.energy_j,
            (m.energy_j / base.energy_j - 1.0) * 100.0
        );
    }
    println!("\nDocking is compute-bound: the top clock buys ~20% speed at a");
    println!("steep energy premium — the paper's LiGen headline (Fig. 10b).");
}
