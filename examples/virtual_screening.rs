//! Drug-discovery scenario: run a real virtual-screening campaign — dock
//! and score a synthetic chemical library against a pocket (Algorithm 2 of
//! the paper) — then measure the batched GPU workload's energy behaviour.
//!
//! ```text
//! cargo run --release --example virtual_screening
//! ```

use energy_repro::energy_model::persist::atomic_write_str;
use energy_repro::gpu_sim::DeviceSpec;
use energy_repro::ligen::dock::DockParams;
use energy_repro::ligen::{virtual_screening, ChemLibrary, GpuLigen, Pocket};
use energy_repro::synergy::{FrequencyPolicy, SynergyQueue};
use serde::Serialize;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: the actual chemistry -----------------------------------
    let library = ChemLibrary::generate(64, 31, 4, 2024);
    let pocket = Pocket::synthesize(24, 20.0, 6, 7);
    let params = DockParams::default();

    println!(
        "screening {} ligands (31 atoms, 4 fragments) against a pocket with {} sites",
        library.len(),
        pocket.sites().len()
    );
    let results = virtual_screening(&library, &pocket, &params);

    println!("\ntop 8 candidates (lower score = stronger predicted binding):");
    println!("  rank  ligand  score");
    for (rank, r) in results.iter().take(8).enumerate() {
        println!("  {:4}  {:6}  {:8.3}", rank + 1, r.ligand_id, r.score);
    }
    if let Some(worst) = results.last() {
        println!(
            "  … worst: ligand {} at {:.3}",
            worst.ligand_id, worst.score
        );
    }

    // --- Part 2: the energy experiment ----------------------------------
    println!("\nGPU energy behaviour of a production-size batch (paper §3.2):");
    let workload = GpuLigen::new(10_000, 89, 20);
    let spec = DeviceSpec::v100();

    let mut q = SynergyQueue::for_spec(spec.clone());
    let base = workload.run(&mut q);
    println!(
        "  default clock ({:.0} MHz): {:.3} s, {:.1} J",
        spec.default_core_mhz, base.time_s, base.energy_j
    );
    #[derive(Serialize)]
    struct EnergyRow {
        freq_mhz: f64,
        time_s: f64,
        energy_j: f64,
    }
    let mut rows = Vec::new();
    for f in [1000.0, 1250.0, spec.max_core_mhz()] {
        let mut q = SynergyQueue::for_spec(spec.clone());
        q.set_policy(FrequencyPolicy::Fixed(f));
        let m = workload.run(&mut q);
        println!(
            "  {:6.0} MHz: {:.3} s ({:+.1}%), {:.1} J ({:+.1}%)",
            f,
            m.time_s,
            (m.time_s / base.time_s - 1.0) * 100.0,
            m.energy_j,
            (m.energy_j / base.energy_j - 1.0) * 100.0
        );
        rows.push(EnergyRow {
            freq_mhz: f,
            time_s: m.time_s,
            energy_j: m.energy_j,
        });
    }
    println!("\nDocking is compute-bound: the top clock buys ~20% speed at a");
    println!("steep energy premium — the paper's LiGen headline (Fig. 10b).");

    // Persist the screening outcome crash-consistently: the write either
    // lands whole or fails with a typed error (full disk, read-only dir),
    // never a panic or a torn file.
    #[derive(Serialize)]
    struct Candidate {
        rank: u64,
        ligand_id: u64,
        score: f64,
    }
    #[derive(Serialize)]
    struct Report {
        library_size: u64,
        top_candidates: Vec<Candidate>,
        baseline_time_s: f64,
        baseline_energy_j: f64,
        fixed_clock_runs: Vec<EnergyRow>,
    }
    let report = Report {
        library_size: library.len() as u64,
        top_candidates: results
            .iter()
            .take(8)
            .enumerate()
            .map(|(rank, r)| Candidate {
                rank: rank as u64 + 1,
                ligand_id: r.ligand_id,
                score: r.score,
            })
            .collect(),
        baseline_time_s: base.time_s,
        baseline_energy_j: base.energy_j,
        fixed_clock_runs: rows,
    };
    let path = std::path::Path::new("results/virtual_screening.json");
    atomic_write_str(path, &serde_json::to_string_pretty(&report)?)?;
    println!("wrote {}", path.display());
    Ok(())
}
