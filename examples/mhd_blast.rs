//! Magnetohydrodynamics scenario: evolve a 3D MHD blast wave with the
//! real CPU solver (physics!), then measure the same workload's GPU
//! energy behaviour across core frequencies.
//!
//! ```text
//! cargo run --release --example mhd_blast
//! ```

use energy_repro::cronos::eos::{pressure, GAMMA};
use energy_repro::cronos::grid::Grid;
use energy_repro::cronos::state::comp;
use energy_repro::cronos::{problems, GpuCronos, Simulation};
use energy_repro::gpu_sim::DeviceSpec;
use energy_repro::synergy::{FrequencyPolicy, SynergyQueue};

fn main() {
    // --- Part 1: the actual numerics -----------------------------------
    let grid = Grid::cubic(32, 32, 32);
    let mut sim = Simulation::new(problems::mhd_blast(grid), GAMMA, 0.4);
    let mass0 = sim.state.total(comp::RHO);

    println!("3D MHD blast on a {}³ grid (SSP-RK3, minmod + Rusanov)", 32);
    println!("\n  step    t        dt        p_max    p_min   blast radius");
    for _ in 0..5 {
        sim.run_steps(8);
        let mut p_max: f64 = 0.0;
        let mut p_min = f64::INFINITY;
        let mut r_blast: f64 = 0.0;
        for (i, j, k) in grid.interior_coords() {
            let u = sim.state.interior(i, j, k);
            let p = pressure(u, GAMMA);
            p_max = p_max.max(p);
            p_min = p_min.min(p);
            if p > 0.5 {
                let (x, y, z) = grid.cell_center(i, j, k);
                let r = ((x - 0.5).powi(2) + (y - 0.5).powi(2) + (z - 0.5).powi(2)).sqrt();
                r_blast = r_blast.max(r);
            }
        }
        println!(
            "  {:4}  {:7.4}  {:8.2e}  {:7.3}  {:6.4}  {:6.3}",
            sim.step_count, sim.time, sim.dt, p_max, p_min, r_blast
        );
    }
    let mass1 = sim.state.total(comp::RHO);
    println!(
        "\nphysics checks: mass drift {:.2e} (outflow boundary), state physical: {}",
        (mass1 - mass0) / mass0,
        sim.state.is_physical(GAMMA)
    );

    // --- Part 2: the energy experiment ---------------------------------
    println!("\nGPU energy behaviour of the same workload (paper §3.1):");
    let workload = GpuCronos::new(Grid::cubic(160, 64, 64), 10);
    let spec = DeviceSpec::v100();

    let mut q = SynergyQueue::for_spec(spec.clone());
    let base = workload.run(&mut q);
    println!(
        "  default clock ({:.0} MHz): {:.3} s, {:.1} J",
        spec.default_core_mhz, base.time_s, base.energy_j
    );
    for f in [900.0, 1100.0, spec.max_core_mhz()] {
        let mut q = SynergyQueue::for_spec(spec.clone());
        q.set_policy(FrequencyPolicy::Fixed(f));
        let m = workload.run(&mut q);
        println!(
            "  {:6.0} MHz: {:.3} s ({:+.1}%), {:.1} J ({:+.1}%)",
            f,
            m.time_s,
            (m.time_s / base.time_s - 1.0) * 100.0,
            m.energy_j,
            (m.energy_j / base.energy_j - 1.0) * 100.0
        );
    }
    println!("\nThe memory-bound stencil tolerates down-clocking: large energy");
    println!("savings at near-zero slowdown — the paper's Cronos headline.");
}
