//! Measures the retry/degradation overhead of a faulty sweep against the
//! identical fault-free sweep — the numbers quoted in EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release --example chaos_overhead
//! ```

use cronos::Grid;
use energy_model::persist::atomic_write_str;
use energy_model::{characterize_with_options, SweepOptions};
use gpu_sim::{DeviceSpec, FaultPlan, Schedule, ThrottleWindow};
use serde::Serialize;
use synergy::RetryPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = DeviceSpec::v100();
    let wl = cronos::GpuCronos::new(Grid::cubic(20, 8, 8), 5);
    let freqs: Vec<f64> = spec.core_freqs.strided(10);

    let clean_opts = SweepOptions {
        reps: 5,
        ..SweepOptions::default()
    };
    let (clean, clean_diag) = characterize_with_options(&spec, &wl, &freqs, &clean_opts);
    assert!(clean_diag.is_clean());

    let faulty_opts = SweepOptions {
        reps: 5,
        faults: FaultPlan::seeded(20230521)
            .reject_set_frequency(Schedule::Prob(0.10))
            .fail_launches(Schedule::Prob(0.002))
            .reset_energy_counter(Schedule::Prob(0.01))
            .throttle(
                Schedule::Prob(0.005),
                ThrottleWindow {
                    cap_mhz: 900.0,
                    launches: 20,
                },
            ),
        retry: RetryPolicy::default(),
        remeasure_limit: 2,
        ..SweepOptions::default()
    };
    let (faulty, diag) = characterize_with_options(&spec, &wl, &freqs, &faulty_opts);

    let clean_time: f64 = clean.points.iter().map(|p| p.time_s).sum();
    let faulty_time: f64 = faulty.points.iter().map(|p| p.time_s).sum();
    let remeasured: u32 = diag.points.iter().map(|p| p.remeasured).sum();
    let flagged = diag.flagged_freqs().len();

    println!("sweep points              : {}", freqs.len());
    println!("retries                   : {}", diag.total_retries());
    println!(
        "backoff (simulated)       : {:.3} ms",
        diag.total_backoff_s() * 1e3
    );
    println!("re-measured points        : {remeasured}");
    println!("flagged points            : {flagged}");
    println!("clean  sum of point times : {clean_time:.4} s");
    println!("faulty sum of point times : {faulty_time:.4} s");
    println!(
        "measured-time delta       : {:+.2} %",
        (faulty_time / clean_time - 1.0) * 100.0
    );

    // Persist the overhead record crash-consistently: a full disk or a
    // read-only directory is a typed error, and no reader can ever see a
    // half-written report.
    #[derive(Serialize)]
    struct Report {
        sweep_points: u64,
        retries: u64,
        backoff_s: f64,
        remeasured_points: u32,
        flagged_points: u64,
        clean_point_time_s: f64,
        faulty_point_time_s: f64,
    }
    let report = Report {
        sweep_points: freqs.len() as u64,
        retries: diag.total_retries(),
        backoff_s: diag.total_backoff_s(),
        remeasured_points: remeasured,
        flagged_points: flagged as u64,
        clean_point_time_s: clean_time,
        faulty_point_time_s: faulty_time,
    };
    let path = std::path::Path::new("results/chaos_overhead.json");
    atomic_write_str(path, &serde_json::to_string_pretty(&report)?)?;
    println!("wrote {}", path.display());
    Ok(())
}
