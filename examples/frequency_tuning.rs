//! Model-driven frequency tuning: the paper's end-to-end use case and its
//! future-work integration. Train a domain-specific model on measured
//! sweeps, predict an unseen input's behaviour, pick a frequency for an
//! energy target through the SYnergy metric hook, and verify the saving by
//! actually running there.
//!
//! ```text
//! cargo run --release --example frequency_tuning
//! ```

use energy_repro::cronos::{GpuCronos, Grid};
use energy_repro::energy_model::ds_model::DomainSpecificModel;
use energy_repro::energy_model::features::CronosInput;
use energy_repro::energy_model::workflow::{
    characterize_cronos, experiment_frequencies, training_set,
};
use energy_repro::gpu_sim::DeviceSpec;
use energy_repro::synergy::metrics::{select, OperatingPoint, TargetMetric};
use energy_repro::synergy::{FrequencyPolicy, SynergyQueue};

fn main() {
    let spec = DeviceSpec::v100();
    let freqs = experiment_frequencies(&spec, 4);

    // --- Training phase (Figure 11) -------------------------------------
    // Characterize four grid sizes; the fifth (80x32x32) stays unseen.
    let train_configs = [
        CronosInput::new(10, 4, 4),
        CronosInput::new(20, 8, 8),
        CronosInput::new(40, 16, 16),
        CronosInput::new(160, 64, 64),
    ];
    println!(
        "training on {} grids × {} frequencies …",
        train_configs.len(),
        freqs.len()
    );
    let inputs = characterize_cronos(&spec, &train_configs, &freqs, 5, Some(7));
    let model = DomainSpecificModel::train(&training_set(&inputs), spec.default_core_mhz, 7);

    // --- Prediction phase (Figure 12) ------------------------------------
    let unseen = CronosInput::new(80, 32, 32);
    println!("predicting the unseen {} grid …", unseen.label());
    let points: Vec<OperatingPoint> = freqs
        .iter()
        .map(|&f| {
            let (t, e) = model.predict_time_energy(&unseen.features(), f);
            OperatingPoint {
                freq_mhz: f,
                time_s: t,
                energy_j: e,
            }
        })
        .collect();

    // --- Frequency selection via the SYnergy target-metric hook ----------
    let chosen = select(
        &points,
        TargetMetric::BoundedSlowdown { max_slowdown: 0.05 },
    )
    .expect("non-empty sweep");
    println!(
        "selected {:.0} MHz (min predicted energy within 5% of the best time)",
        chosen.freq_mhz
    );

    // --- Verify by running there ------------------------------------------
    let workload = GpuCronos::new(Grid::cubic(80, 32, 32), 10);
    let mut q = SynergyQueue::for_spec(spec.clone());
    let base = workload.run(&mut q);

    let mut q = SynergyQueue::for_spec(spec.clone());
    q.set_policy(FrequencyPolicy::Fixed(chosen.freq_mhz));
    let tuned = workload.run(&mut q);

    println!("\n              time        energy",);
    println!(
        "  default    {:8.4} s  {:8.2} J",
        base.time_s, base.energy_j
    );
    println!(
        "  tuned      {:8.4} s  {:8.2} J",
        tuned.time_s, tuned.energy_j
    );
    println!(
        "\nmeasured: {:.1}% energy saving at {:.1}% slowdown — chosen from the",
        (1.0 - tuned.energy_j / base.energy_j) * 100.0,
        (tuned.time_s / base.time_s - 1.0) * 100.0
    );
    println!("model's prediction for a grid it never saw.");

    // Per-kernel scaling (the paper's future work, implemented in
    // energy_model::per_kernel): one model pair per kernel, one frequency
    // per kernel.
    use energy_repro::energy_model::per_kernel::PerKernelModel;
    let pk = PerKernelModel::train_cronos(&spec, &train_configs, &freqs, 7);
    let plan = pk.plan(&unseen.features(), &freqs, 0.05);
    println!("\nper-kernel plan (5% slowdown budget per kernel):");
    for (kernel, f) in &plan.assignments {
        println!("  {kernel:<28} → {f:.0} MHz");
    }
    let mut q = SynergyQueue::for_spec(spec);
    q.set_policy(plan.policy());
    let per_kernel = workload.run(&mut q);
    println!(
        "per-kernel scaling: {:.1}% energy saving at {:.1}% slowdown",
        (1.0 - per_kernel.energy_j / base.energy_j) * 100.0,
        (per_kernel.time_s / base.time_s - 1.0) * 100.0
    );
}
