//! Quickstart: characterize a workload across GPU core frequencies and
//! find its Pareto-optimal operating points.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use energy_repro::energy_model::characterize::characterize;
use energy_repro::energy_model::pareto::pareto_front_indices;
use energy_repro::gpu_sim::DeviceSpec;
use energy_repro::ligen::GpuLigen;

fn main() {
    // A simulated NVIDIA V100, exactly as the paper's testbed exposes it:
    // 196 core frequencies from 135 to 1597 MHz.
    let spec = DeviceSpec::v100();
    println!(
        "{}: {} core frequencies, default {:.0} MHz",
        spec.name,
        spec.core_freqs.len(),
        spec.default_core_mhz
    );

    // A LiGen-style virtual-screening batch: 4096 ligands × 63 atoms ×
    // 8 fragments.
    let workload = GpuLigen::new(4096, 63, 8);

    // Sweep a thinned frequency table, 5 repetitions per point (median),
    // with realistic measurement noise.
    let freqs = spec.core_freqs.strided(16);
    let ch = characterize(&spec, &workload, &freqs, 5, Some(42));

    println!(
        "\nbaseline (default clock): {:.3} s, {:.1} J",
        ch.baseline_time_s, ch.baseline_energy_j
    );
    println!("\n  MHz    speedup  norm.energy  Pareto");
    let pts = ch.objective_points();
    let front = pareto_front_indices(&pts);
    for (i, p) in ch.points.iter().enumerate() {
        println!(
            "  {:6.0}  {:7.3}  {:11.3}  {}",
            p.freq_mhz,
            p.speedup,
            p.norm_energy,
            if front.contains(&i) { "◆" } else { "" }
        );
    }

    let Some(best_energy) = ch
        .points
        .iter()
        .min_by(|a, b| a.norm_energy.total_cmp(&b.norm_energy))
    else {
        return;
    };
    println!(
        "\nenergy-optimal: {:.0} MHz — {:.1}% energy saving at {:.1}% speed",
        best_energy.freq_mhz,
        (1.0 - best_energy.norm_energy) * 100.0,
        best_energy.speedup * 100.0
    );
}
