//! Fleet scheduling benchmarks, plus the pinned-seed guard run the CI
//! smoke job executes in `--test` mode.
//!
//! Groups:
//!
//! * `fleet/closed_loop` — one full heterogeneous fleet run (2×V100 +
//!   2×MI100, min-energy placement with within-class stealing) against a
//!   published per-class registry: the cost of a fleet scheduling pass;
//! * `fleet/round_robin` — the same stream under the round-robin
//!   default-clock baseline (no prediction path), isolating what the
//!   placement machinery costs;
//! * `fleet_guard` — not a timing: asserts the ROADMAP pin (fleet
//!   min-energy beats round-robin *and* the single-device governor on
//!   total energy at no worse a miss rate) before any number is
//!   recorded, so a fast-but-wrong scheduler can never look good here.

use criterion::{criterion_group, criterion_main, Criterion};

use governor::{
    run_fleet, run_governor, train_and_publish, train_and_publish_fleet, FleetConfig,
    GovernorConfig, ModelRegistry, Policy,
};

/// Published single-device + per-class artifacts, rebuilt per process.
fn published_registry(dir: &std::path::Path) -> ModelRegistry {
    let _ = std::fs::remove_dir_all(dir);
    let registry = ModelRegistry::open(dir);
    train_and_publish(&GovernorConfig::pinned(Policy::DefaultClock), &registry)
        .expect("publish single-device models");
    train_and_publish_fleet(&FleetConfig::pinned(), &registry)
        .expect("publish per-class fleet models");
    registry
}

fn registry_dir() -> std::path::PathBuf {
    std::env::temp_dir().join("fleet-bench-registry")
}

fn bench_closed_loop(c: &mut Criterion) {
    let registry = published_registry(&registry_dir());
    let cfg = FleetConfig::pinned();
    let mut group = c.benchmark_group("fleet/closed_loop");
    group.sample_size(10);
    group.bench_function("heterogeneous_40_jobs", |b| {
        b.iter(|| run_fleet(&cfg, &registry))
    });
    group.finish();
}

fn bench_round_robin(c: &mut Criterion) {
    let registry = published_registry(&registry_dir());
    let cfg = FleetConfig::pinned_round_robin();
    let mut group = c.benchmark_group("fleet/round_robin");
    group.sample_size(10);
    group.bench_function("baseline_40_jobs", |b| {
        b.iter(|| run_fleet(&cfg, &registry))
    });
    group.finish();
}

/// The pinned-seed regression guard, asserted unconditionally: the
/// numbers `figures fleet` writes to `BENCH_fleet.json` must hold every
/// time this bench binary runs (CI runs it in `--test` mode).
fn fleet_guard(_c: &mut Criterion) {
    let registry = published_registry(&registry_dir());
    let fleet = run_fleet(&FleetConfig::pinned(), &registry);
    let round_robin = run_fleet(&FleetConfig::pinned_round_robin(), &registry);
    let single = run_governor(
        &GovernorConfig::pinned(Policy::MinEnergyUnderDeadline),
        &registry,
    );

    assert!(
        fleet.total_energy_j <= round_robin.total_energy_j,
        "fleet {:.1} J vs round-robin {:.1} J",
        fleet.total_energy_j,
        round_robin.total_energy_j
    );
    assert!(
        fleet.total_energy_j <= single.total_energy_j,
        "fleet {:.1} J vs single-device {:.1} J",
        fleet.total_energy_j,
        single.total_energy_j
    );
    assert!(fleet.miss_rate <= round_robin.miss_rate);
    assert!(fleet.miss_rate <= single.miss_rate);

    println!(
        "fleet guard: fleet {:.1} J ({:.1}% vs round-robin {:.1} J, {:.1}% vs \
         single-device {:.1} J), miss rates {:.1}% / {:.1}% / {:.1}%",
        fleet.total_energy_j,
        100.0 * (1.0 - fleet.total_energy_j / round_robin.total_energy_j),
        round_robin.total_energy_j,
        100.0 * (1.0 - fleet.total_energy_j / single.total_energy_j),
        single.total_energy_j,
        100.0 * fleet.miss_rate,
        100.0 * round_robin.miss_rate,
        100.0 * single.miss_rate,
    );
}

criterion_group!(benches, bench_closed_loop, bench_round_robin, fleet_guard);
criterion_main!(benches);
