//! Governor serving-path benchmarks: what one online decision costs, and
//! how much the prediction memo cache buys on a repetitive job stream.
//!
//! Groups:
//!
//! * `governor/predict_cold` — full forest inference + Pareto filtering
//!   per request (cache defeated by varying features);
//! * `governor/predict_warm` — the same request stream with the natural
//!   repetition of the pinned job mix (cache does its job);
//! * `governor/closed_loop` — a short end-to-end run against a published
//!   registry, the number that bounds what a governor tick costs.

use criterion::{criterion_group, criterion_main, Criterion};

use governor::{
    run_governor, train_and_publish, EngineConfig, GovernorConfig, ModelRegistry, Policy,
    PredictionEngine, PredictionRequest,
};

fn bench_cfg() -> GovernorConfig {
    let mut cfg = GovernorConfig::pinned(Policy::MinEnergyUnderDeadline);
    cfg.n_jobs = 12;
    cfg.freq_stride = 4;
    cfg.train_stride = 4;
    cfg
}

fn published_registry(dir: &std::path::Path) -> ModelRegistry {
    let _ = std::fs::remove_dir_all(dir);
    let registry = ModelRegistry::open(dir);
    train_and_publish(&bench_cfg(), &registry).expect("publish models");
    registry
}

fn engine_from(registry: &ModelRegistry, cfg: &GovernorConfig) -> PredictionEngine {
    let freqs = energy_model::workflow::experiment_frequencies(&cfg.spec, cfg.freq_stride);
    let mut engine = PredictionEngine::new(EngineConfig {
        freqs,
        queue_capacity: 64,
        max_batch: 64,
    });
    let (model, _, _) = registry.load("ligen", None).expect("published model");
    engine.install_model("ligen", model);
    engine
}

fn bench_predict_cold(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("governor-bench-registry");
    let registry = published_registry(&dir);
    let cfg = bench_cfg();
    let mut engine = engine_from(&registry, &cfg);
    let mut group = c.benchmark_group("governor/predict_cold");
    group.sample_size(10);
    let mut ligands = 0u64;
    group.bench_function("ligen_unique_inputs", |b| {
        b.iter(|| {
            ligands += 1;
            engine
                .try_enqueue(PredictionRequest {
                    job_id: ligands,
                    app: "ligen".to_string(),
                    features: vec![1000.0 + ligands as f64, 20.0, 89.0],
                })
                .expect("queue has room");
            engine.drain_batch()
        })
    });
    group.finish();
}

fn bench_predict_warm(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("governor-bench-registry");
    let registry = published_registry(&dir);
    let cfg = bench_cfg();
    let mut engine = engine_from(&registry, &cfg);
    let mut group = c.benchmark_group("governor/predict_warm");
    group.sample_size(10);
    let mut id = 0u64;
    group.bench_function("ligen_repeated_input", |b| {
        b.iter(|| {
            id += 1;
            engine
                .try_enqueue(PredictionRequest {
                    job_id: id,
                    app: "ligen".to_string(),
                    features: vec![4000.0, 20.0, 89.0],
                })
                .expect("queue has room");
            engine.drain_batch()
        })
    });
    group.finish();
}

fn bench_closed_loop(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("governor-bench-registry");
    let registry = published_registry(&dir);
    let cfg = bench_cfg();
    let mut group = c.benchmark_group("governor/closed_loop");
    group.sample_size(10);
    group.bench_function("v100_12_jobs", |b| b.iter(|| run_governor(&cfg, &registry)));
    group.finish();
}

criterion_group!(
    benches,
    bench_predict_cold,
    bench_predict_warm,
    bench_closed_loop
);
criterion_main!(benches);
