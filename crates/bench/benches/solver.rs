//! Criterion benchmarks of the Cronos MHD solver substrate: the real CPU
//! numerics (stencil sweep, reduction, full timestep) across grid sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cronos::boundary::{apply_boundary, BoundaryKind};
use cronos::eos::GAMMA;
use cronos::grid::Grid;
use cronos::problems;
use cronos::reduce::max_reduce;
use cronos::sim::Simulation;
use cronos::stencil::compute_changes;

fn bench_stencil(c: &mut Criterion) {
    let mut group = c.benchmark_group("cronos/compute_changes");
    for (nx, ny, nz) in [(20, 8, 8), (40, 16, 16), (80, 32, 32)] {
        let grid = Grid::cubic(nx, ny, nz);
        let problem = problems::orszag_tang(grid);
        let mut state = problem.state;
        apply_boundary(&mut state, BoundaryKind::Periodic);
        group.throughput(Throughput::Elements(grid.n_cells() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nx}x{ny}x{nz}")),
            &state,
            |b, s| b.iter(|| compute_changes(s, GAMMA)),
        );
    }
    group.finish();
}

fn bench_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("cronos/reduce_cfl");
    for n in [10_000usize, 100_000, 1_000_000] {
        let values: Vec<f64> = (0..n).map(|i| ((i * 2654435761) % 10_007) as f64).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, v| {
            b.iter(|| max_reduce(v))
        });
    }
    group.finish();
}

fn bench_full_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("cronos/timestep");
    group.sample_size(20);
    for (nx, ny, nz) in [(20, 8, 8), (40, 16, 16)] {
        let grid = Grid::cubic(nx, ny, nz);
        group.throughput(Throughput::Elements(grid.n_cells() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nx}x{ny}x{nz}")),
            &grid,
            |b, g| {
                let sim0 = Simulation::new(problems::mhd_blast(*g), GAMMA, 0.4);
                b.iter_batched(
                    || sim0.clone(),
                    |mut sim| {
                        sim.step();
                        sim
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stencil, bench_reduction, bench_full_step);
criterion_main!(benches);
