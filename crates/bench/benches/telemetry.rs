//! Telemetry overhead guard: the metrics registry and point-level span
//! tracing must stay marginal on the hot trace-replay sweep path — the
//! acceptance budget is a small single-digit percentage of the recorded
//! 11× sweep-engine speedup baseline.
//!
//! Two views of the same comparison:
//!
//! * Criterion groups `telemetry/sweep_disarmed` and
//!   `telemetry/sweep_armed` for the statistical record;
//! * a direct paired measurement printed as an overhead percentage, with
//!   a hard assertion when `TELEMETRY_OVERHEAD_MAX_PCT` is set (CI sets
//!   it; locally the number is informational, since shared machines make
//!   tight wall-clock bounds flaky).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use energy_model::characterize::{characterize_with_options, SweepOptions};
use energy_model::telemetry::Telemetry;
use gpu_sim::DeviceSpec;

fn workload() -> cronos::GpuCronos {
    cronos::GpuCronos::new(cronos::Grid::cubic(40, 16, 16), 2)
}

fn sweep_opts(telemetry: Option<Arc<Telemetry>>) -> SweepOptions {
    SweepOptions {
        reps: 5,
        noise_seed: Some(7),
        telemetry,
        ..SweepOptions::default()
    }
}

fn bench_sweep_disarmed(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let freqs = spec.core_freqs.strided(8);
    let w = workload();
    let mut group = c.benchmark_group("telemetry/sweep_disarmed");
    group.sample_size(10);
    group.bench_function("cronos_40x16x16", |b| {
        b.iter(|| characterize_with_options(&spec, &w, &freqs, &sweep_opts(None)))
    });
    group.finish();
}

fn bench_sweep_armed(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let freqs = spec.core_freqs.strided(8);
    let w = workload();
    let mut group = c.benchmark_group("telemetry/sweep_armed");
    group.sample_size(10);
    group.bench_function("cronos_40x16x16", |b| {
        b.iter(|| {
            let tel = Telemetry::new();
            characterize_with_options(&spec, &w, &freqs, &sweep_opts(Some(tel)))
        })
    });
    group.finish();
}

/// Paired measurement on interleaved rounds (alternating disarmed/armed
/// so machine noise hits both sides equally), printed as a percentage and
/// asserted against `TELEMETRY_OVERHEAD_MAX_PCT` when set.
fn overhead_guard(_c: &mut Criterion) {
    // The BENCH_sweep shape (full-resolution frequency list, five-rep
    // noisy medians, tens of milliseconds per sweep) — so per-sweep fixed
    // costs don't masquerade as per-point overhead the way they would on
    // a toy sweep, and machine noise is small relative to one round.
    let spec = DeviceSpec::v100();
    let freqs = energy_model::workflow::experiment_frequencies(&spec, 1);
    let w = workload();
    let rounds = 16;

    // Warm both paths (thread pool, allocator, price tables).
    let _ = characterize_with_options(&spec, &w, &freqs, &sweep_opts(None));
    let _ = characterize_with_options(&spec, &w, &freqs, &sweep_opts(Some(Telemetry::new())));

    // Per-round minima, not means: scheduler noise only ever *adds* time,
    // so the minimum over enough rounds estimates the true cost of each
    // path and the guard doesn't trip on a single preempted round.
    let mut disarmed_min = f64::INFINITY;
    let mut armed_min = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        let plain = characterize_with_options(&spec, &w, &freqs, &sweep_opts(None));
        disarmed_min = disarmed_min.min(t0.elapsed().as_secs_f64());

        let tel = Telemetry::new();
        let t1 = Instant::now();
        let armed = characterize_with_options(&spec, &w, &freqs, &sweep_opts(Some(tel)));
        armed_min = armed_min.min(t1.elapsed().as_secs_f64());

        assert_eq!(plain.0, armed.0, "armed sweep diverged from disarmed");
    }
    let overhead_pct = (armed_min / disarmed_min - 1.0) * 100.0;
    println!(
        "telemetry overhead: disarmed {disarmed_min:.4} s, armed {armed_min:.4} s \
         (best of {rounds} rounds) => {overhead_pct:+.2} %",
    );
    if let Ok(max) = std::env::var("TELEMETRY_OVERHEAD_MAX_PCT") {
        let max: f64 = max
            .parse()
            .expect("TELEMETRY_OVERHEAD_MAX_PCT must be a number");
        assert!(
            overhead_pct <= max,
            "armed telemetry costs {overhead_pct:.2} % (budget {max} %)"
        );
    }
}

criterion_group!(
    benches,
    bench_sweep_disarmed,
    bench_sweep_armed,
    overhead_guard
);
criterion_main!(benches);
