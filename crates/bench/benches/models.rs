//! Criterion benchmarks of the ML substrate: Random Forest training and
//! prediction (the models the paper's pipeline trains per application),
//! plus the competing algorithm families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ml::dataset::Matrix;
use ml::forest::{RandomForest, RandomForestParams};
use ml::lasso::Lasso;
use ml::linear::LinearRegression;
use ml::svr::SvrRbf;
use ml::Regressor;

/// A DVFS-shaped synthetic dataset: (3 input features + frequency) → time.
fn dvfs_dataset(n_inputs: usize, n_freqs: usize) -> (Matrix, Vec<f64>) {
    let mut x = Matrix::with_cols(4);
    let mut y = Vec::new();
    for i in 0..n_inputs {
        let a = 1.0 + (i % 7) as f64;
        let b = 1.0 + (i % 5) as f64;
        let c = 1.0 + (i % 3) as f64;
        for j in 0..n_freqs {
            let f = 500.0 + j as f64 * 1100.0 / n_freqs as f64;
            x.push_row(&[a, b, c, f]);
            let work = a * b * c;
            y.push((work / f.min(1000.0)).ln());
        }
    }
    (x, y)
}

fn bench_forest_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("ml/forest_fit");
    group.sample_size(10);
    for (inputs, freqs) in [(12usize, 75usize), (80, 75)] {
        let (x, y) = dvfs_dataset(inputs, freqs);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}rows", x.rows())),
            &(x, y),
            |b, (x, y)| {
                b.iter(|| {
                    let mut f = RandomForest::new(
                        RandomForestParams {
                            n_estimators: 60,
                            ..Default::default()
                        },
                        0,
                    );
                    f.fit(x, y);
                    f
                })
            },
        );
    }
    group.finish();
}

fn bench_forest_prediction(c: &mut Criterion) {
    let (x, y) = dvfs_dataset(12, 75);
    let mut forest = RandomForest::new(
        RandomForestParams {
            n_estimators: 60,
            ..Default::default()
        },
        0,
    );
    forest.fit(&x, &y);
    c.bench_function("ml/forest_predict_row", |b| {
        b.iter(|| forest.predict_row(&[3.0, 2.0, 1.0, 987.0]))
    });
}

fn bench_model_families(c: &mut Criterion) {
    let (x, y) = dvfs_dataset(8, 40);
    let mut group = c.benchmark_group("ml/family_fit");
    group.sample_size(10);
    group.bench_function("linear", |b| {
        b.iter(|| {
            let mut m = LinearRegression::new();
            m.fit(&x, &y);
            m.predict_row(&[2.0, 2.0, 2.0, 900.0])
        })
    });
    group.bench_function("lasso", |b| {
        b.iter(|| {
            let mut m = Lasso::new(1e-3);
            m.fit(&x, &y);
            m.predict_row(&[2.0, 2.0, 2.0, 900.0])
        })
    });
    group.bench_function("svr_rbf", |b| {
        b.iter(|| {
            let mut m = SvrRbf::with_defaults();
            m.fit(&x, &y);
            m.predict_row(&[2.0, 2.0, 2.0, 900.0])
        })
    });
    group.bench_function("random_forest", |b| {
        b.iter(|| {
            let mut m = RandomForest::new(
                RandomForestParams {
                    n_estimators: 60,
                    ..Default::default()
                },
                0,
            );
            m.fit(&x, &y);
            m.predict_row(&[2.0, 2.0, 2.0, 900.0])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forest_training,
    bench_forest_prediction,
    bench_model_families
);
criterion_main!(benches);
