//! Criterion benchmarks of the characterization pipeline itself: how long
//! a full frequency sweep (the Figure 11 training-phase data collection)
//! takes through the simulator + SYnergy stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use energy_model::characterize::characterize;
use energy_model::features::{CronosInput, LigenInput};
use gpu_sim::DeviceSpec;

fn bench_cronos_sweep(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let freqs = spec.core_freqs.strided(8);
    let mut group = c.benchmark_group("pipeline/cronos_sweep");
    group.sample_size(10);
    for cfg in [CronosInput::new(20, 8, 8), CronosInput::new(160, 64, 64)] {
        let workload = cronos::GpuCronos::new(
            cronos::Grid::cubic(cfg.grid_x, cfg.grid_y, cfg.grid_z),
            energy_model::workflow::CRONOS_STEPS,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.label()),
            &workload,
            |b, w| b.iter(|| characterize(&spec, w, &freqs, 1, None)),
        );
    }
    group.finish();
}

fn bench_ligen_sweep(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let freqs = spec.core_freqs.strided(8);
    let mut group = c.benchmark_group("pipeline/ligen_sweep");
    group.sample_size(10);
    for cfg in [LigenInput::new(256, 31, 4), LigenInput::new(10_000, 89, 20)] {
        let workload =
            ligen::GpuLigen::new(cfg.ligands as u64, cfg.atoms as u64, cfg.fragments as u64);
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.label()),
            &workload,
            |b, w| b.iter(|| characterize(&spec, w, &freqs, 1, None)),
        );
    }
    group.finish();
}

fn bench_device_launch(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let mut dev = gpu_sim::Device::new(spec);
    let k = gpu_sim::KernelProfile::compute_bound("bench", 1 << 20, 500.0);
    c.bench_function("pipeline/device_launch", |b| {
        b.iter(|| dev.launch(&k).unwrap())
    });
}

criterion_group!(
    benches,
    bench_cronos_sweep,
    bench_ligen_sweep,
    bench_device_launch
);
criterion_main!(benches);
