//! Head-to-head Criterion comparison of the two sweep engines on the
//! paper's full-resolution V100 frequency sweep (`experiment_frequencies`
//! stride 1, five repetitions per point — the Figure 11 training-phase
//! data collection):
//!
//! * `replay` — [`characterize`]: record the kernel trace once, re-price
//!   every frequency point through the memoized batch path, fan points out
//!   with rayon;
//! * `legacy` — [`characterize_serial`]: re-run the workload's submission
//!   loop kernel by kernel for every (frequency, repetition).
//!
//! Both paths produce bit-identical output (pinned by the golden tests in
//! `energy-model`); this bench measures what that equivalence costs.
//! `BENCH_sweep.json` (via `figures -- sweep-profile`) records the same
//! comparison as committed before/after numbers.

use criterion::{criterion_group, criterion_main, Criterion};

use energy_model::characterize::{characterize, characterize_serial, Workload};
use energy_model::workflow::{experiment_frequencies, CRONOS_STEPS};
use gpu_sim::DeviceSpec;

/// The paper's five repetitions per measurement (§5.1).
const REPS: usize = 5;

fn workloads() -> Vec<(&'static str, Box<dyn Workload>)> {
    vec![
        (
            "cronos_20x8x8",
            Box::new(cronos::GpuCronos::new(
                cronos::Grid::cubic(20, 8, 8),
                CRONOS_STEPS,
            )),
        ),
        (
            "cronos_160x64x64",
            Box::new(cronos::GpuCronos::new(
                cronos::Grid::cubic(160, 64, 64),
                CRONOS_STEPS,
            )),
        ),
        ("ligen_256x31x4", Box::new(ligen::GpuLigen::new(256, 31, 4))),
        (
            "ligen_10000x89x20",
            Box::new(ligen::GpuLigen::new(10_000, 89, 20)),
        ),
    ]
}

fn bench_full_sweep(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let freqs = experiment_frequencies(&spec, 1);
    for (name, w) in workloads() {
        let mut group = c.benchmark_group(format!("sweep/{name}"));
        group.sample_size(10);
        group.bench_function("replay", |b| {
            b.iter(|| characterize(&spec, w.as_ref(), &freqs, REPS, None))
        });
        group.bench_function("legacy", |b| {
            b.iter(|| characterize_serial(&spec, w.as_ref(), &freqs, REPS, None))
        });
        group.finish();
    }
}

fn bench_noisy_sweep(c: &mut Criterion) {
    // With the noise model on, both paths pay the same per-launch RNG
    // draws, so the gap narrows to the per-launch pricing work — reported
    // separately to keep the headline honest.
    let spec = DeviceSpec::v100();
    let freqs = experiment_frequencies(&spec, 1);
    let w = cronos::GpuCronos::new(cronos::Grid::cubic(160, 64, 64), CRONOS_STEPS);
    let mut group = c.benchmark_group("sweep/cronos_160x64x64_noisy");
    group.sample_size(10);
    group.bench_function("replay", |b| {
        b.iter(|| characterize(&spec, &w, &freqs, REPS, Some(bench::SEED)))
    });
    group.bench_function("legacy", |b| {
        b.iter(|| characterize_serial(&spec, &w, &freqs, REPS, Some(bench::SEED)))
    });
    group.finish();
}

criterion_group!(benches, bench_full_sweep, bench_noisy_sweep);
criterion_main!(benches);
