//! Criterion benchmarks of the LiGen docking substrate: single-ligand
//! docking across structure sizes and batch virtual screening.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use ligen::dock::{dock, DockParams};
use ligen::library::{generate_ligand, ChemLibrary};
use ligen::protein::Pocket;
use ligen::screen::virtual_screening;

fn bench_dock_single(c: &mut Criterion) {
    let pocket = Pocket::synthesize(24, 20.0, 5, 7);
    let params = DockParams::default();
    let mut group = c.benchmark_group("ligen/dock");
    for (atoms, frags) in [(31usize, 4usize), (31, 20 / 2), (89, 4), (89, 20)] {
        // 20 fragments needs ≥40 atoms; clamp the small-ligand case.
        let frags = frags.min(atoms / 2);
        let ligand = generate_ligand(1, atoms, frags, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{atoms}at_{frags}fr")),
            &ligand,
            |b, l| b.iter(|| dock(l, &pocket, &params)),
        );
    }
    group.finish();
}

fn bench_screening(c: &mut Criterion) {
    let pocket = Pocket::synthesize(24, 20.0, 5, 7);
    let params = DockParams {
        num_restart: 4,
        num_iterations: 2,
        max_num_poses: 2,
    };
    let mut group = c.benchmark_group("ligen/virtual_screening");
    group.sample_size(10);
    for n in [8usize, 32, 128] {
        let lib = ChemLibrary::generate(n, 31, 4, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &lib, |b, l| {
            b.iter(|| virtual_screening(l, &pocket, &params))
        });
    }
    group.finish();
}

fn bench_pocket_sampling(c: &mut Criterion) {
    let pocket = Pocket::synthesize(32, 20.0, 6, 9);
    c.bench_function("ligen/pocket_sample", |b| {
        let mut x = 0.1;
        b.iter(|| {
            x = (x * 1.37 + 0.11) % 20.0;
            pocket.sample([x, 20.0 - x, x * 0.5])
        })
    });
}

criterion_group!(
    benches,
    bench_dock_single,
    bench_screening,
    bench_pocket_sampling
);
criterion_main!(benches);
