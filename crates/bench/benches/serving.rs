//! Flat-forest serving guard: batched inference through the compiled
//! struct-of-arrays layout (`ml::flat`) must stay well ahead of the
//! row-at-a-time pointer walk it replaced — the committed floor is a 5×
//! throughput advantage at bit-identical predictions.
//!
//! Two views of the same comparison:
//!
//! * Criterion groups `serving/curve_*` and `serving/drain_batch` for the
//!   statistical record (single-request reference vs flat, whole-batch
//!   flat, and the end-to-end engine drain);
//! * a direct paired measurement printed as a speedup factor, with a hard
//!   assertion when `SERVING_SPEEDUP_MIN` is set (CI sets it; locally the
//!   number is informational, since shared machines make tight wall-clock
//!   bounds flaky). Bit-identity between the two paths is asserted
//!   unconditionally — a fast wrong answer must never pass.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use energy_model::ds_model::DsSample;
use energy_model::DomainSpecificModel;
use governor::{EngineConfig, PredictionEngine, PredictionRequest};

const DEFAULT_FREQ: f64 = 1380.0;

/// A Cronos-shaped synthetic training grid: three integer grid features,
/// time falling and energy rising with frequency. Small enough to train a
/// 60-tree forest in well under a second, structured enough that the
/// trees grow to realistic serving depth.
fn synthetic_samples() -> Vec<DsSample> {
    let mut samples = Vec::new();
    for &x in &[8.0f64, 16.0, 32.0, 64.0, 128.0] {
        for &y in &[4.0f64, 8.0, 16.0, 32.0] {
            for &z in &[4.0f64, 8.0, 16.0, 32.0] {
                let features = Arc::new(vec![x, y, z]);
                for step in 0..8u32 {
                    let freq = 600.0 + 120.0 * f64::from(step);
                    let work = x * y * z;
                    let time_s = work / (freq * 40.0) + 0.002 * work.sqrt();
                    let power_w = 60.0 + 0.09 * freq;
                    samples.push(DsSample {
                        features: Arc::clone(&features),
                        freq_mhz: freq,
                        time_s,
                        energy_j: time_s * power_w,
                    });
                }
            }
        }
    }
    samples
}

fn trained_model() -> DomainSpecificModel {
    DomainSpecificModel::train(&synthetic_samples(), DEFAULT_FREQ, 7)
}

/// The sweep every prediction is evaluated over (paper-scale resolution).
fn sweep_freqs() -> Vec<f64> {
    (0..60).map(|i| 510.0 + 15.0 * f64::from(i)).collect()
}

/// Distinct off-grid query inputs (forcing real inference, no memo hits).
fn query_inputs(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            vec![
                8.0 + (i % 17) as f64 * 7.0,
                4.0 + (i % 11) as f64 * 3.0,
                4.0 + (i % 7) as f64 * 5.0,
            ]
        })
        .collect()
}

fn bench_curve_single(c: &mut Criterion) {
    let model = trained_model();
    let freqs = sweep_freqs();
    let inputs = query_inputs(16);
    let mut group = c.benchmark_group("serving/curve_single");
    group.sample_size(10);
    group.bench_function("reference_pointer_walk", |b| {
        b.iter(|| {
            for f in &inputs {
                criterion::black_box(model.predict_curve_reference(f, &freqs));
            }
        })
    });
    group.bench_function("flat", |b| {
        b.iter(|| {
            for f in &inputs {
                criterion::black_box(model.predict_curve(f, &freqs));
            }
        })
    });
    group.finish();
}

fn bench_curve_batched(c: &mut Criterion) {
    let model = trained_model();
    let freqs = sweep_freqs();
    let inputs = query_inputs(16);
    let refs: Vec<&[f64]> = inputs.iter().map(|f| f.as_slice()).collect();
    let mut group = c.benchmark_group("serving/curve_batched");
    group.sample_size(10);
    group.bench_function("flat_16_inputs", |b| {
        b.iter(|| criterion::black_box(model.predict_curves_batch(&refs, &freqs)))
    });
    group.finish();
}

fn bench_drain_batch(c: &mut Criterion) {
    let inputs = query_inputs(64);
    let mut engine = PredictionEngine::new(EngineConfig {
        freqs: sweep_freqs(),
        queue_capacity: 64,
        max_batch: 64,
    });
    engine.install_model("cronos", trained_model());
    let mut group = c.benchmark_group("serving/drain_batch");
    group.sample_size(10);
    // Steady-state drain: the first iteration warms the memo cache, after
    // which every batch is served from the shards — the governor's common
    // case of a repetitive arrival stream.
    group.bench_function("warm_64_requests", |b| {
        b.iter(|| {
            for (i, f) in inputs.iter().enumerate() {
                let _ = engine.try_enqueue(PredictionRequest {
                    job_id: i as u64,
                    app: "cronos".to_string(),
                    features: f.clone(),
                });
            }
            criterion::black_box(engine.drain_batch())
        })
    });
    group.finish();
}

/// Paired measurement on interleaved rounds (alternating reference/flat so
/// machine noise hits both sides equally): per-round minima, bit-identity
/// asserted on every curve, speedup asserted against `SERVING_SPEEDUP_MIN`
/// when set.
fn speedup_guard(_c: &mut Criterion) {
    let model = trained_model();
    assert!(model.has_flat(), "forest model must carry the flat layout");
    let freqs = sweep_freqs();
    let inputs = query_inputs(64);
    let refs: Vec<&[f64]> = inputs.iter().map(|f| f.as_slice()).collect();
    let rounds = 12;

    // Bit-identity first: the flat batched path must reproduce the
    // pointer walk exactly, on every input, at every frequency.
    let batched = model.predict_curves_batch(&refs, &freqs);
    for (f, prediction) in inputs.iter().zip(&batched) {
        let reference = model.predict_curve_reference(f, &freqs);
        assert_eq!(prediction.curve.len(), reference.len());
        for (a, b) in prediction.curve.iter().zip(&reference) {
            assert_eq!(a.freq_mhz.to_bits(), b.freq_mhz.to_bits());
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "input {f:?}");
            assert_eq!(a.norm_energy.to_bits(), b.norm_energy.to_bits());
        }
    }

    // Warm both paths, then take per-round minima: scheduler noise only
    // ever *adds* time, so the minimum over enough rounds estimates the
    // true cost and the guard doesn't trip on one preempted round.
    let mut reference_min = f64::INFINITY;
    let mut flat_min = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for f in &inputs {
            criterion::black_box(model.predict_curve_reference(f, &freqs));
        }
        reference_min = reference_min.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        criterion::black_box(model.predict_curves_batch(&refs, &freqs));
        flat_min = flat_min.min(t1.elapsed().as_secs_f64());
    }
    let speedup = reference_min / flat_min;
    let per_req_us = flat_min / inputs.len() as f64 * 1e6;
    println!(
        "flat batched serving: reference {reference_min:.5} s, flat {flat_min:.5} s \
         for {} requests × {} freqs (best of {rounds} rounds) \
         => {speedup:.1}× ({per_req_us:.1} µs/request)",
        inputs.len(),
        freqs.len(),
    );
    if let Ok(min) = std::env::var("SERVING_SPEEDUP_MIN") {
        let min: f64 = min.parse().expect("SERVING_SPEEDUP_MIN must be a number");
        assert!(
            speedup >= min,
            "flat batched serving is only {speedup:.2}× the pointer walk (floor {min}×)"
        );
    }
}

criterion_group!(
    benches,
    bench_curve_single,
    bench_curve_batched,
    bench_drain_batch,
    speedup_guard
);
criterion_main!(benches);
