//! Shared experiment runners for the figure/table regeneration harness.
//!
//! Every figure and table of the paper's evaluation maps to one function
//! here (see `DESIGN.md`'s per-experiment index); the `figures` binary
//! dispatches on experiment id and prints the same rows/series the paper
//! reports, as markdown tables. Numbers will not match the authors'
//! testbed absolutely — the substrate is a simulator — but the shape
//! (who wins, by what factor, where the Pareto knees fall) reproduces.

use energy_model::characterize::{characterize, Characterization, Workload};
use energy_model::ds_model::DomainSpecificModel;
use energy_model::eval::{evaluate_loocv, evaluate_pareto, MapeRow, ParetoEval};
use energy_model::features::{CronosInput, LigenInput, N_STATIC_FEATURES};
use energy_model::gp_model::GeneralPurposeModel;
use energy_model::pareto::pareto_front_indices;
use energy_model::workflow::{
    characterize_cronos, characterize_ligen, experiment_frequencies, CharacterizedInput,
    CRONOS_STEPS,
};
use gpu_sim::DeviceSpec;
use ml::forest::RandomForestParams;

/// Frequency-table stride used by the harness: every 2nd supported clock
/// (~half the paper's 196-point resolution, indistinguishable results at a
/// quarter of the runtime).
pub const SWEEP_STRIDE: usize = 2;

/// Repetitions per measurement (the paper's five, §5.1).
pub const REPS: usize = 5;

/// Seed for the harness' noise model and forests.
pub const SEED: u64 = 20231112; // the SC-W '23 workshop date

/// Forest size for harness-trained models (the defaults are 100 trees;
/// 60 keeps the full Figure-13 run under a minute with identical verdicts).
pub fn harness_forest_params() -> RandomForestParams {
    RandomForestParams {
        n_estimators: 60,
        ..Default::default()
    }
}

/// The experiment frequency sweep for a device.
pub fn sweep_freqs(spec: &DeviceSpec) -> Vec<f64> {
    experiment_frequencies(spec, SWEEP_STRIDE)
}

/// Prints a markdown table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n### {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// Characterization rows for a normalized figure: frequency, speedup,
/// normalized energy, Pareto membership.
pub fn characterization_rows(ch: &Characterization, every: usize) -> Vec<Vec<String>> {
    let pts = ch.objective_points();
    let front = pareto_front_indices(&pts);
    ch.points
        .iter()
        .enumerate()
        .step_by(every)
        .map(|(i, p)| {
            vec![
                format!("{:.0}", p.freq_mhz),
                format!("{:.4}", p.speedup),
                format!("{:.4}", p.norm_energy),
                if front.contains(&i) {
                    "yes".into()
                } else {
                    "".into()
                },
            ]
        })
        .collect()
}

/// Runs and prints one normalized characterization panel.
pub fn print_characterization(title: &str, spec: &DeviceSpec, workload: &dyn Workload) {
    let freqs = sweep_freqs(spec);
    let ch = characterize(spec, workload, &freqs, REPS, Some(SEED));
    let rows = characterization_rows(&ch, 6);
    print_table(
        &format!("{title} — {} on {}", ch.workload, ch.device),
        &["core MHz", "speedup", "norm. energy", "Pareto"],
        &rows,
    );
    summarize_characterization(&ch);
}

/// Prints the headline stats of a characterization: best speedup, best
/// energy saving, and the cost of each.
pub fn summarize_characterization(ch: &Characterization) {
    let fastest = ch
        .points
        .iter()
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .expect("non-empty");
    let cheapest = ch
        .points
        .iter()
        .min_by(|a, b| a.norm_energy.total_cmp(&b.norm_energy))
        .expect("non-empty");
    println!(
        "\nmax speedup {:.3} at {:.0} MHz (energy ×{:.3}); min energy ×{:.3} at {:.0} MHz (speedup {:.3})",
        fastest.speedup,
        fastest.freq_mhz,
        fastest.norm_energy,
        cheapest.norm_energy,
        cheapest.freq_mhz,
        cheapest.speedup
    );
}

/// Raw-value sweep rows (Figures 6–9 use raw seconds/joules, §3.2.1).
pub fn raw_rows(ch: &Characterization, every: usize) -> Vec<Vec<String>> {
    ch.points
        .iter()
        .step_by(every)
        .map(|p| {
            vec![
                format!("{:.0}", p.freq_mhz),
                format!("{:.3}", p.time_s),
                format!("{:.4}", p.energy_j / 1000.0), // kJ like the figures
            ]
        })
        .collect()
}

/// A trained GP model + its application feature vectors for one device.
pub struct GpSetup {
    /// The trained general-purpose model.
    pub model: GeneralPurposeModel,
}

/// Trains the GP baseline for a device over the sweep frequencies.
pub fn train_gp(spec: &DeviceSpec) -> GpSetup {
    let freqs = sweep_freqs(spec);
    GpSetup {
        model: GeneralPurposeModel::train_with(spec, &freqs, SEED, harness_forest_params()),
    }
}

/// The Figure-13a/b experiment on any device (the paper models the V100;
/// running the identical protocol on the MI100/Max 1100 descriptors shows
/// the methodology is architecture-independent, §6's portability claim).
pub fn fig13_cronos(spec: &DeviceSpec) -> Vec<MapeRow> {
    let freqs = sweep_freqs(spec);
    let configs = CronosInput::paper_configs();
    let inputs = characterize_cronos(spec, &configs, &freqs, REPS, Some(SEED));
    let gp = train_gp(spec);
    let gp_features: Vec<[f64; N_STATIC_FEATURES]> = configs
        .iter()
        .map(energy_model::workflow::cronos_static_features)
        .collect();
    evaluate_loocv(
        &inputs,
        &gp.model,
        &gp_features,
        spec.default_core_mhz,
        SEED,
    )
}

/// The Figure-13c/d experiment: LiGen LOOCV MAPE on the twelve reported
/// input tuples (trained over the same twelve, as the paper's protocol).
pub fn fig13_ligen(spec: &DeviceSpec) -> Vec<MapeRow> {
    let freqs = sweep_freqs(spec);
    let configs = LigenInput::figure13_configs();
    let inputs = characterize_ligen(spec, &configs, &freqs, REPS, Some(SEED));
    let gp = train_gp(spec);
    let gp_features: Vec<[f64; N_STATIC_FEATURES]> = configs
        .iter()
        .map(energy_model::workflow::ligen_static_features)
        .collect();
    evaluate_loocv(
        &inputs,
        &gp.model,
        &gp_features,
        spec.default_core_mhz,
        SEED,
    )
}

/// Prints a Figure-13 panel.
pub fn print_mape_rows(title: &str, rows: &[MapeRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{:.4}", r.gp_speedup),
                format!("{:.4}", r.ds_speedup),
                format!("{:.1}×", r.speedup_improvement()),
                format!("{:.4}", r.gp_energy),
                format!("{:.4}", r.ds_energy),
                format!("{:.1}×", r.energy_improvement()),
            ]
        })
        .collect();
    print_table(
        title,
        &[
            "input",
            "GP speedup MAPE",
            "DS speedup MAPE",
            "improv.",
            "GP energy MAPE",
            "DS energy MAPE",
            "improv.",
        ],
        &table,
    );
}

/// The Figure-14 experiment for one held-out input.
pub fn fig14_for(
    spec: &DeviceSpec,
    inputs: &[CharacterizedInput],
    index: usize,
    gp_features: &[f64; N_STATIC_FEATURES],
) -> ParetoEval {
    let gp = train_gp(spec);
    evaluate_pareto(
        inputs,
        index,
        &gp.model,
        gp_features,
        spec.default_core_mhz,
        SEED,
    )
}

/// Prints a Figure-14 panel.
pub fn print_pareto_eval(title: &str, eval: &ParetoEval) {
    println!("\n### {title}\n");
    println!(
        "true Pareto set: {} frequencies ({:.0}–{:.0} MHz)",
        eval.true_freqs.len(),
        eval.true_freqs
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min),
        eval.true_freqs.iter().copied().fold(0.0f64, f64::max),
    );
    for (name, cmp) in [("general-purpose", &eval.gp), ("domain-specific", &eval.ds)] {
        println!(
            "{name}: predicted {} freqs, {} exact matches (precision {:.2}, recall {:.2}), \
             mean realized distance to true front {:.4}",
            cmp.predicted_size,
            cmp.exact_matches,
            cmp.precision(),
            cmp.recall(),
            cmp.mean_distance
        );
    }
}

/// Builds the Cronos workload for an input tuple.
pub fn cronos_workload(cfg: &CronosInput) -> cronos::GpuCronos {
    cronos::GpuCronos::new(
        cronos::Grid::cubic(cfg.grid_x, cfg.grid_y, cfg.grid_z),
        CRONOS_STEPS,
    )
}

/// Builds the LiGen workload for an input tuple.
pub fn ligen_workload(cfg: &LigenInput) -> ligen::GpuLigen {
    ligen::GpuLigen::new(cfg.ligands as u64, cfg.atoms as u64, cfg.fragments as u64)
}

/// Aggregate headline: mean and minimum GP/DS improvement factors.
pub fn headline(rows: &[MapeRow]) -> (f64, f64, f64, f64) {
    let n = rows.len() as f64;
    let mean_s = rows.iter().map(|r| r.speedup_improvement()).sum::<f64>() / n;
    let mean_e = rows.iter().map(|r| r.energy_improvement()).sum::<f64>() / n;
    let min_s = rows
        .iter()
        .map(|r| r.speedup_improvement())
        .fold(f64::INFINITY, f64::min);
    let min_e = rows
        .iter()
        .map(|r| r.energy_improvement())
        .fold(f64::INFINITY, f64::min);
    (mean_s, mean_e, min_s, min_e)
}

/// Trains a DS model from characterized inputs (used by example scenarios
/// and the ablation harness).
pub fn train_ds(inputs: &[CharacterizedInput], default_freq: f64) -> DomainSpecificModel {
    let samples = energy_model::workflow::training_set(inputs);
    DomainSpecificModel::train(&samples, default_freq, SEED)
}
