//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! ```text
//! cargo run -p bench --release --bin ablation
//! ```
//!
//! 1. **Domain-specific feature ablation** — retrain the LiGen DS model
//!    with each Table-2 feature removed; error per held-out input shows
//!    every feature carries signal (the paper's §4.2.1 selection).
//! 2. **Model-family comparison** — the §5.2.1 selection table (Linear,
//!    Lasso, SVR-RBF, Random Forest) on the Cronos dataset.
//! 3. **Normalization ablation** — predict speedup from *raw* (unlogged,
//!    unnormalized) targets to show why the Fig.-12 normalization matters.

use bench::{sweep_freqs, REPS, SEED};
use energy_model::ds_model::DomainSpecificModel;
use energy_model::features::{CronosInput, LigenInput};
use energy_model::workflow::{characterize_cronos, characterize_ligen, training_set};
use gpu_sim::DeviceSpec;

/// LOOCV speedup-MAPE of a DS model over the characterized inputs, with an
/// optional feature column removed.
fn loocv_speedup_mape(
    inputs: &[energy_model::workflow::CharacterizedInput],
    drop_feature: Option<usize>,
    default_freq: f64,
) -> f64 {
    let mut total = 0.0;
    for i in 0..inputs.len() {
        let train: Vec<_> = inputs
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, c)| c.clone())
            .collect();
        let mut samples = training_set(&train);
        let mut held_features = (*inputs[i].features).clone();
        if let Some(col) = drop_feature {
            for s in &mut samples {
                std::sync::Arc::make_mut(&mut s.features).remove(col);
            }
            held_features.remove(col);
        }
        let model = DomainSpecificModel::train(&samples, default_freq, SEED);
        let freqs: Vec<f64> = inputs[i]
            .characterization
            .points
            .iter()
            .map(|p| p.freq_mhz)
            .collect();
        let curve = model.predict_curve(&held_features, &freqs);
        let truth: Vec<f64> = inputs[i]
            .characterization
            .points
            .iter()
            .map(|p| p.speedup)
            .collect();
        let pred: Vec<f64> = curve.iter().map(|p| p.speedup).collect();
        total += ml::metrics::mape(&truth, &pred);
    }
    total / inputs.len() as f64
}

fn feature_ablation() {
    println!("\n## Ablation 1 — LiGen domain-specific feature ablation");
    let spec = DeviceSpec::v100();
    let freqs = sweep_freqs(&spec);
    let configs = LigenInput::figure13_configs();
    let inputs = characterize_ligen(&spec, &configs, &freqs, REPS, Some(SEED));
    let full = loocv_speedup_mape(&inputs, None, spec.default_core_mhz);
    println!("full feature set (ligands, fragments, atoms): speedup MAPE {full:.4}");
    for (col, name) in [(0, "ligands"), (1, "fragments"), (2, "atoms")] {
        let m = loocv_speedup_mape(&inputs, Some(col), spec.default_core_mhz);
        println!(
            "without {name:<10}: speedup MAPE {m:.4}  ({:.1}× worse)",
            m / full
        );
    }
}

fn model_family() {
    println!("\n## Ablation 2 — model-family selection (Cronos dataset, §5.2.1)");
    let spec = DeviceSpec::v100();
    let freqs = sweep_freqs(&spec);
    let configs = CronosInput::paper_configs();
    let inputs = characterize_cronos(&spec, &configs, &freqs, REPS, Some(SEED));
    let samples = training_set(&inputs);
    let (model, scores) =
        DomainSpecificModel::train_selecting(&samples, spec.default_core_mhz, SEED);
    for (alg, score) in &scores {
        println!("{alg:?}: leave-one-input-out speedup MAPE {score:.4}");
    }
    println!("selected: {:?}", model.algorithm);
}

fn normalization_ablation() {
    println!("\n## Ablation 3 — why log-space targets + Fig.-12 normalization matter");
    let spec = DeviceSpec::v100();
    let freqs = sweep_freqs(&spec);
    let configs = CronosInput::paper_configs();
    let inputs = characterize_cronos(&spec, &configs, &freqs, REPS, Some(SEED));

    // Held-out largest grid; model trained on the rest.
    let train: Vec<_> = inputs[..4].to_vec();
    let samples = training_set(&train);
    let model = DomainSpecificModel::train(&samples, spec.default_core_mhz, SEED);
    let held = &inputs[4];

    // Raw-time error: the forest cannot extrapolate absolute magnitude.
    let mut raw_err = 0.0;
    let mut norm_err = 0.0;
    let truth_default = held.characterization.baseline_time_s;
    for p in &held.characterization.points {
        let (t_pred, _) = model.predict_time_energy(&held.features, p.freq_mhz);
        raw_err += ((t_pred - p.time_s) / p.time_s).abs();
        let (t_def_pred, _) = model.predict_time_energy(&held.features, spec.default_core_mhz);
        let speedup_pred = t_def_pred / t_pred;
        let speedup_true = truth_default / p.time_s;
        norm_err += ((speedup_pred - speedup_true) / speedup_true).abs();
    }
    let n = held.characterization.points.len() as f64;
    println!(
        "held-out 160x64x64: raw-time MAPE {:.3} vs normalized-speedup MAPE {:.4} — \
         the systematic magnitude offset cancels in the ratio (Fig. 12)",
        raw_err / n,
        norm_err / n
    );
}

fn permutation_importance_study() {
    println!("\n## Ablation 4 — permutation importance of the Table-2 features");
    let spec = DeviceSpec::v100();
    let freqs = sweep_freqs(&spec);
    let configs = LigenInput::figure13_configs();
    let inputs = characterize_ligen(&spec, &configs, &freqs, REPS, Some(SEED));
    let samples = training_set(&inputs);

    // Train the speedup-target forest exactly as the DS pipeline does and
    // measure how much shuffling each feature hurts (log-time MSE).
    let mut x = ml::dataset::Matrix::with_cols(4);
    let mut y = Vec::new();
    let mut row = Vec::with_capacity(4);
    for s in &samples {
        row.clear();
        row.extend_from_slice(&s.features);
        row.push(s.freq_mhz);
        x.push_row(&row);
        y.push(s.time_s.ln());
    }
    let mut forest = ml::forest::RandomForest::new(
        ml::forest::RandomForestParams {
            n_estimators: 60,
            ..Default::default()
        },
        SEED,
    );
    use ml::Regressor;
    forest.fit(&x, &y);
    let imp = ml::importance::permutation_importance(&forest, &x, &y, ml::metrics::mse, 3, SEED);
    let norm = ml::importance::normalized_importance(&imp);
    for (name, share) in ["ligands", "fragments", "atoms", "frequency"]
        .iter()
        .zip(&norm)
    {
        println!("{name:<10}: {:.1}% of predictive signal", share * 100.0);
    }
}

fn main() {
    feature_ablation();
    model_family();
    normalization_ablation();
    permutation_importance_study();
}
