//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p bench --release --bin figures -- <id> [<id> ...]
//! cargo run -p bench --release --bin figures -- all
//! ```
//!
//! Ids: `fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 table1 table2
//! fig13 fig14 headline`, plus `campaign [--resume]` — a supervised,
//! journaled multi-device characterization campaign under
//! `results/campaign/` that can be killed at any point and resumed.

use bench::*;
use energy_model::features::{CronosInput, LigenInput};
use energy_model::persist::atomic_write_str;
use energy_model::workflow::{characterize_cronos, characterize_ligen};
use gpu_sim::DeviceSpec;

/// Experiments that can fail for environmental reasons (full disk,
/// read-only results directory, a foreign campaign journal) return the
/// error instead of panicking; `main` turns it into a message + exit 1.
type ExperimentResult = Result<(), Box<dyn std::error::Error>>;

fn fig1() {
    println!("\n## Figure 1 — LiGen and Cronos multi-objective characterization (V100)");
    let spec = DeviceSpec::v100();
    print_characterization(
        "Fig 1a",
        &spec,
        &ligen_workload(&LigenInput::new(1024, 63, 8)),
    );
    print_characterization(
        "Fig 1b",
        &spec,
        &cronos_workload(&CronosInput::new(40, 16, 16)),
    );
}

fn fig2() {
    println!("\n## Figure 2 — LiGen characterization vs input size (V100)");
    let spec = DeviceSpec::v100();
    print_characterization(
        "Fig 2a (small: 2 lig × 89 at × 8 frag)",
        &spec,
        &ligen_workload(&LigenInput::new(2, 89, 8)),
    );
    print_characterization(
        "Fig 2b (large: 10000 lig × 89 at × 20 frag)",
        &spec,
        &ligen_workload(&LigenInput::new(10_000, 89, 20)),
    );
}

fn fig3() {
    println!("\n## Figure 3 — Cronos characterization vs input size (V100)");
    let spec = DeviceSpec::v100();
    print_characterization(
        "Fig 3a (20x8x8)",
        &spec,
        &cronos_workload(&CronosInput::new(20, 8, 8)),
    );
    print_characterization(
        "Fig 3b (160x64x64)",
        &spec,
        &cronos_workload(&CronosInput::new(160, 64, 64)),
    );
}

fn fig4() {
    println!("\n## Figure 4 — Cronos on NVIDIA V100, small vs large grid");
    let spec = DeviceSpec::v100();
    print_characterization(
        "Fig 4a (10x4x4)",
        &spec,
        &cronos_workload(&CronosInput::new(10, 4, 4)),
    );
    print_characterization(
        "Fig 4b (160x64x64)",
        &spec,
        &cronos_workload(&CronosInput::new(160, 64, 64)),
    );
}

fn fig5() {
    println!("\n## Figure 5 — Cronos on AMD MI100 (auto-frequency baseline)");
    let spec = DeviceSpec::mi100();
    print_characterization(
        "Fig 5a (10x4x4)",
        &spec,
        &cronos_workload(&CronosInput::new(10, 4, 4)),
    );
    print_characterization(
        "Fig 5b (160x64x64)",
        &spec,
        &cronos_workload(&CronosInput::new(160, 64, 64)),
    );
}

fn raw_ligen_panel(spec: &DeviceSpec, atoms: usize, frag_sweep: &[usize], ligands: usize) {
    let freqs = sweep_freqs(spec);
    for &f in frag_sweep {
        let ch = energy_model::characterize::characterize(
            spec,
            &ligen_workload(&LigenInput::new(ligands, atoms, f)),
            &freqs,
            REPS,
            Some(SEED),
        );
        print_table(
            &format!(
                "{} atoms, {} fragments, {} ligands on {}",
                atoms, f, ligands, spec.name
            ),
            &["core MHz", "time [s]", "energy [kJ]"],
            &raw_rows(&ch, 8),
        );
    }
}

fn fig6() {
    println!("\n## Figure 6 — LiGen raw energy/time vs fragments (V100, 100000 ligands)");
    let spec = DeviceSpec::v100();
    raw_ligen_panel(&spec, 31, &[4, 8, 16, 20], 100_000);
    raw_ligen_panel(&spec, 89, &[4, 8, 16, 20], 100_000);
}

fn fig7() {
    println!("\n## Figure 7 — LiGen raw energy/time vs fragments (MI100, 100000 ligands)");
    let spec = DeviceSpec::mi100();
    raw_ligen_panel(&spec, 31, &[4, 8, 16, 20], 100_000);
    raw_ligen_panel(&spec, 89, &[4, 8, 16, 20], 100_000);
}

fn raw_ligen_atom_panel(spec: &DeviceSpec, fragments: usize, atom_sweep: &[usize], ligands: usize) {
    let freqs = sweep_freqs(spec);
    for &a in atom_sweep {
        let ch = energy_model::characterize::characterize(
            spec,
            &ligen_workload(&LigenInput::new(ligands, a, fragments)),
            &freqs,
            REPS,
            Some(SEED),
        );
        print_table(
            &format!(
                "{} atoms, {} fragments, {} ligands on {}",
                a, fragments, ligands, spec.name
            ),
            &["core MHz", "time [s]", "energy [kJ]"],
            &raw_rows(&ch, 8),
        );
    }
}

fn fig8() {
    println!("\n## Figure 8 — LiGen raw energy/time vs atoms (V100, 100000 ligands)");
    let spec = DeviceSpec::v100();
    raw_ligen_atom_panel(&spec, 4, &[31, 63, 74, 89], 100_000);
    raw_ligen_atom_panel(&spec, 20, &[31, 63, 74, 89], 100_000);
}

fn fig9() {
    println!("\n## Figure 9 — LiGen raw energy/time vs atoms (MI100, 100000 ligands)");
    let spec = DeviceSpec::mi100();
    raw_ligen_atom_panel(&spec, 4, &[31, 63, 74, 89], 100_000);
    raw_ligen_atom_panel(&spec, 20, &[31, 63, 74, 89], 100_000);
}

fn fig10() {
    println!("\n## Figure 10 — LiGen characterization, small vs large input, V100 & MI100");
    let small = LigenInput::new(256, 31, 4);
    let large = LigenInput::new(10_000, 89, 20);
    for spec in [DeviceSpec::v100(), DeviceSpec::mi100()] {
        print_characterization(
            &format!("small input ({})", small.label()),
            &spec,
            &ligen_workload(&small),
        );
        print_characterization(
            &format!("large input ({})", large.label()),
            &spec,
            &ligen_workload(&large),
        );
    }
}

fn table1() {
    println!("\n## Table 1 — general-purpose model features (static code features)");
    let names = [
        ("f_int_add", "integer additions and subtractions"),
        ("f_int_mul", "integer multiplications"),
        ("f_int_div", "integer divisions"),
        ("f_int_bw", "integer bitwise operations"),
        ("f_float_add", "floating point additions and subtractions"),
        ("f_float_mul", "floating point multiplications"),
        ("f_float_div", "floating point divisions"),
        ("f_sf", "special functions"),
        ("f_gl_access", "global memory accesses"),
        ("f_loc_access", "local memory accesses"),
    ];
    let rows: Vec<Vec<String>> = names
        .iter()
        .map(|(n, d)| vec![n.to_string(), d.to_string()])
        .collect();
    print_table("Static features", &["feature", "description"], &rows);
    // And the two applications' extracted vectors.
    let c = energy_model::workflow::cronos_static_features(&CronosInput::new(160, 64, 64));
    let l = energy_model::workflow::ligen_static_features(&LigenInput::new(10_000, 89, 20));
    let rows: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(i, (n, _))| {
            vec![
                n.to_string(),
                format!("{:.4}", c[i]),
                format!("{:.4}", l[i]),
            ]
        })
        .collect();
    print_table(
        "Extracted static feature fractions",
        &["feature", "Cronos", "LiGen"],
        &rows,
    );
}

fn table2() {
    println!("\n## Table 2 — domain-specific model features");
    let rows = vec![
        vec![
            "Cronos".to_string(),
            "f_grid_x, f_grid_y, f_grid_z".to_string(),
        ],
        vec![
            "LiGen".to_string(),
            "f_ligands, f_fragments, f_atoms".to_string(),
        ],
    ];
    print_table(
        "Domain-specific features",
        &["application", "features"],
        &rows,
    );
}

fn fig13() {
    println!("\n## Figure 13 — prediction MAPE, general-purpose vs domain-specific");
    let spec = DeviceSpec::v100();
    let cronos_rows = fig13_cronos(&spec);
    print_mape_rows(
        "Fig 13a/b — Cronos (speedup / normalized energy)",
        &cronos_rows,
    );
    let ligen_rows = fig13_ligen(&spec);
    print_mape_rows(
        "Fig 13c/d — LiGen (speedup / normalized energy)",
        &ligen_rows,
    );

    let (ms, me, mins, mine) = headline(&cronos_rows);
    println!(
        "\nCronos: mean improvement speedup {ms:.1}× energy {me:.1}× (min {mins:.1}× / {mine:.1}×)"
    );
    let (ms, me, mins, mine) = headline(&ligen_rows);
    println!(
        "LiGen:  mean improvement speedup {ms:.1}× energy {me:.1}× (min {mins:.1}× / {mine:.1}×)"
    );
}

fn fig14() {
    println!("\n## Figure 14 — predicted vs true Pareto sets");
    let spec = DeviceSpec::v100();
    let freqs = sweep_freqs(&spec);

    let ligen_configs = LigenInput::figure13_configs();
    let ligen_inputs = characterize_ligen(&spec, &ligen_configs, &freqs, REPS, Some(SEED));
    let big = ligen_configs
        .iter()
        .position(|c| c.ligands == 10_000 && c.atoms == 89 && c.fragments == 20)
        .expect("large input in the set");
    let gpf = energy_model::workflow::ligen_static_features(&ligen_configs[big]);
    let eval = fig14_for(&spec, &ligen_inputs, big, &gpf);
    print_pareto_eval("Fig 14a — LiGen 10000×89×20", &eval);

    let cronos_configs = CronosInput::paper_configs();
    let cronos_inputs = characterize_cronos(&spec, &cronos_configs, &freqs, REPS, Some(SEED));
    let gpf = energy_model::workflow::cronos_static_features(&cronos_configs[4]);
    let eval = fig14_for(&spec, &cronos_inputs, 4, &gpf);
    print_pareto_eval("Fig 14b — Cronos 160x64x64", &eval);
}

fn headline_cmd() {
    println!("\n## Headline — domain-specific vs general-purpose error");
    let spec = DeviceSpec::v100();
    let mut all = fig13_cronos(&spec);
    all.extend(fig13_ligen(&spec));
    let (ms, me, mins, mine) = headline(&all);
    println!(
        "over all {} inputs: mean improvement speedup {ms:.1}×, energy {me:.1}×; \
         minimum {mins:.1}× / {mine:.1}×",
        all.len()
    );
}

fn fig13_mi100() {
    println!("\n## Extension — Figure-13 protocol on the AMD MI100 (methodology portability)");
    let spec = DeviceSpec::mi100();
    let rows = fig13_cronos(&spec);
    print_mape_rows("Cronos on MI100 (speedup / normalized energy)", &rows);
    let lrows = fig13_ligen(&spec);
    print_mape_rows("LiGen on MI100 (speedup / normalized energy)", &lrows);
    let mut all = rows;
    all.extend(lrows);
    let (ms, me, mins, mine) = headline(&all);
    println!(
        "\nMI100: mean improvement speedup {ms:.1}× energy {me:.1}× (min {mins:.1}× / {mine:.1}×)"
    );
}

fn portability() {
    println!("\n## Portability — the methodology across all three SYnergy vendors");
    // Not a paper figure: the paper evaluates V100 and MI100 and lists
    // Intel/Level Zero as supported by SYnergy; this experiment runs the
    // same Cronos characterization on all three simulated devices.
    for spec in [
        DeviceSpec::v100(),
        DeviceSpec::mi100(),
        DeviceSpec::max1100(),
    ] {
        print_characterization(
            &format!("Cronos 160x64x64 on {}", spec.name),
            &spec,
            &cronos_workload(&CronosInput::new(160, 64, 64)),
        );
    }
}

/// Profiles the trace-replay sweep engine against the legacy
/// per-submission sweep on the full-resolution V100 frequency sweep and
/// writes the comparison to `BENCH_sweep.json` (the committed before/after
/// record backing DESIGN.md's performance-architecture section).
fn sweep_profile() -> ExperimentResult {
    use energy_model::characterize::{characterize, characterize_serial, Workload};
    use serde::Serialize;
    use std::time::Instant;

    #[derive(Serialize)]
    struct Case {
        workload: String,
        noise: bool,
        legacy_s: f64,
        replay_s: f64,
        speedup: f64,
    }

    #[derive(Serialize)]
    struct Profile {
        bench: String,
        device: String,
        freq_points: u64,
        reps: u64,
        threads: u64,
        cases: Vec<Case>,
    }

    let spec = DeviceSpec::v100();
    let freqs = energy_model::workflow::experiment_frequencies(&spec, 1);
    let workloads: Vec<(&str, Box<dyn Workload>)> = vec![
        (
            "cronos 20x8x8",
            Box::new(cronos_workload(&CronosInput::new(20, 8, 8))),
        ),
        (
            "cronos 160x64x64",
            Box::new(cronos_workload(&CronosInput::new(160, 64, 64))),
        ),
        (
            "ligen 256x31x4",
            Box::new(ligen_workload(&LigenInput::new(256, 31, 4))),
        ),
        (
            "ligen 10000x89x20",
            Box::new(ligen_workload(&LigenInput::new(10_000, 89, 20))),
        ),
    ];

    println!(
        "\n## Sweep-engine profile — {} frequencies × {REPS} reps on {}",
        freqs.len(),
        spec.name
    );
    let mut cases = Vec::new();
    for (name, w) in &workloads {
        for noise_seed in [None, Some(SEED)] {
            // Untimed warm-up run of each path, then the timed run — both
            // paths get identical treatment.
            let _ = characterize_serial(&spec, w.as_ref(), &freqs, REPS, noise_seed);
            let t0 = Instant::now();
            let slow = characterize_serial(&spec, w.as_ref(), &freqs, REPS, noise_seed);
            let legacy_s = t0.elapsed().as_secs_f64();

            let _ = characterize(&spec, w.as_ref(), &freqs, REPS, noise_seed);
            let t1 = Instant::now();
            let fast = characterize(&spec, w.as_ref(), &freqs, REPS, noise_seed);
            let replay_s = t1.elapsed().as_secs_f64();

            assert_eq!(fast, slow, "sweep engines diverged on {name}");
            let speedup = legacy_s / replay_s;
            println!(
                "{name:>18} noise={}: legacy {legacy_s:.3} s, replay {replay_s:.3} s — {speedup:.1}×",
                noise_seed.is_some()
            );
            cases.push(Case {
                workload: name.to_string(),
                noise: noise_seed.is_some(),
                legacy_s,
                replay_s,
                speedup,
            });
        }
    }

    let profile = Profile {
        bench: "full-resolution characterization sweep: legacy per-submission vs trace-replay"
            .to_string(),
        device: spec.name.clone(),
        freq_points: freqs.len() as u64,
        reps: REPS as u64,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        cases,
    };
    let json = serde_json::to_string_pretty(&profile)?;
    atomic_write_str(std::path::Path::new("BENCH_sweep.json"), &json)?;
    println!("\nwrote BENCH_sweep.json");
    Ok(())
}

/// Profiles the flattened-forest serving path against the row-at-a-time
/// pointer-walk reference on a production-shape Cronos model and writes
/// the comparison to `BENCH_serving.json` (the committed before/after
/// record backing DESIGN.md's serving section). Asserts bit-identity
/// between the paths unconditionally, and the ≥`SERVING_SPEEDUP_MIN`×
/// throughput floor when that env var is set (CI sets it).
fn serving_profile(quick: bool) -> ExperimentResult {
    use governor::{EngineConfig, PredictionEngine, PredictionRequest};
    use serde::Serialize;
    use std::time::Instant;

    #[derive(Serialize)]
    struct Drain {
        batch_size: u64,
        rounds: u64,
        distinct_keys: u64,
        p99_ms: f64,
        cache_hit_rate: f64,
    }

    #[derive(Serialize)]
    struct Profile {
        bench: String,
        device: String,
        freq_points: u64,
        training_samples: u64,
        eval_requests: u64,
        bit_identical: bool,
        single_reference_predictions_per_s: f64,
        single_flat_predictions_per_s: f64,
        batched_flat_predictions_per_s: f64,
        batched_speedup_vs_reference: f64,
        drain: Drain,
    }

    println!("\n## Serving profile — flat-forest batched inference vs pointer walk (V100)");
    let spec = DeviceSpec::v100();
    // Quick mode thins the *training* grid (characterization cost) but the
    // curve evaluation always sweeps the full frequency list — that is the
    // shape the serving path sees in production.
    let train_freqs = if quick {
        spec.core_freqs.strided(8)
    } else {
        sweep_freqs(&spec)
    };
    let freqs = sweep_freqs(&spec);
    let configs = CronosInput::paper_configs();
    let configs = if quick { &configs[..2] } else { &configs[..] };
    let reps = if quick { 1 } else { REPS };
    let inputs = characterize_cronos(&spec, configs, &train_freqs, reps, Some(SEED));
    let samples = energy_model::workflow::training_set(&inputs);
    let model = train_ds(&inputs, spec.default_core_mhz);
    assert!(model.has_flat(), "forest model must carry the flat layout");

    // Distinct off-grid queries: every one misses the memo cache, so the
    // throughput numbers measure inference, not memoization.
    let eval: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            vec![
                8.0 + (i % 17) as f64 * 7.0,
                4.0 + (i % 11) as f64 * 3.0,
                4.0 + (i % 7) as f64 * 5.0,
            ]
        })
        .collect();
    let refs: Vec<&[f64]> = eval.iter().map(|f| f.as_slice()).collect();

    // Bit-identity before any timing: a fast wrong answer must never pass.
    let batched = model.predict_curves_batch(&refs, &freqs);
    for (f, prediction) in eval.iter().zip(&batched) {
        let reference = model.predict_curve_reference(f, &freqs);
        assert_eq!(prediction.curve.len(), reference.len());
        for (a, b) in prediction.curve.iter().zip(&reference) {
            assert_eq!(a.freq_mhz.to_bits(), b.freq_mhz.to_bits());
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "input {f:?}");
            assert_eq!(a.norm_energy.to_bits(), b.norm_energy.to_bits());
        }
    }

    // Interleaved per-round minima (scheduler noise only adds time).
    let rounds = if quick { 4 } else { 12 };
    let mut reference_min = f64::INFINITY;
    let mut flat_single_min = f64::INFINITY;
    let mut flat_batched_min = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for f in &eval {
            std::hint::black_box(model.predict_curve_reference(f, &freqs));
        }
        reference_min = reference_min.min(t0.elapsed().as_secs_f64());

        let t1 = Instant::now();
        for f in &eval {
            std::hint::black_box(model.predict_curve(f, &freqs));
        }
        flat_single_min = flat_single_min.min(t1.elapsed().as_secs_f64());

        let t2 = Instant::now();
        std::hint::black_box(model.predict_curves_batch(&refs, &freqs));
        flat_batched_min = flat_batched_min.min(t2.elapsed().as_secs_f64());
    }
    let n = eval.len() as f64;
    let speedup = reference_min / flat_batched_min;
    println!(
        "{} requests × {} freqs: reference {:.2} ms, flat single {:.2} ms, \
         flat batched {:.2} ms — {speedup:.1}×",
        eval.len(),
        freqs.len(),
        reference_min * 1e3,
        flat_single_min * 1e3,
        flat_batched_min * 1e3,
    );

    // End-to-end drain: a repetitive arrival stream (the governor's common
    // case) over a bounded key set, so later rounds serve from the shards.
    let mut engine = PredictionEngine::new(EngineConfig {
        freqs: freqs.clone(),
        queue_capacity: 64,
        max_batch: 64,
    });
    engine.install_model("cronos", model);
    let pool: Vec<Vec<f64>> = (0..96)
        .map(|i| {
            vec![
                8.0 + (i % 19) as f64 * 6.0,
                4.0 + (i % 13) as f64 * 3.0,
                4.0 + (i % 5) as f64 * 5.0,
            ]
        })
        .collect();
    let drain_rounds = if quick { 50 } else { 400 };
    let mut latencies = Vec::with_capacity(drain_rounds);
    let mut next = 0usize;
    for _ in 0..drain_rounds {
        for _ in 0..64 {
            let features = pool[next % pool.len()].clone();
            let _ = engine.try_enqueue(PredictionRequest {
                job_id: next as u64,
                app: "cronos".to_string(),
                features,
            });
            next += 1;
        }
        let t = Instant::now();
        let served = engine.drain_batch();
        latencies.push(t.elapsed().as_secs_f64());
        assert_eq!(served.len(), 64);
    }
    latencies.sort_by(f64::total_cmp);
    let p99_idx = ((latencies.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
    let p99_ms = latencies[p99_idx] * 1e3;
    let stats = engine.cache_stats();
    println!(
        "drain: {drain_rounds} batches of 64 over {} keys — p99 {p99_ms:.3} ms, \
         cache hit rate {:.1}%",
        pool.len(),
        100.0 * stats.hit_rate()
    );

    if let Ok(min) = std::env::var("SERVING_SPEEDUP_MIN") {
        let min: f64 = min.parse()?;
        assert!(
            speedup >= min,
            "flat batched serving is only {speedup:.2}× the pointer walk (floor {min}×)"
        );
    }

    let profile = Profile {
        bench: "prediction serving: row-at-a-time pointer walk vs sweep-aware flat batched"
            .to_string(),
        device: spec.name.clone(),
        freq_points: freqs.len() as u64,
        training_samples: samples.len() as u64,
        eval_requests: eval.len() as u64,
        bit_identical: true,
        single_reference_predictions_per_s: n / reference_min,
        single_flat_predictions_per_s: n / flat_single_min,
        batched_flat_predictions_per_s: n / flat_batched_min,
        batched_speedup_vs_reference: speedup,
        drain: Drain {
            batch_size: 64,
            rounds: drain_rounds as u64,
            distinct_keys: pool.len() as u64,
            p99_ms,
            cache_hit_rate: stats.hit_rate(),
        },
    };
    let json = serde_json::to_string_pretty(&profile)?;
    atomic_write_str(std::path::Path::new("BENCH_serving.json"), &json)?;
    println!("\nwrote BENCH_serving.json");
    Ok(())
}

/// Runs a supervised multi-device characterization campaign (one healthy
/// device slot plus one degraded one) with journaled checkpoint/resume
/// under `results/campaign/`. Kill it at any point and re-run with
/// `--resume`: the campaign continues from the last committed sweep point
/// and finishes with bit-identical results. The quarantine stage then
/// decides which points are trustworthy enough to train on, and the full
/// provenance lands in `results/campaign/summary.json`.
fn campaign_cmd(resume: bool) -> ExperimentResult {
    use energy_model::{
        quarantine_results, run_campaign, CampaignConfig, DeviceSlot, QuarantinePolicy, Workload,
    };
    use gpu_sim::{FaultPlan, Schedule, ThrottleWindow};
    use serde::Serialize;

    println!("\n## Campaign — journaled multi-device characterization (V100)");
    let spec = DeviceSpec::v100();
    let freqs = sweep_freqs(&spec);
    let cronos = cronos_workload(&CronosInput::new(40, 16, 16));
    let ligen = ligen_workload(&LigenInput::new(1024, 63, 8));
    let workloads: Vec<&dyn Workload> = vec![&cronos, &ligen];

    // gpu1 models a degrading unit: rejected clock requests, throttling
    // windows, and enough dropped launches to exhaust retry budgets now
    // and then — the campaign reroutes that work onto gpu0.
    let degraded = FaultPlan::seeded(SEED)
        .reject_set_frequency(Schedule::Prob(0.2))
        .throttle(
            Schedule::Prob(0.1),
            ThrottleWindow {
                cap_mhz: 800.0,
                launches: 3,
            },
        )
        .fail_launches(Schedule::Prob(0.5));
    let mut cfg = CampaignConfig::new(
        spec.clone(),
        vec![
            DeviceSlot::healthy("gpu0"),
            DeviceSlot::with_health("gpu1", degraded),
        ],
        freqs,
    );
    cfg.reps = REPS;
    cfg.noise_seed = Some(SEED);
    cfg.snapshot_every = 16;

    let dir = std::path::Path::new("results/campaign");
    let outcome = run_campaign(&cfg, &workloads, dir, resume)?;

    let m = &outcome.metrics;
    print_table(
        "Fleet audit",
        &["counter", "value"],
        &[
            vec!["assignments".into(), m.assignments.to_string()],
            vec!["backend failures".into(), m.backend_failures.to_string()],
            vec!["watchdog misses".into(), m.watchdog_misses.to_string()],
            vec!["items re-scheduled".into(), m.items_rescheduled.to_string()],
            vec!["breaker trips".into(), m.breaker_trips.to_string()],
            vec!["devices evicted".into(), m.devices_evicted.to_string()],
            vec!["evicted slots".into(), m.evicted_slots.join(", ")],
        ],
    );
    let (kept, report) = quarantine_results(&outcome.results, &QuarantinePolicy::default());
    for ch in &kept {
        print_table(
            &format!(
                "{} on {} — {} of {} points admitted to training",
                ch.workload,
                ch.device,
                ch.points.len(),
                cfg.freqs.len()
            ),
            &["core MHz", "speedup", "norm energy"],
            &characterization_rows(ch, 6),
        );
    }
    println!(
        "quarantine: kept {} points, dropped {} (full provenance in summary.json)",
        report.kept,
        report.dropped.len()
    );

    #[derive(Serialize)]
    struct Summary {
        device: String,
        workloads: Vec<String>,
        assignments: u64,
        backend_failures: u64,
        watchdog_misses: u64,
        items_rescheduled: u64,
        breaker_trips: u64,
        devices_evicted: u64,
        evicted_slots: Vec<String>,
        quarantine: energy_model::QuarantineReport,
        training_set: Vec<energy_model::Characterization>,
    }
    let summary = Summary {
        device: spec.name.clone(),
        workloads: workloads.iter().map(|w| w.name()).collect(),
        assignments: m.assignments,
        backend_failures: m.backend_failures,
        watchdog_misses: m.watchdog_misses,
        items_rescheduled: m.items_rescheduled,
        breaker_trips: m.breaker_trips,
        devices_evicted: m.devices_evicted,
        evicted_slots: m.evicted_slots.clone(),
        quarantine: report,
        training_set: kept,
    };
    let json = serde_json::to_string_pretty(&summary)?;
    atomic_write_str(&dir.join("summary.json"), &json)?;
    println!("wrote results/campaign/summary.json");
    Ok(())
}

/// Runs the closed-loop online experiment: train and publish the two
/// domain-specific models into a registry under `results/governor/`,
/// replay the pinned job stream under the `default-clock` baseline and
/// the requested policies, and record the headline comparison (energy
/// saved vs the baseline, deadline miss rate, prediction-cache hit rate)
/// in `results/governor/summary.json`.
fn govern_cmd(policies: &[governor::Policy]) -> ExperimentResult {
    use governor::{run_governor, train_and_publish, GovernorConfig, ModelRegistry, Policy};
    use serde::Serialize;

    println!("\n## Govern — deadline-aware closed-loop DVFS (V100)");
    let dir = std::path::Path::new("results/governor");
    let registry = ModelRegistry::open(&dir.join("registry"));
    let base_cfg = GovernorConfig::pinned(Policy::DefaultClock);
    let fingerprint = train_and_publish(&base_cfg, &registry)?;
    println!(
        "published cronos v{:04} + ligen v{:04} (fingerprint {fingerprint:#018x})",
        registry.latest("cronos")?,
        registry.latest("ligen")?
    );

    let baseline = run_governor(&base_cfg, &registry);

    #[derive(Serialize)]
    struct PolicyRow {
        policy: String,
        total_time_s: f64,
        total_energy_j: f64,
        energy_saved_vs_default: f64,
        deadline_miss_rate: f64,
        fallbacks: usize,
        cache_hit_rate: f64,
    }

    let mut rows = Vec::new();
    let mut reports = vec![baseline.clone()];
    for &policy in policies {
        if policy != Policy::DefaultClock {
            let mut cfg = base_cfg.clone();
            cfg.policy = policy;
            reports.push(run_governor(&cfg, &registry));
        }
    }
    for report in &reports {
        rows.push(PolicyRow {
            policy: report.policy.name().to_string(),
            total_time_s: report.total_time_s,
            total_energy_j: report.total_energy_j,
            energy_saved_vs_default: 1.0 - report.total_energy_j / baseline.total_energy_j,
            deadline_miss_rate: report.miss_rate,
            fallbacks: report.fallbacks,
            cache_hit_rate: report.cache.hit_rate(),
        });
    }

    print_table(
        "Closed-loop governor vs default clock (pinned stream, 40 jobs)",
        &[
            "policy",
            "time (s)",
            "energy (J)",
            "energy saved",
            "miss rate",
            "fallbacks",
            "cache hit rate",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    format!("{:.3}", r.total_time_s),
                    format!("{:.1}", r.total_energy_j),
                    format!("{:.1}%", 100.0 * r.energy_saved_vs_default),
                    format!("{:.1}%", 100.0 * r.deadline_miss_rate),
                    r.fallbacks.to_string(),
                    format!("{:.1}%", 100.0 * r.cache_hit_rate),
                ]
            })
            .collect::<Vec<_>>(),
    );

    #[derive(Serialize)]
    struct Summary {
        device: String,
        seed: u64,
        n_jobs: usize,
        training_fingerprint: u64,
        policies: Vec<PolicyRow>,
    }
    let summary = Summary {
        device: baseline.device.clone(),
        seed: baseline.seed,
        n_jobs: baseline.n_jobs,
        training_fingerprint: fingerprint,
        policies: rows,
    };
    let json = serde_json::to_string_pretty(&summary)?;
    atomic_write_str(&dir.join("summary.json"), &json)?;
    println!("wrote results/governor/summary.json");
    Ok(())
}

/// Runs the heterogeneous fleet experiment — min-energy placement over
/// 2×V100 + 2×MI100 vs the round-robin-at-default-clock fleet baseline
/// vs the single-device governor — and writes the committed guard
/// numbers to `BENCH_fleet.json` (the margins the `fleet` Criterion
/// bench and the `fleet-smoke` CI job re-assert).
fn fleet_cmd() -> ExperimentResult {
    use governor::{
        run_fleet, run_governor, train_and_publish, train_and_publish_fleet, FleetConfig,
        GovernorConfig, ModelRegistry, Policy,
    };
    use serde::Serialize;

    println!("\n## Fleet — heterogeneous multi-device scheduling (2×V100 + 2×MI100)");
    let dir = std::path::Path::new("results/fleet");
    let registry = ModelRegistry::open(&dir.join("registry"));
    train_and_publish(&GovernorConfig::pinned(Policy::DefaultClock), &registry)?;
    let fingerprints = train_and_publish_fleet(&FleetConfig::pinned(), &registry)?;
    for (class, fingerprint) in &fingerprints {
        println!("published per-class models for {class} (fingerprint {fingerprint:#018x})");
    }

    let fleet = run_fleet(&FleetConfig::pinned(), &registry);
    let round_robin = run_fleet(&FleetConfig::pinned_round_robin(), &registry);
    let single = run_governor(
        &GovernorConfig::pinned(Policy::MinEnergyUnderDeadline),
        &registry,
    );

    print_table(
        "Fleet vs baselines (pinned stream, 40 jobs)",
        &[
            "scheduler",
            "energy (J)",
            "miss rate",
            "makespan (s)",
            "stolen",
            "rescheduled",
        ],
        &[
            vec![
                "fleet min-energy".to_string(),
                format!("{:.1}", fleet.total_energy_j),
                format!("{:.1}%", 100.0 * fleet.miss_rate),
                format!("{:.3}", fleet.makespan_s),
                fleet.jobs_stolen.to_string(),
                fleet.items_rescheduled.to_string(),
            ],
            vec![
                "fleet round-robin".to_string(),
                format!("{:.1}", round_robin.total_energy_j),
                format!("{:.1}%", 100.0 * round_robin.miss_rate),
                format!("{:.3}", round_robin.makespan_s),
                round_robin.jobs_stolen.to_string(),
                round_robin.items_rescheduled.to_string(),
            ],
            vec![
                "single V100 min-energy".to_string(),
                format!("{:.1}", single.total_energy_j),
                format!("{:.1}%", 100.0 * single.miss_rate),
                format!("{:.3}", single.total_time_s),
                "-".to_string(),
                "-".to_string(),
            ],
        ],
    );

    let device_rows: Vec<Vec<String>> = fleet
        .devices
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                d.class.clone(),
                d.jobs_run.to_string(),
                format!("{:.3}", d.busy_time_s),
                format!("{:.1}", d.energy_j),
                d.stolen_in.to_string(),
            ]
        })
        .collect();
    print_table(
        "Per-device fleet breakdown (min-energy placement)",
        &[
            "device",
            "class",
            "jobs",
            "busy (s)",
            "energy (J)",
            "stolen in",
        ],
        &device_rows,
    );

    #[derive(Serialize)]
    struct SchedulerRow {
        total_energy_j: f64,
        miss_rate: f64,
        deadline_misses: usize,
        fallbacks: usize,
        jobs_stolen: u64,
        items_rescheduled: u64,
        affinity_fallbacks: u64,
        cache_hit_rate: f64,
    }
    fn row_fleet(r: &governor::FleetReport) -> SchedulerRow {
        SchedulerRow {
            total_energy_j: r.total_energy_j,
            miss_rate: r.miss_rate,
            deadline_misses: r.deadline_misses,
            fallbacks: r.fallbacks,
            jobs_stolen: r.jobs_stolen,
            items_rescheduled: r.items_rescheduled,
            affinity_fallbacks: r.affinity_fallbacks,
            cache_hit_rate: r.cache.hit_rate(),
        }
    }

    #[derive(Serialize)]
    struct FleetBench {
        bench: String,
        seed: u64,
        n_jobs: usize,
        devices: Vec<String>,
        fleet: SchedulerRow,
        round_robin: SchedulerRow,
        single_device: SchedulerRow,
        energy_margin_vs_round_robin: f64,
        energy_margin_vs_single_device: f64,
        miss_rate_delta_vs_round_robin: f64,
        miss_rate_delta_vs_single_device: f64,
    }
    let bench = FleetBench {
        bench: "fleet scheduling: min-energy placement vs round-robin default clock \
                vs single-device governor"
            .to_string(),
        seed: fleet.seed,
        n_jobs: fleet.n_jobs,
        devices: fleet
            .devices
            .iter()
            .map(|d| format!("{} ({})", d.name, d.class))
            .collect(),
        fleet: row_fleet(&fleet),
        round_robin: row_fleet(&round_robin),
        single_device: SchedulerRow {
            total_energy_j: single.total_energy_j,
            miss_rate: single.miss_rate,
            deadline_misses: single.deadline_misses,
            fallbacks: single.fallbacks,
            jobs_stolen: 0,
            items_rescheduled: 0,
            affinity_fallbacks: 0,
            cache_hit_rate: single.cache.hit_rate(),
        },
        energy_margin_vs_round_robin: 1.0 - fleet.total_energy_j / round_robin.total_energy_j,
        energy_margin_vs_single_device: 1.0 - fleet.total_energy_j / single.total_energy_j,
        miss_rate_delta_vs_round_robin: fleet.miss_rate - round_robin.miss_rate,
        miss_rate_delta_vs_single_device: fleet.miss_rate - single.miss_rate,
    };

    // The pin itself, enforced before anything is written: the committed
    // numbers can never describe a regressed scheduler.
    assert!(bench.energy_margin_vs_round_robin >= 0.0);
    assert!(bench.energy_margin_vs_single_device >= 0.0);
    assert!(bench.miss_rate_delta_vs_round_robin <= 0.0);
    assert!(bench.miss_rate_delta_vs_single_device <= 0.0);

    let json = serde_json::to_string_pretty(&bench)?;
    atomic_write_str(std::path::Path::new("BENCH_fleet.json"), &json)?;
    println!(
        "\nwrote BENCH_fleet.json ({:.1}% energy vs round-robin, {:.1}% vs single device)",
        100.0 * bench.energy_margin_vs_round_robin,
        100.0 * bench.energy_margin_vs_single_device
    );
    Ok(())
}

/// Runs the adaptive model lifecycle experiment: a governor stream with
/// (optionally) injected hardware efficiency drift mid-stream, the drift
/// detector armed, online retraining from a quarantine-cleaned campaign,
/// and a canary publish with measured promote/rollback. Writes
/// `results/lifecycle/summary.json` and — with `--inject-drift` — the
/// committed guard numbers to `BENCH_lifecycle.json` (recovery time and
/// the post-promote MAPE margin versus a from-scratch retrain), asserted
/// before anything is written.
fn lifecycle_cmd(inject_drift: bool) -> ExperimentResult {
    use governor::{
        efficiency_drift, run_lifecycle, train_and_publish, DriftConfig, DriftScenario,
        LifecycleConfig, LifecycleEvent, ModelRegistry, Policy,
    };
    use serde::Serialize;

    println!("\n## Lifecycle — drift detection, online retrain, canary publish (V100)");
    let dir = std::path::Path::new("results/lifecycle");
    // Version numbers feed the canary traffic hash, so a stale registry
    // from a previous invocation would shift the measured slice: every
    // run starts from a clean slate to stay pinned.
    let _ = std::fs::remove_dir_all(dir);
    let registry = ModelRegistry::open(&dir.join("registry"));
    let mut cfg = LifecycleConfig::pinned(Policy::MinEnergyUnderDeadline);
    let drift_at = (cfg.governor.n_jobs as u64) / 3;
    if inject_drift {
        cfg.scenario = Some(DriftScenario {
            at_job: drift_at,
            spec: efficiency_drift(&cfg.governor.spec),
        });
    }
    let fingerprint = train_and_publish(&cfg.governor, &registry)?;
    println!(
        "published cronos v{:04} + ligen v{:04} (fingerprint {fingerprint:#018x}), \
         drift {}",
        registry.latest("cronos")?,
        registry.latest("ligen")?,
        if inject_drift {
            format!("injected at job {drift_at}")
        } else {
            "not injected".to_string()
        }
    );

    // The stale baseline: same stream, same (possibly drifted) hardware,
    // detector disabled — the governor that never adapts.
    let mut stale_cfg = cfg.clone();
    stale_cfg.drift = DriftConfig::disabled();
    let stale = run_lifecycle(&stale_cfg, &registry, &dir.join("baseline"), false)?;
    let report = run_lifecycle(&cfg, &registry, &dir.join("run"), false)?;

    #[derive(Serialize)]
    struct Row {
        mode: String,
        total_energy_j: f64,
        deadline_miss_rate: f64,
        retrains: u32,
        promotes: u32,
        rollbacks: u32,
        lifecycle_fallbacks: u64,
    }
    let row = |mode: &str, r: &governor::LifecycleReport| Row {
        mode: mode.to_string(),
        total_energy_j: r.total_energy_j,
        deadline_miss_rate: r.miss_rate,
        retrains: r.retrains,
        promotes: r.promotes,
        rollbacks: r.rollbacks,
        lifecycle_fallbacks: r.degradation.lifecycle_fallbacks,
    };
    let rows = vec![
        row("stale (no lifecycle)", &stale),
        row("lifecycle", &report),
    ];
    print_table(
        "Adaptive lifecycle vs stale governor (pinned stream, 40 jobs)",
        &[
            "mode",
            "energy (J)",
            "miss rate",
            "retrains",
            "promotes",
            "rollbacks",
            "fallbacks",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.mode.clone(),
                    format!("{:.1}", r.total_energy_j),
                    format!("{:.1}%", 100.0 * r.deadline_miss_rate),
                    r.retrains.to_string(),
                    r.promotes.to_string(),
                    r.rollbacks.to_string(),
                    r.lifecycle_fallbacks.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    #[derive(Serialize)]
    struct Summary {
        device: String,
        seed: u64,
        n_jobs: usize,
        injected_drift: bool,
        drift_at_job: Option<u64>,
        modes: Vec<Row>,
        events: Vec<governor::LifecycleEvent>,
    }
    let summary = Summary {
        device: report.device.clone(),
        seed: report.seed,
        n_jobs: report.n_jobs,
        injected_drift: inject_drift,
        drift_at_job: inject_drift.then_some(drift_at),
        modes: rows,
        events: report.events.clone(),
    };
    atomic_write_str(
        &dir.join("summary.json"),
        &serde_json::to_string_pretty(&summary)?,
    )?;
    println!("wrote results/lifecycle/summary.json");

    if !inject_drift {
        // A healthy stream must leave the lifecycle silent.
        assert_eq!(
            report.retrains, 0,
            "lifecycle retrained on a healthy stream"
        );
        return Ok(());
    }

    // ---- The committed guards (asserted before BENCH is written) ----
    let (promoted_app, promote_at) = report
        .events
        .iter()
        .find_map(|e| match e {
            LifecycleEvent::PromoteIntent { app, at_job, .. } => Some((app.clone(), *at_job)),
            _ => None,
        })
        .ok_or("lifecycle never promoted a canary under injected drift")?;
    let recovery_jobs = promote_at - drift_at;
    assert!(
        report.total_energy_j < stale.total_energy_j,
        "lifecycle energy {} not better than stale {}",
        report.total_energy_j,
        stale.total_energy_j
    );

    // From-scratch reference: the same stream with models trained
    // directly on the drifted hardware from the start.
    let scratch_registry = ModelRegistry::open(&dir.join("scratch-registry"));
    let mut scratch_cfg = LifecycleConfig::pinned(Policy::MinEnergyUnderDeadline);
    scratch_cfg.governor.spec = efficiency_drift(&scratch_cfg.governor.spec);
    scratch_cfg.drift = DriftConfig::disabled();
    train_and_publish(&scratch_cfg.governor, &scratch_registry)?;
    let scratch = run_lifecycle(
        &scratch_cfg,
        &scratch_registry,
        &dir.join("scratch-run"),
        false,
    )?;

    let post_mape = |r: &governor::LifecycleReport| {
        let apes: Vec<f64> = r
            .decisions
            .iter()
            .filter(|d| d.record.app == promoted_app && d.record.job_id > promote_at)
            .filter_map(|d| d.ape)
            .collect();
        apes.iter().sum::<f64>() / apes.len().max(1) as f64
    };
    let post_promote_mape = post_mape(&report);
    let scratch_mape = post_mape(&scratch);
    let stale_mape = post_mape(&stale);
    let mape_ratio = post_promote_mape / scratch_mape.max(1e-9);
    assert!(
        mape_ratio <= 1.25,
        "post-promote MAPE {post_promote_mape:.5} not within 25% of \
         from-scratch {scratch_mape:.5}"
    );

    #[derive(Serialize)]
    struct Bench {
        bench: String,
        seed: u64,
        n_jobs: usize,
        drift_at_job: u64,
        promoted_app: String,
        promote_at_job: u64,
        recovery_jobs: u64,
        post_promote_mape: f64,
        stale_mape: f64,
        from_scratch_mape: f64,
        mape_ratio_vs_scratch: f64,
        mape_guard: f64,
        lifecycle_energy_j: f64,
        stale_energy_j: f64,
        energy_saved_vs_stale: f64,
        retrains: u32,
        promotes: u32,
        rollbacks: u32,
        lifecycle_fallbacks: u64,
    }
    let bench = Bench {
        bench: "adaptive model lifecycle: drift detect -> retrain -> canary -> promote \
                vs stale governor under injected efficiency drift"
            .to_string(),
        seed: report.seed,
        n_jobs: report.n_jobs,
        drift_at_job: drift_at,
        promoted_app,
        promote_at_job: promote_at,
        recovery_jobs,
        post_promote_mape,
        stale_mape,
        from_scratch_mape: scratch_mape,
        mape_ratio_vs_scratch: mape_ratio,
        mape_guard: 1.25,
        lifecycle_energy_j: report.total_energy_j,
        stale_energy_j: stale.total_energy_j,
        energy_saved_vs_stale: 1.0 - report.total_energy_j / stale.total_energy_j,
        retrains: report.retrains,
        promotes: report.promotes,
        rollbacks: report.rollbacks,
        lifecycle_fallbacks: report.degradation.lifecycle_fallbacks,
    };
    let json = serde_json::to_string_pretty(&bench)?;
    atomic_write_str(std::path::Path::new("BENCH_lifecycle.json"), &json)?;
    println!(
        "\nwrote BENCH_lifecycle.json (recovered in {recovery_jobs} jobs, \
         post-promote MAPE {post_promote_mape:.4} vs stale {stale_mape:.4}, \
         ratio {mape_ratio:.2} vs from-scratch, {:.2}% energy vs stale)",
        100.0 * bench.energy_saved_vs_stale
    );
    Ok(())
}

/// Core-frequency stride for the lattice sweep: the full (core × mem ×
/// cap) product at sweep resolution would replay ~1200 configurations per
/// workload; every 8th experiment clock keeps the lattice around 300
/// points with the same Pareto-knee structure.
const LATTICE_CORE_STRIDE: usize = 8;

/// Deadline slack for the lattice experiment: each workload must finish
/// within `slack ×` its default-configuration runtime. Loose enough that
/// the selectors can leave the default clock, tight enough that the
/// deadline still binds the compute-bound picks — so the miss-rate half
/// of the guard is exercised, not vacuous.
const LATTICE_SLACK: f64 = 1.25;

/// The committed guard: the energy the full lattice saves (vs the
/// default-configuration baseline) must exceed what core-only DVFS saves
/// by at least this fraction *of the core-only saving*, at no worse
/// deadline-miss count. The memory-rail share of board power bounds the
/// absolute total-energy delta to a few percent; the guard pins the
/// relative claim the lattice actually makes — it deepens the energy
/// saving DVFS alone leaves on the table.
const LATTICE_MARGIN_MIN: f64 = 0.05;

/// Sweeps the full (core × mem × cap) configuration lattice on the V100
/// for a panel of Cronos and LiGen inputs, selects the deadline-
/// constrained minimum-energy configuration per workload, and compares it
/// against core-only DVFS over the identical core axis. Writes the per-
/// workload table to `results/lattice/summary.json` and the committed
/// guard numbers to `BENCH_lattice.json` — the ≥`LATTICE_MARGIN_MIN`
/// additional energy saving at no worse miss count is asserted *before*
/// anything is written, so the committed record can never describe a
/// regressed lattice.
fn lattice_cmd() -> ExperimentResult {
    use energy_model::characterize::{
        characterize_lattice, LatticeAxes, LatticePoint, SweepOptions, Workload,
    };
    use energy_model::workflow::experiment_frequencies;
    use serde::Serialize;

    println!("\n## Lattice — (core × mem × cap) configuration sweep vs core-only DVFS (V100)");
    let spec = DeviceSpec::v100();
    let core = experiment_frequencies(&spec, LATTICE_CORE_STRIDE);
    let mem: Vec<f64> = spec.mem_freqs.as_slice().to_vec();
    let caps = [200.0, 250.0];
    let axes = LatticeAxes::full(core.clone(), mem.clone(), &caps);
    let core_axes = LatticeAxes::core_only(core.clone());
    println!(
        "axes: {} core clocks × {} memory clocks × {} cap settings = {} points per workload",
        core.len(),
        mem.len(),
        axes.power_caps_w.len(),
        axes.len()
    );

    let workloads: Vec<(String, Box<dyn Workload>)> = vec![
        (
            "cronos 40x16x16".to_string(),
            Box::new(cronos_workload(&CronosInput::new(40, 16, 16))),
        ),
        (
            "cronos 160x64x64".to_string(),
            Box::new(cronos_workload(&CronosInput::new(160, 64, 64))),
        ),
        (
            "ligen 1024x63x8".to_string(),
            Box::new(ligen_workload(&LigenInput::new(1024, 63, 8))),
        ),
        (
            "ligen 10000x89x20".to_string(),
            Box::new(ligen_workload(&LigenInput::new(10_000, 89, 20))),
        ),
    ];
    let opts = SweepOptions {
        reps: REPS,
        noise_seed: Some(SEED),
        ..SweepOptions::default()
    };

    #[derive(Serialize)]
    struct Chosen {
        core_mhz: f64,
        mem_mhz: f64,
        cap_w: Option<f64>,
        time_s: f64,
        energy_j: f64,
        deadline_missed: bool,
    }
    fn choose(ch: &energy_model::characterize::LatticeCharacterization, deadline_s: f64) -> Chosen {
        // Min energy under the deadline; if nothing fits, the fastest
        // point runs (and the miss is recorded) — the same fallback the
        // governor's MinEnergyUnderDeadline policy uses.
        let pick: &LatticePoint = ch.min_energy_within(deadline_s).unwrap_or_else(|| {
            ch.points
                .iter()
                .min_by(|a, b| a.time_s.total_cmp(&b.time_s))
                .expect("non-empty lattice")
        });
        Chosen {
            core_mhz: pick.core_mhz,
            mem_mhz: pick.mem_mhz,
            cap_w: pick.cap_w,
            time_s: pick.time_s,
            energy_j: pick.energy_j,
            deadline_missed: pick.time_s > deadline_s,
        }
    }

    #[derive(Serialize)]
    struct WorkloadRow {
        workload: String,
        baseline_time_s: f64,
        baseline_energy_j: f64,
        deadline_s: f64,
        pareto_surface_points: usize,
        lattice: Chosen,
        core_only: Chosen,
        extra_saving_vs_core_only: f64,
    }

    let mut rows: Vec<WorkloadRow> = Vec::new();
    for (name, w) in &workloads {
        let (lat, lat_diag) = characterize_lattice(&spec, w.as_ref(), &axes, &opts);
        let (core_ch, core_diag) = characterize_lattice(&spec, w.as_ref(), &core_axes, &opts);
        // A healthy pinned run must come back clean — a flagged point here
        // means the sweep engine degraded, not the device.
        assert!(lat_diag.is_clean(), "lattice sweep degraded on {name}");
        assert!(core_diag.is_clean(), "core-only sweep degraded on {name}");
        // Same workload, same baseline seed: the two sweeps must agree on
        // what "default configuration" means, bit for bit.
        assert_eq!(
            lat.baseline_time_s.to_bits(),
            core_ch.baseline_time_s.to_bits()
        );
        assert_eq!(
            lat.baseline_energy_j.to_bits(),
            core_ch.baseline_energy_j.to_bits()
        );

        let deadline_s = LATTICE_SLACK * lat.baseline_time_s;
        let lattice = choose(&lat, deadline_s);
        let core_only = choose(&core_ch, deadline_s);
        let extra = 1.0 - lattice.energy_j / core_only.energy_j;
        rows.push(WorkloadRow {
            workload: name.clone(),
            baseline_time_s: lat.baseline_time_s,
            baseline_energy_j: lat.baseline_energy_j,
            deadline_s,
            pareto_surface_points: lat.pareto_surface().len(),
            lattice,
            core_only,
            extra_saving_vs_core_only: extra,
        });
    }

    print_table(
        &format!("Deadline-constrained min-energy configuration (slack {LATTICE_SLACK}× default)"),
        &[
            "workload",
            "core-only pick",
            "core-only E (J)",
            "lattice pick",
            "lattice E (J)",
            "extra saving",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.clone(),
                    format!("{:.0} MHz", r.core_only.core_mhz),
                    format!("{:.1}", r.core_only.energy_j),
                    format!(
                        "{:.0}/{:.0} MHz{}",
                        r.lattice.core_mhz,
                        r.lattice.mem_mhz,
                        match r.lattice.cap_w {
                            Some(c) => format!(" @{c:.0} W"),
                            None => String::new(),
                        }
                    ),
                    format!("{:.1}", r.lattice.energy_j),
                    format!("{:.1}%", 100.0 * r.extra_saving_vs_core_only),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let baseline_energy: f64 = rows.iter().map(|r| r.baseline_energy_j).sum();
    let lattice_energy: f64 = rows.iter().map(|r| r.lattice.energy_j).sum();
    let core_energy: f64 = rows.iter().map(|r| r.core_only.energy_j).sum();
    let lattice_misses = rows.iter().filter(|r| r.lattice.deadline_missed).count();
    let core_misses = rows.iter().filter(|r| r.core_only.deadline_missed).count();
    let core_saving = 1.0 - core_energy / baseline_energy;
    let lattice_saving = 1.0 - lattice_energy / baseline_energy;
    // "Additional energy saving": how much more energy the lattice saves,
    // relative to the saving core-only DVFS already achieves.
    let margin = (core_energy - lattice_energy) / (baseline_energy - core_energy);

    // ---- The committed guards (asserted before anything is written) ----
    assert!(
        margin >= LATTICE_MARGIN_MIN,
        "lattice saves only {:.2}% additional energy over core-only DVFS (floor {:.0}%)",
        100.0 * margin,
        100.0 * LATTICE_MARGIN_MIN
    );
    assert!(
        lattice_misses <= core_misses,
        "lattice misses {lattice_misses} deadlines vs core-only {core_misses}"
    );

    #[derive(Serialize)]
    struct Summary {
        device: String,
        seed: u64,
        reps: usize,
        deadline_slack: f64,
        core_mhz: Vec<f64>,
        mem_mhz: Vec<f64>,
        power_caps_w: Vec<f64>,
        workloads: Vec<WorkloadRow>,
    }
    let dir = std::path::Path::new("results/lattice");
    std::fs::create_dir_all(dir)?;
    let summary = Summary {
        device: spec.name.clone(),
        seed: SEED,
        reps: REPS,
        deadline_slack: LATTICE_SLACK,
        core_mhz: core.clone(),
        mem_mhz: mem.clone(),
        power_caps_w: caps.to_vec(),
        workloads: rows,
    };
    atomic_write_str(
        &dir.join("summary.json"),
        &serde_json::to_string_pretty(&summary)?,
    )?;
    println!("wrote results/lattice/summary.json");

    #[derive(Serialize)]
    struct Bench {
        bench: String,
        device: String,
        seed: u64,
        reps: usize,
        deadline_slack: f64,
        lattice_points_per_workload: usize,
        n_workloads: usize,
        baseline_energy_j: f64,
        core_only_energy_j: f64,
        lattice_energy_j: f64,
        core_only_saving_vs_baseline: f64,
        lattice_saving_vs_baseline: f64,
        additional_saving_vs_core_only: f64,
        saving_guard: f64,
        lattice_deadline_misses: usize,
        core_only_deadline_misses: usize,
    }
    let bench = Bench {
        bench: "configuration lattice: deadline-constrained min-energy over \
                (core × mem × cap) vs core-only DVFS"
            .to_string(),
        device: spec.name.clone(),
        seed: SEED,
        reps: REPS,
        deadline_slack: LATTICE_SLACK,
        lattice_points_per_workload: axes.len(),
        n_workloads: summary.workloads.len(),
        baseline_energy_j: baseline_energy,
        core_only_energy_j: core_energy,
        lattice_energy_j: lattice_energy,
        core_only_saving_vs_baseline: core_saving,
        lattice_saving_vs_baseline: lattice_saving,
        additional_saving_vs_core_only: margin,
        saving_guard: LATTICE_MARGIN_MIN,
        lattice_deadline_misses: lattice_misses,
        core_only_deadline_misses: core_misses,
    };
    atomic_write_str(
        std::path::Path::new("BENCH_lattice.json"),
        &serde_json::to_string_pretty(&bench)?,
    )?;
    println!(
        "\nwrote BENCH_lattice.json (saving {:.1}% vs baseline against core-only {:.1}% — \
         {:.1}% additional energy saved, {lattice_misses} vs {core_misses} deadline misses)",
        100.0 * lattice_saving,
        100.0 * core_saving,
        100.0 * margin
    );
    Ok(())
}

/// Core-frequency stride for the decomposition sweep: eleven clocks span
/// the V100's experiment range, enough to expose the energy knee on every
/// gang size while the whole (device count × clock) surface stays around
/// 44 points.
const DECOMP_CORE_STRIDE: usize = 16;

/// Gang sizes swept by the decomposition experiment (the fleet has eight
/// devices; slabs beyond eight are thinner than the stencil ghost zone on
/// this grid).
const DECOMP_DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Deadline for the decomposition experiment, as a fraction of the
/// single-device default-configuration runtime. Deliberately *sub-unity*:
/// the V100's core-clock headroom above default buys ≲1% speedup on this
/// memory-fed grid, so no single-device configuration — not even the full
/// (core × mem × cap) lattice's fastest point — can meet it. Scale-out is
/// the only feasible answer, which is exactly the regime the gang
/// scheduler exists for.
const DECOMP_DEADLINE_FRAC: f64 = 0.9;

/// The committed guard: the gang the scheduler picks must meet the
/// deadline (zero misses) *and* spend at least this fraction less energy
/// than the best the single-device lattice can offer under the same
/// deadline (min-energy feasible point, or the fastest point when nothing
/// fits — the same fallback the governor uses). Measured headroom is ~10×
/// this floor; the guard pins the direction, not the testbed constant.
const DECOMP_SAVING_MIN: f64 = 0.05;

/// Sweeps the decomposed Cronos workload over the (device count × core
/// clock) gang surface on a V100 fleet, lets the gang scheduler pick a
/// placement under a deadline no single device can meet, and compares its
/// energy against the best fixed single-device (core × mem × cap) lattice
/// point. Writes the surface to `results/decomp/summary.json` and the
/// guard numbers to `BENCH_decomp.json` — the ≥`DECOMP_SAVING_MIN` energy
/// saving at zero deadline misses and the monotone growth of the
/// per-device halo-energy share with gang size are asserted *before*
/// anything is written.
fn decomp_cmd() -> ExperimentResult {
    use energy_model::characterize::{characterize_lattice, LatticeAxes, SweepOptions};
    use energy_model::distributed::{
        characterize_distributed, DistributedAxes, DistributedSweepOptions,
    };
    use energy_model::workflow::{experiment_frequencies, CRONOS_STEPS};
    use governor::{choose_gang, reserve_gang, GangProfile};
    use serde::Serialize;

    println!("\n## Decomp — domain-decomposed Cronos gang-scheduled onto a V100 fleet");
    let spec = DeviceSpec::v100();
    let grid = cronos::Grid::cubic(192, 64, 64);
    let workload = cronos::DistributedGpuCronos::new(grid, CRONOS_STEPS);
    let fleet_size = *DECOMP_DEVICE_COUNTS
        .iter()
        .max()
        .expect("non-empty gang axis");
    let core = experiment_frequencies(&spec, DECOMP_CORE_STRIDE);
    println!(
        "axes: {} gang sizes × {} core clocks on {}x{}x{} ({} steps)",
        DECOMP_DEVICE_COUNTS.len(),
        core.len(),
        grid.nx,
        grid.ny,
        grid.nz,
        CRONOS_STEPS
    );

    let axes = DistributedAxes {
        device_counts: DECOMP_DEVICE_COUNTS.to_vec(),
        core_mhz: core.clone(),
    };
    let opts = DistributedSweepOptions {
        reps: REPS,
        noise_seed: Some(SEED),
        ..DistributedSweepOptions::default()
    };
    let dist = characterize_distributed(&spec, &workload, &axes, &opts);

    // The single-device contender gets the *full* configuration lattice —
    // core, memory and power cap — over the identical workload and core
    // axis, so losing is not an artifact of a weaker search space.
    let mono = cronos::GpuCronos::new(grid, CRONOS_STEPS);
    let caps = [200.0, 250.0];
    let lat_axes = LatticeAxes::full(core.clone(), spec.mem_freqs.as_slice().to_vec(), &caps);
    let lat_opts = SweepOptions {
        reps: REPS,
        noise_seed: Some(SEED),
        ..SweepOptions::default()
    };
    let (lat, lat_diag) = characterize_lattice(&spec, &mono, &lat_axes, &lat_opts);
    assert!(lat_diag.is_clean(), "single-device lattice sweep degraded");
    // Same workload, same device, same seed: the two sweeps must agree on
    // what the single-device default configuration costs.
    let baseline_drift = (lat.baseline_time_s - dist.baseline_time_s).abs() / dist.baseline_time_s;
    assert!(
        baseline_drift < 1e-3,
        "gang and lattice sweeps disagree on the baseline: {} vs {}",
        dist.baseline_time_s,
        lat.baseline_time_s
    );

    let deadline_s = DECOMP_DEADLINE_FRAC * dist.baseline_time_s;
    let profile = GangProfile::from_characterization(&dist);
    let gang = choose_gang(&profile, fleet_size, deadline_s).expect("non-empty gang surface");

    // Best fixed single-device lattice point under the same deadline —
    // min-energy feasible, else fastest (the governor's fallback).
    let single = lat.min_energy_within(deadline_s).unwrap_or_else(|| {
        lat.points
            .iter()
            .min_by(|a, b| a.time_s.total_cmp(&b.time_s))
            .expect("non-empty lattice")
    });
    let single_missed = single.time_s > deadline_s;
    let saving = 1.0 - gang.energy_j / single.energy_j;

    // Reserve the chosen gang on an idle fleet: the run holds a device
    // *set* in lockstep, not a slot.
    let mut busy_until = vec![0.0; fleet_size];
    let reservation = reserve_gang(&mut busy_until, gang.num_devices, gang.time_s)
        .expect("chosen gang fits the fleet");

    // The strided axis need not contain the exact default clock; show the
    // scaling column at the nearest swept clock.
    let near_default = core
        .iter()
        .copied()
        .min_by(|a, b| {
            (a - spec.default_core_mhz)
                .abs()
                .total_cmp(&(b - spec.default_core_mhz).abs())
        })
        .expect("non-empty core axis");
    print_table(
        &format!(
            "Strong-scaling surface at {near_default:.0} MHz (nearest swept clock to default)"
        ),
        &[
            "devices",
            "time (s)",
            "energy (J)",
            "speedup",
            "norm. energy",
            "halo share",
        ],
        &dist
            .points
            .iter()
            .filter(|p| p.core_mhz.to_bits() == near_default.to_bits())
            .map(|p| {
                vec![
                    p.num_devices.to_string(),
                    format!("{:.6}", p.time_s),
                    format!("{:.3}", p.energy_j),
                    format!("{:.3}", p.speedup),
                    format!("{:.3}", p.norm_energy),
                    format!("{:.4}", p.exchange_energy_share()),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\ndeadline {:.6} s ({}× default): gang pick {} devices @ {:.0} MHz → {:.6} s, {:.3} J; \
         best single-device lattice point {:.0}/{:.0} MHz{} → {:.6} s, {:.3} J{} — {:.1}% saved",
        deadline_s,
        DECOMP_DEADLINE_FRAC,
        gang.num_devices,
        gang.core_mhz,
        gang.time_s,
        gang.energy_j,
        single.core_mhz,
        single.mem_mhz,
        match single.cap_w {
            Some(c) => format!(" @{c:.0} W"),
            None => String::new(),
        },
        single.time_s,
        single.energy_j,
        if single_missed { " (misses)" } else { "" },
        100.0 * saving
    );
    println!(
        "reservation: devices {:?}, lockstep window [{:.6}, {:.6}] s",
        reservation.devices, reservation.start_s, reservation.end_s
    );

    // ---- The committed guards (asserted before anything is written) ----
    assert!(
        gang.time_s <= deadline_s,
        "gang pick misses the deadline: {} > {}",
        gang.time_s,
        deadline_s
    );
    assert!(
        saving >= DECOMP_SAVING_MIN,
        "gang saves only {:.2}% vs the best single-device lattice point (floor {:.0}%)",
        100.0 * saving,
        100.0 * DECOMP_SAVING_MIN
    );
    // Shrinking subdomains pay relatively more for their halos: at every
    // fixed clock, the exchange-energy share grows strictly with the gang
    // size (a single device exchanges nothing).
    for f in &core {
        let mut shares: Vec<(usize, f64)> = dist
            .points
            .iter()
            .filter(|p| p.core_mhz.to_bits() == f.to_bits())
            .map(|p| (p.num_devices, p.exchange_energy_share()))
            .collect();
        shares.sort_by_key(|(d, _)| *d);
        for w in shares.windows(2) {
            assert!(
                w[1].1 > w[0].1,
                "halo-energy share not monotone at {f:.0} MHz: d={} share {} vs d={} share {}",
                w[0].0,
                w[0].1,
                w[1].0,
                w[1].1
            );
        }
    }

    #[derive(Serialize)]
    struct Summary {
        device: String,
        workload: String,
        seed: u64,
        reps: usize,
        fleet_size: usize,
        deadline_frac: f64,
        deadline_s: f64,
        core_mhz: Vec<f64>,
        device_counts: Vec<usize>,
        baseline_time_s: f64,
        baseline_energy_j: f64,
        points: Vec<energy_model::DistributedPoint>,
        gang_devices: usize,
        gang_core_mhz: f64,
        gang_time_s: f64,
        gang_energy_j: f64,
        gang_reserved_devices: Vec<usize>,
        single_core_mhz: f64,
        single_mem_mhz: f64,
        single_cap_w: Option<f64>,
        single_time_s: f64,
        single_energy_j: f64,
        single_missed_deadline: bool,
        saving_vs_single: f64,
    }
    let dir = std::path::Path::new("results/decomp");
    std::fs::create_dir_all(dir)?;
    let summary = Summary {
        device: spec.name.clone(),
        workload: dist.workload.clone(),
        seed: SEED,
        reps: REPS,
        fleet_size,
        deadline_frac: DECOMP_DEADLINE_FRAC,
        deadline_s,
        core_mhz: core.clone(),
        device_counts: DECOMP_DEVICE_COUNTS.to_vec(),
        baseline_time_s: dist.baseline_time_s,
        baseline_energy_j: dist.baseline_energy_j,
        points: dist.points.clone(),
        gang_devices: gang.num_devices,
        gang_core_mhz: gang.core_mhz,
        gang_time_s: gang.time_s,
        gang_energy_j: gang.energy_j,
        gang_reserved_devices: reservation.devices.clone(),
        single_core_mhz: single.core_mhz,
        single_mem_mhz: single.mem_mhz,
        single_cap_w: single.cap_w,
        single_time_s: single.time_s,
        single_energy_j: single.energy_j,
        single_missed_deadline: single_missed,
        saving_vs_single: saving,
    };
    atomic_write_str(
        &dir.join("summary.json"),
        &serde_json::to_string_pretty(&summary)?,
    )?;
    println!("wrote results/decomp/summary.json");

    #[derive(Serialize)]
    struct Bench {
        bench: String,
        device: String,
        seed: u64,
        reps: usize,
        deadline_frac: f64,
        surface_points: usize,
        gang_devices: usize,
        gang_core_mhz: f64,
        gang_energy_j: f64,
        gang_deadline_misses: usize,
        single_energy_j: f64,
        single_missed_deadline: bool,
        saving_vs_single: f64,
        saving_guard: f64,
        max_halo_energy_share: f64,
    }
    let max_share = dist
        .points
        .iter()
        .map(|p| p.exchange_energy_share())
        .fold(0.0f64, f64::max);
    let bench = Bench {
        bench: "domain decomposition: gang-scheduled (device count × clock) pick \
                under a sub-unity deadline vs the best fixed single-device lattice point"
            .to_string(),
        device: spec.name.clone(),
        seed: SEED,
        reps: REPS,
        deadline_frac: DECOMP_DEADLINE_FRAC,
        surface_points: dist.points.len(),
        gang_devices: gang.num_devices,
        gang_core_mhz: gang.core_mhz,
        gang_energy_j: gang.energy_j,
        gang_deadline_misses: 0,
        single_energy_j: single.energy_j,
        single_missed_deadline: single_missed,
        saving_vs_single: saving,
        saving_guard: DECOMP_SAVING_MIN,
        max_halo_energy_share: max_share,
    };
    atomic_write_str(
        std::path::Path::new("BENCH_decomp.json"),
        &serde_json::to_string_pretty(&bench)?,
    )?;
    println!(
        "\nwrote BENCH_decomp.json ({} devices @ {:.0} MHz saves {:.1}% vs the best \
         single-device point at zero deadline misses)",
        gang.num_devices,
        gang.core_mhz,
        100.0 * saving
    );
    Ok(())
}

/// Runs the two paper applications through instrumented characterization
/// sweeps and exports the unified observability artifacts to
/// `results/telemetry/`: `metrics.json` (the registry snapshot),
/// `metrics.prom` (Prometheus text exposition — point a scraper at it),
/// and `trace.jsonl` (a Chrome-trace JSON array — load it in
/// `chrome://tracing` or Perfetto to see the sweep → workload → point
/// span hierarchy).
fn telemetry_cmd() -> ExperimentResult {
    use energy_model::characterize::{characterize_with_options, SweepOptions, Workload};
    use energy_model::telemetry::{MetricValue, SpanLevel, Telemetry};
    use std::sync::Arc;

    println!("\n## Telemetry — instrumented characterization sweeps (V100)");
    let spec = DeviceSpec::v100();
    let freqs = sweep_freqs(&spec);
    let cronos = cronos_workload(&CronosInput::new(40, 16, 16));
    let ligen = ligen_workload(&LigenInput::new(1024, 63, 8));
    let workloads: Vec<(&str, &dyn Workload)> = vec![("cronos", &cronos), ("ligen", &ligen)];

    let tel = Telemetry::new();
    for (label, w) in &workloads {
        let _span = tel.span(
            SpanLevel::Workload,
            "workload",
            vec![("app", (*label).into())],
        );
        let opts = SweepOptions {
            reps: REPS,
            noise_seed: Some(SEED),
            telemetry: Some(Arc::clone(&tel)),
            ..SweepOptions::default()
        };
        let _ = characterize_with_options(&spec, *w, &freqs, &opts);
    }

    let snap = tel.registry().snapshot();
    let rows: Vec<Vec<String>> = snap
        .metrics
        .iter()
        .map(|(name, v)| {
            let value = match v {
                MetricValue::Counter(c) => c.to_string(),
                MetricValue::Gauge(g) => format!("{g}"),
                MetricValue::Histogram { count, sum, .. } => {
                    format!("n={count}, sum={sum:.3}")
                }
            };
            vec![name.clone(), value]
        })
        .collect();
    print_table("Metrics registry", &["metric", "value"], &rows);

    let dir = std::path::Path::new("results/telemetry");
    tel.export(dir)?;
    println!(
        "wrote results/telemetry/{{metrics.json, metrics.prom, trace.jsonl}} \
         ({} trace events, {} dropped)",
        tel.events().len(),
        tel.dropped_events()
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: figures -- <id> [...]   ids: fig1..fig10 table1 table2 fig13 fig14 headline portability sweep-profile serving-profile [--quick] campaign [--resume] telemetry govern [--policy <name>] fleet lattice decomp lifecycle [--inject-drift] all"
        );
        std::process::exit(2);
    }
    let resume = args.iter().any(|a| a == "--resume");
    let quick = args.iter().any(|a| a == "--quick");
    let inject_drift = args.iter().any(|a| a == "--inject-drift");
    // `--policy <name>` (repeatable) selects which governor policies run
    // against the default-clock baseline; default is all of them.
    let mut policies: Vec<governor::Policy> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--policy" {
            match iter.next().map(|s| governor::Policy::parse(s)) {
                Some(Some(p)) => policies.push(p),
                _ => {
                    eprintln!(
                        "--policy needs one of: {}",
                        governor::Policy::all()
                            .iter()
                            .map(|p| p.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
    }
    if policies.is_empty() {
        policies = governor::Policy::all().to_vec();
    }
    let run = |id: &str| -> ExperimentResult {
        match id {
            "fig1" => fig1(),
            "fig2" => fig2(),
            "fig3" => fig3(),
            "fig4" => fig4(),
            "fig5" => fig5(),
            "fig6" => fig6(),
            "fig7" => fig7(),
            "fig8" => fig8(),
            "fig9" => fig9(),
            "fig10" => fig10(),
            "table1" => table1(),
            "table2" => table2(),
            "fig13" => fig13(),
            "fig14" => fig14(),
            "headline" => headline_cmd(),
            "portability" => portability(),
            "fig13-mi100" => fig13_mi100(),
            "sweep-profile" => return sweep_profile(),
            "serving-profile" => return serving_profile(quick),
            "campaign" => return campaign_cmd(resume),
            "telemetry" => return telemetry_cmd(),
            "govern" => return govern_cmd(&policies),
            "fleet" => return fleet_cmd(),
            "lattice" => return lattice_cmd(),
            "decomp" => return decomp_cmd(),
            "lifecycle" => return lifecycle_cmd(inject_drift),
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        }
        Ok(())
    };
    let mut skip_next = false;
    for id in &args {
        if skip_next {
            skip_next = false;
            continue; // the value of a `--policy` flag
        }
        if id == "--resume" {
            continue; // flag for `campaign`, not an experiment id
        }
        if id == "--quick" {
            continue; // flag for `serving-profile`, not an experiment id
        }
        if id == "--inject-drift" {
            continue; // flag for `lifecycle`, not an experiment id
        }
        if id == "--policy" {
            skip_next = true; // flag for `govern`, not an experiment id
            continue;
        }
        let result = if id == "all" {
            [
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "table1",
                "table2",
                "fig13",
                "fig14",
                "headline",
                "fig13-mi100",
                "portability",
            ]
            .iter()
            .try_for_each(|id| run(id))
        } else {
            run(id)
        };
        if let Err(e) = result {
            eprintln!("figures {id}: {e}");
            std::process::exit(1);
        }
    }
}
