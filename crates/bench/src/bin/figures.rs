//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p bench --release --bin figures -- <id> [<id> ...]
//! cargo run -p bench --release --bin figures -- all
//! ```
//!
//! Ids: `fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 table1 table2
//! fig13 fig14 headline`.

use bench::*;
use energy_model::features::{CronosInput, LigenInput};
use energy_model::workflow::{characterize_cronos, characterize_ligen};
use gpu_sim::DeviceSpec;

fn fig1() {
    println!("\n## Figure 1 — LiGen and Cronos multi-objective characterization (V100)");
    let spec = DeviceSpec::v100();
    print_characterization(
        "Fig 1a",
        &spec,
        &ligen_workload(&LigenInput::new(1024, 63, 8)),
    );
    print_characterization(
        "Fig 1b",
        &spec,
        &cronos_workload(&CronosInput::new(40, 16, 16)),
    );
}

fn fig2() {
    println!("\n## Figure 2 — LiGen characterization vs input size (V100)");
    let spec = DeviceSpec::v100();
    print_characterization(
        "Fig 2a (small: 2 lig × 89 at × 8 frag)",
        &spec,
        &ligen_workload(&LigenInput::new(2, 89, 8)),
    );
    print_characterization(
        "Fig 2b (large: 10000 lig × 89 at × 20 frag)",
        &spec,
        &ligen_workload(&LigenInput::new(10_000, 89, 20)),
    );
}

fn fig3() {
    println!("\n## Figure 3 — Cronos characterization vs input size (V100)");
    let spec = DeviceSpec::v100();
    print_characterization(
        "Fig 3a (20x8x8)",
        &spec,
        &cronos_workload(&CronosInput::new(20, 8, 8)),
    );
    print_characterization(
        "Fig 3b (160x64x64)",
        &spec,
        &cronos_workload(&CronosInput::new(160, 64, 64)),
    );
}

fn fig4() {
    println!("\n## Figure 4 — Cronos on NVIDIA V100, small vs large grid");
    let spec = DeviceSpec::v100();
    print_characterization(
        "Fig 4a (10x4x4)",
        &spec,
        &cronos_workload(&CronosInput::new(10, 4, 4)),
    );
    print_characterization(
        "Fig 4b (160x64x64)",
        &spec,
        &cronos_workload(&CronosInput::new(160, 64, 64)),
    );
}

fn fig5() {
    println!("\n## Figure 5 — Cronos on AMD MI100 (auto-frequency baseline)");
    let spec = DeviceSpec::mi100();
    print_characterization(
        "Fig 5a (10x4x4)",
        &spec,
        &cronos_workload(&CronosInput::new(10, 4, 4)),
    );
    print_characterization(
        "Fig 5b (160x64x64)",
        &spec,
        &cronos_workload(&CronosInput::new(160, 64, 64)),
    );
}

fn raw_ligen_panel(spec: &DeviceSpec, atoms: usize, frag_sweep: &[usize], ligands: usize) {
    let freqs = sweep_freqs(spec);
    for &f in frag_sweep {
        let ch = energy_model::characterize::characterize(
            spec,
            &ligen_workload(&LigenInput::new(ligands, atoms, f)),
            &freqs,
            REPS,
            Some(SEED),
        );
        print_table(
            &format!(
                "{} atoms, {} fragments, {} ligands on {}",
                atoms, f, ligands, spec.name
            ),
            &["core MHz", "time [s]", "energy [kJ]"],
            &raw_rows(&ch, 8),
        );
    }
}

fn fig6() {
    println!("\n## Figure 6 — LiGen raw energy/time vs fragments (V100, 100000 ligands)");
    let spec = DeviceSpec::v100();
    raw_ligen_panel(&spec, 31, &[4, 8, 16, 20], 100_000);
    raw_ligen_panel(&spec, 89, &[4, 8, 16, 20], 100_000);
}

fn fig7() {
    println!("\n## Figure 7 — LiGen raw energy/time vs fragments (MI100, 100000 ligands)");
    let spec = DeviceSpec::mi100();
    raw_ligen_panel(&spec, 31, &[4, 8, 16, 20], 100_000);
    raw_ligen_panel(&spec, 89, &[4, 8, 16, 20], 100_000);
}

fn raw_ligen_atom_panel(spec: &DeviceSpec, fragments: usize, atom_sweep: &[usize], ligands: usize) {
    let freqs = sweep_freqs(spec);
    for &a in atom_sweep {
        let ch = energy_model::characterize::characterize(
            spec,
            &ligen_workload(&LigenInput::new(ligands, a, fragments)),
            &freqs,
            REPS,
            Some(SEED),
        );
        print_table(
            &format!(
                "{} atoms, {} fragments, {} ligands on {}",
                a, fragments, ligands, spec.name
            ),
            &["core MHz", "time [s]", "energy [kJ]"],
            &raw_rows(&ch, 8),
        );
    }
}

fn fig8() {
    println!("\n## Figure 8 — LiGen raw energy/time vs atoms (V100, 100000 ligands)");
    let spec = DeviceSpec::v100();
    raw_ligen_atom_panel(&spec, 4, &[31, 63, 74, 89], 100_000);
    raw_ligen_atom_panel(&spec, 20, &[31, 63, 74, 89], 100_000);
}

fn fig9() {
    println!("\n## Figure 9 — LiGen raw energy/time vs atoms (MI100, 100000 ligands)");
    let spec = DeviceSpec::mi100();
    raw_ligen_atom_panel(&spec, 4, &[31, 63, 74, 89], 100_000);
    raw_ligen_atom_panel(&spec, 20, &[31, 63, 74, 89], 100_000);
}

fn fig10() {
    println!("\n## Figure 10 — LiGen characterization, small vs large input, V100 & MI100");
    let small = LigenInput::new(256, 31, 4);
    let large = LigenInput::new(10_000, 89, 20);
    for spec in [DeviceSpec::v100(), DeviceSpec::mi100()] {
        print_characterization(
            &format!("small input ({})", small.label()),
            &spec,
            &ligen_workload(&small),
        );
        print_characterization(
            &format!("large input ({})", large.label()),
            &spec,
            &ligen_workload(&large),
        );
    }
}

fn table1() {
    println!("\n## Table 1 — general-purpose model features (static code features)");
    let names = [
        ("f_int_add", "integer additions and subtractions"),
        ("f_int_mul", "integer multiplications"),
        ("f_int_div", "integer divisions"),
        ("f_int_bw", "integer bitwise operations"),
        ("f_float_add", "floating point additions and subtractions"),
        ("f_float_mul", "floating point multiplications"),
        ("f_float_div", "floating point divisions"),
        ("f_sf", "special functions"),
        ("f_gl_access", "global memory accesses"),
        ("f_loc_access", "local memory accesses"),
    ];
    let rows: Vec<Vec<String>> = names
        .iter()
        .map(|(n, d)| vec![n.to_string(), d.to_string()])
        .collect();
    print_table("Static features", &["feature", "description"], &rows);
    // And the two applications' extracted vectors.
    let c = energy_model::workflow::cronos_static_features(&CronosInput::new(160, 64, 64));
    let l = energy_model::workflow::ligen_static_features(&LigenInput::new(10_000, 89, 20));
    let rows: Vec<Vec<String>> = names
        .iter()
        .enumerate()
        .map(|(i, (n, _))| {
            vec![
                n.to_string(),
                format!("{:.4}", c[i]),
                format!("{:.4}", l[i]),
            ]
        })
        .collect();
    print_table(
        "Extracted static feature fractions",
        &["feature", "Cronos", "LiGen"],
        &rows,
    );
}

fn table2() {
    println!("\n## Table 2 — domain-specific model features");
    let rows = vec![
        vec![
            "Cronos".to_string(),
            "f_grid_x, f_grid_y, f_grid_z".to_string(),
        ],
        vec![
            "LiGen".to_string(),
            "f_ligands, f_fragments, f_atoms".to_string(),
        ],
    ];
    print_table(
        "Domain-specific features",
        &["application", "features"],
        &rows,
    );
}

fn fig13() {
    println!("\n## Figure 13 — prediction MAPE, general-purpose vs domain-specific");
    let spec = DeviceSpec::v100();
    let cronos_rows = fig13_cronos(&spec);
    print_mape_rows(
        "Fig 13a/b — Cronos (speedup / normalized energy)",
        &cronos_rows,
    );
    let ligen_rows = fig13_ligen(&spec);
    print_mape_rows(
        "Fig 13c/d — LiGen (speedup / normalized energy)",
        &ligen_rows,
    );

    let (ms, me, mins, mine) = headline(&cronos_rows);
    println!(
        "\nCronos: mean improvement speedup {ms:.1}× energy {me:.1}× (min {mins:.1}× / {mine:.1}×)"
    );
    let (ms, me, mins, mine) = headline(&ligen_rows);
    println!(
        "LiGen:  mean improvement speedup {ms:.1}× energy {me:.1}× (min {mins:.1}× / {mine:.1}×)"
    );
}

fn fig14() {
    println!("\n## Figure 14 — predicted vs true Pareto sets");
    let spec = DeviceSpec::v100();
    let freqs = sweep_freqs(&spec);

    let ligen_configs = LigenInput::figure13_configs();
    let ligen_inputs = characterize_ligen(&spec, &ligen_configs, &freqs, REPS, Some(SEED));
    let big = ligen_configs
        .iter()
        .position(|c| c.ligands == 10_000 && c.atoms == 89 && c.fragments == 20)
        .expect("large input in the set");
    let gpf = energy_model::workflow::ligen_static_features(&ligen_configs[big]);
    let eval = fig14_for(&spec, &ligen_inputs, big, &gpf);
    print_pareto_eval("Fig 14a — LiGen 10000×89×20", &eval);

    let cronos_configs = CronosInput::paper_configs();
    let cronos_inputs = characterize_cronos(&spec, &cronos_configs, &freqs, REPS, Some(SEED));
    let gpf = energy_model::workflow::cronos_static_features(&cronos_configs[4]);
    let eval = fig14_for(&spec, &cronos_inputs, 4, &gpf);
    print_pareto_eval("Fig 14b — Cronos 160x64x64", &eval);
}

fn headline_cmd() {
    println!("\n## Headline — domain-specific vs general-purpose error");
    let spec = DeviceSpec::v100();
    let mut all = fig13_cronos(&spec);
    all.extend(fig13_ligen(&spec));
    let (ms, me, mins, mine) = headline(&all);
    println!(
        "over all {} inputs: mean improvement speedup {ms:.1}×, energy {me:.1}×; \
         minimum {mins:.1}× / {mine:.1}×",
        all.len()
    );
}

fn fig13_mi100() {
    println!("\n## Extension — Figure-13 protocol on the AMD MI100 (methodology portability)");
    let spec = DeviceSpec::mi100();
    let rows = fig13_cronos(&spec);
    print_mape_rows("Cronos on MI100 (speedup / normalized energy)", &rows);
    let lrows = fig13_ligen(&spec);
    print_mape_rows("LiGen on MI100 (speedup / normalized energy)", &lrows);
    let mut all = rows;
    all.extend(lrows);
    let (ms, me, mins, mine) = headline(&all);
    println!(
        "\nMI100: mean improvement speedup {ms:.1}× energy {me:.1}× (min {mins:.1}× / {mine:.1}×)"
    );
}

fn portability() {
    println!("\n## Portability — the methodology across all three SYnergy vendors");
    // Not a paper figure: the paper evaluates V100 and MI100 and lists
    // Intel/Level Zero as supported by SYnergy; this experiment runs the
    // same Cronos characterization on all three simulated devices.
    for spec in [
        DeviceSpec::v100(),
        DeviceSpec::mi100(),
        DeviceSpec::max1100(),
    ] {
        print_characterization(
            &format!("Cronos 160x64x64 on {}", spec.name),
            &spec,
            &cronos_workload(&CronosInput::new(160, 64, 64)),
        );
    }
}

/// Profiles the trace-replay sweep engine against the legacy
/// per-submission sweep on the full-resolution V100 frequency sweep and
/// writes the comparison to `BENCH_sweep.json` (the committed before/after
/// record backing DESIGN.md's performance-architecture section).
fn sweep_profile() {
    use energy_model::characterize::{characterize, characterize_serial, Workload};
    use serde::Serialize;
    use std::time::Instant;

    #[derive(Serialize)]
    struct Case {
        workload: String,
        noise: bool,
        legacy_s: f64,
        replay_s: f64,
        speedup: f64,
    }

    #[derive(Serialize)]
    struct Profile {
        bench: String,
        device: String,
        freq_points: u64,
        reps: u64,
        threads: u64,
        cases: Vec<Case>,
    }

    let spec = DeviceSpec::v100();
    let freqs = energy_model::workflow::experiment_frequencies(&spec, 1);
    let workloads: Vec<(&str, Box<dyn Workload>)> = vec![
        (
            "cronos 20x8x8",
            Box::new(cronos_workload(&CronosInput::new(20, 8, 8))),
        ),
        (
            "cronos 160x64x64",
            Box::new(cronos_workload(&CronosInput::new(160, 64, 64))),
        ),
        (
            "ligen 256x31x4",
            Box::new(ligen_workload(&LigenInput::new(256, 31, 4))),
        ),
        (
            "ligen 10000x89x20",
            Box::new(ligen_workload(&LigenInput::new(10_000, 89, 20))),
        ),
    ];

    println!(
        "\n## Sweep-engine profile — {} frequencies × {REPS} reps on {}",
        freqs.len(),
        spec.name
    );
    let mut cases = Vec::new();
    for (name, w) in &workloads {
        for noise_seed in [None, Some(SEED)] {
            // Untimed warm-up run of each path, then the timed run — both
            // paths get identical treatment.
            let _ = characterize_serial(&spec, w.as_ref(), &freqs, REPS, noise_seed);
            let t0 = Instant::now();
            let slow = characterize_serial(&spec, w.as_ref(), &freqs, REPS, noise_seed);
            let legacy_s = t0.elapsed().as_secs_f64();

            let _ = characterize(&spec, w.as_ref(), &freqs, REPS, noise_seed);
            let t1 = Instant::now();
            let fast = characterize(&spec, w.as_ref(), &freqs, REPS, noise_seed);
            let replay_s = t1.elapsed().as_secs_f64();

            assert_eq!(fast, slow, "sweep engines diverged on {name}");
            let speedup = legacy_s / replay_s;
            println!(
                "{name:>18} noise={}: legacy {legacy_s:.3} s, replay {replay_s:.3} s — {speedup:.1}×",
                noise_seed.is_some()
            );
            cases.push(Case {
                workload: name.to_string(),
                noise: noise_seed.is_some(),
                legacy_s,
                replay_s,
                speedup,
            });
        }
    }

    let profile = Profile {
        bench: "full-resolution characterization sweep: legacy per-submission vs trace-replay"
            .to_string(),
        device: spec.name.clone(),
        freq_points: freqs.len() as u64,
        reps: REPS as u64,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        cases,
    };
    let json = serde_json::to_string_pretty(&profile).expect("profile serialization");
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("\nwrote BENCH_sweep.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: figures -- <id> [...]   ids: fig1..fig10 table1 table2 fig13 fig14 headline portability sweep-profile all"
        );
        std::process::exit(2);
    }
    let run = |id: &str| match id {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "table1" => table1(),
        "table2" => table2(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "headline" => headline_cmd(),
        "portability" => portability(),
        "fig13-mi100" => fig13_mi100(),
        "sweep-profile" => sweep_profile(),
        other => {
            eprintln!("unknown experiment id: {other}");
            std::process::exit(2);
        }
    };
    for id in &args {
        if id == "all" {
            for id in [
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "fig10",
                "table1",
                "table2",
                "fig13",
                "fig14",
                "headline",
                "fig13-mi100",
                "portability",
            ] {
                run(id);
            }
        } else {
            run(id);
        }
    }
}
