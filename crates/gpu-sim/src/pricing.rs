//! Kernel-pricing memoization.
//!
//! Frequency sweeps re-run the *same* handful of kernels at the *same*
//! handful of clocks thousands of times (a characterization run prices a
//! four-kernel MHD period at ~200 frequencies × 5 repetitions). The cost
//! model ([`crate::timing::kernel_timing`] + [`crate::power::kernel_energy`])
//! is pure: for a fixed device spec, `(kernel, core clock, memory clock)`
//! fully determines the noiseless `(time, energy)` of a launch. A
//! [`PriceTable`] caches exactly that mapping so a sweep pays for the model
//! once per distinct `(kernel, frequency)` pair and re-prices every
//! subsequent launch with a hash lookup.
//!
//! ## Key and correctness
//!
//! Entries are keyed by `(kernel-id, freq-bits, cap-bits)`:
//!
//! * the *kernel id* is an FNV-1a hash over the kernel's complete pricing
//!   inputs (name, work items, op mix, ILP efficiency);
//! * the *freq bits* are the raw IEEE-754 bits of the **requested** core and
//!   memory clocks — snapping to a supported frequency is itself
//!   deterministic, so it can happen lazily inside the priced computation
//!   and only on a cache miss (snapping is a linear scan over the frequency
//!   table and is a measurable share of per-launch cost);
//! * the *cap bits* are the operator power cap's bits (`u64::MAX` for "no
//!   cap"), since a binding cap throttles the effective clock and changes
//!   the price of the very same requested clocks.
//!
//! A 64-bit hash can collide in principle, so every entry stores the full
//! [`KernelProfile`] it was priced for and a hit is only served after an
//! exact equality check. Colliding profiles live in a per-key overflow
//! chain (a short `Vec`, verified entry by entry), so a collision costs
//! one extra equality compare per lookup — it never disables memoization
//! for the colliding kernel. Cached values are therefore *bit-identical*
//! to what the uncached path would produce — the property the
//! trace-replay sweep engine relies on.
//!
//! Lookup traffic is counted ([`PriceTable::stats`]): hits, misses, and
//! chain collisions, cheap relaxed atomics on the hot path, so sweeps can
//! surface cache effectiveness through the telemetry registry.
//!
//! The table is internally synchronized (`RwLock`) and meant to be shared
//! across devices via `Arc`: a parallel sweep hands one table to every
//! per-frequency replica so each `(kernel, frequency)` pair in the whole
//! sweep is priced exactly once.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::kernel::KernelProfile;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn fnv_word(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// Stable 64-bit identity of a kernel's pricing inputs (FNV-1a over
/// 64-bit words — this runs once per `price()` call, i.e. once per
/// replayed launch, so the hash walks words, not bytes).
///
/// Two kernels with equal [`KernelProfile`]s always hash equal; unequal
/// profiles hash unequal up to 64-bit collisions, which [`PriceTable`]
/// guards against with a full equality check.
pub fn kernel_cache_id(kernel: &KernelProfile) -> u64 {
    let mut h = FNV_OFFSET;
    let bytes = kernel.name.as_bytes();
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = fnv_word(h, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = fnv_word(h, u64::from_le_bytes(last));
    }
    // Name length doubles as the separator word: names that differ only in
    // trailing zero padding, and field boundaries, cannot alias.
    h = fnv_word(h, bytes.len() as u64 ^ 0xff00_0000_0000_0000);
    h = fnv_word(h, kernel.work_items);
    for v in kernel.mix.as_feature_vector() {
        h = fnv_word(h, v.to_bits());
    }
    h = fnv_word(h, kernel.ilp_efficiency.to_bits());
    h
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct PriceKey {
    kernel_id: u64,
    core_bits: u64,
    mem_bits: u64,
    /// Operator power cap bits; `u64::MAX` (a NaN pattern no real cap can
    /// produce) encodes "no cap", so capped and uncapped prices of the same
    /// clocks never alias.
    cap_bits: u64,
}

#[inline]
fn cap_bits(cap_w: Option<f64>) -> u64 {
    match cap_w {
        Some(c) => c.to_bits(),
        None => u64::MAX,
    }
}

/// Map hasher for [`PriceKey`]: the key's first field is already a 64-bit
/// FNV digest and the clock bits are near-constant across a sweep, so an
/// FNV fold of the three words is both cheap (three multiply-xors on the
/// hot lookup path) and well distributed — SipHash would only add cost.
struct KeyHasher(u64);

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher(FNV_OFFSET)
    }
}

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 = fnv_word(self.0, *b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = fnv_word(self.0, n);
    }
}

struct PriceEntry {
    /// Full profile for collision-proof verification of hits.
    profile: KernelProfile,
    time_s: f64,
    energy_j: f64,
}

/// Lookup counters of a [`PriceTable`] — how effective the memo cache was
/// over its lifetime. Counters are cumulative across [`PriceTable::clear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PriceTableStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to run the cost model (first sight of the key, or
    /// first sight of a colliding profile under an occupied key).
    pub misses: u64,
    /// Entries chained behind another profile with the same 64-bit kernel
    /// id — each one is a real `kernel_cache_id` collision.
    pub collisions: u64,
}

/// A shareable, internally synchronized memo cache of noiseless launch
/// prices, keyed by `(kernel-id, freq-bits)`. See the module docs.
#[derive(Default)]
pub struct PriceTable {
    entries: RwLock<HashMap<PriceKey, Vec<PriceEntry>, std::hash::BuildHasherDefault<KeyHasher>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
}

impl PriceTable {
    /// An empty table.
    pub fn new() -> Self {
        PriceTable::default()
    }

    /// Number of cached `(kernel, frequency)` prices, chained collision
    /// entries included.
    pub fn len(&self) -> usize {
        self.entries
            .read()
            .expect("price table poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// True when nothing has been priced yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached prices. Lifetime lookup counters survive.
    pub fn clear(&self) {
        self.entries.write().expect("price table poisoned").clear();
    }

    /// Lifetime lookup counters (relaxed reads; exact once concurrent
    /// pricing has quiesced).
    pub fn stats(&self) -> PriceTableStats {
        PriceTableStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
        }
    }

    /// Returns the cached price for `(kernel, core_mhz, mem_mhz, cap_w)`,
    /// or computes it with `compute` and caches it. A kernel-id collision
    /// (two unequal profiles hashing to the same 64-bit id) lands the new
    /// profile in the key's overflow chain: lookups verify by equality
    /// over the chain, so a collision can never serve wrong numbers *and*
    /// never disables memoization for either kernel.
    pub fn price_or_insert_with(
        &self,
        kernel: &KernelProfile,
        core_mhz: f64,
        mem_mhz: f64,
        cap_w: Option<f64>,
        compute: impl FnOnce() -> (f64, f64),
    ) -> (f64, f64) {
        self.price_with_id(
            kernel_cache_id(kernel),
            kernel,
            core_mhz,
            mem_mhz,
            cap_w,
            compute,
        )
    }

    /// [`Self::price_or_insert_with`] with the kernel id supplied by the
    /// caller. Internal seam: 64-bit FNV collisions cannot be constructed
    /// on demand, so the collision-chain tests force one by pinning the id.
    fn price_with_id(
        &self,
        kernel_id: u64,
        kernel: &KernelProfile,
        core_mhz: f64,
        mem_mhz: f64,
        cap_w: Option<f64>,
        compute: impl FnOnce() -> (f64, f64),
    ) -> (f64, f64) {
        let key = PriceKey {
            kernel_id,
            core_bits: core_mhz.to_bits(),
            mem_bits: mem_mhz.to_bits(),
            cap_bits: cap_bits(cap_w),
        };
        if let Some(chain) = self.entries.read().expect("price table poisoned").get(&key) {
            if let Some(entry) = chain.iter().find(|e| e.profile == *kernel) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return (entry.time_s, entry.energy_j);
            }
        }
        let (time_s, energy_j) = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.entries.write().expect("price table poisoned");
        let chain = map.entry(key).or_default();
        // Re-check under the write lock: a racing thread may have priced
        // the same profile between our read probe and here. The model is
        // pure, so serving its entry is bit-identical to serving ours.
        if let Some(entry) = chain.iter().find(|e| e.profile == *kernel) {
            return (entry.time_s, entry.energy_j);
        }
        if !chain.is_empty() {
            self.collisions.fetch_add(1, Ordering::Relaxed);
        }
        chain.push(PriceEntry {
            profile: kernel.clone(),
            time_s,
            energy_j,
        });
        (time_s, energy_j)
    }
}

impl std::fmt::Debug for PriceTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PriceTable")
            .field("entries", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::OpMix;

    fn k(name: &str, items: u64) -> KernelProfile {
        KernelProfile::new(
            name,
            items,
            OpMix {
                float_add: 10.0,
                global_access: 4.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn second_lookup_is_cached() {
        let table = PriceTable::new();
        let kernel = k("a", 1000);
        let mut calls = 0;
        let first = table.price_or_insert_with(&kernel, 1312.0, 1107.0, None, || {
            calls += 1;
            (1.0, 2.0)
        });
        let second = table.price_or_insert_with(&kernel, 1312.0, 1107.0, None, || {
            calls += 1;
            (99.0, 99.0)
        });
        assert_eq!(calls, 1, "second lookup must hit the cache");
        assert_eq!(first, second);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn distinct_kernels_and_freqs_get_distinct_entries() {
        let table = PriceTable::new();
        table.price_or_insert_with(&k("a", 1000), 1312.0, 1107.0, None, || (1.0, 1.0));
        table.price_or_insert_with(&k("a", 2000), 1312.0, 1107.0, None, || (2.0, 2.0));
        table.price_or_insert_with(&k("a", 1000), 800.0, 1107.0, None, || (3.0, 3.0));
        assert_eq!(table.len(), 3);
        let hit =
            table.price_or_insert_with(&k("a", 2000), 1312.0, 1107.0, None, || unreachable!());
        assert_eq!(hit, (2.0, 2.0));
    }

    #[test]
    fn mem_clock_and_cap_are_part_of_the_key() {
        let table = PriceTable::new();
        let kernel = k("a", 1000);
        table.price_or_insert_with(&kernel, 1312.0, 1107.0, None, || (1.0, 1.0));
        table.price_or_insert_with(&kernel, 1312.0, 810.0, None, || (2.0, 2.0));
        table.price_or_insert_with(&kernel, 1312.0, 1107.0, Some(200.0), || (3.0, 3.0));
        table.price_or_insert_with(&kernel, 1312.0, 1107.0, Some(250.0), || (4.0, 4.0));
        assert_eq!(table.len(), 4, "mem clock and cap each key new entries");
        let uncapped = table.price_or_insert_with(&kernel, 1312.0, 1107.0, None, || unreachable!());
        assert_eq!(uncapped, (1.0, 1.0));
        let capped =
            table.price_or_insert_with(&kernel, 1312.0, 1107.0, Some(200.0), || unreachable!());
        assert_eq!(capped, (3.0, 3.0));
    }

    #[test]
    fn cache_id_depends_on_every_pricing_input() {
        let base = k("a", 1000);
        let mut renamed = base.clone();
        renamed.name = "b".into();
        let mut resized = base.clone();
        resized.work_items = 1001;
        let mut remixed = base.clone();
        remixed.mix.float_mul += 1.0;
        let mut ilp = base.clone();
        ilp.ilp_efficiency *= 0.5;
        let id = kernel_cache_id(&base);
        assert_eq!(id, kernel_cache_id(&base.clone()));
        for other in [renamed, resized, remixed, ilp] {
            assert_ne!(id, kernel_cache_id(&other));
        }
    }

    #[test]
    fn clear_empties_the_table() {
        let table = PriceTable::new();
        table.price_or_insert_with(&k("a", 1000), 1312.0, 1107.0, None, || (1.0, 1.0));
        assert!(!table.is_empty());
        table.clear();
        assert!(table.is_empty());
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let table = PriceTable::new();
        let kernel = k("a", 1000);
        table.price_or_insert_with(&kernel, 1312.0, 1107.0, None, || (1.0, 2.0));
        table.price_or_insert_with(&kernel, 1312.0, 1107.0, None, || unreachable!());
        table.price_or_insert_with(&kernel, 1312.0, 1107.0, None, || unreachable!());
        let s = table.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.collisions, 0);
    }

    #[test]
    fn colliding_profiles_are_both_cached() {
        // Force two different profiles onto the same 64-bit kernel id:
        // the second must land in the overflow chain and memoize, not
        // permanently fall back to recomputation.
        let table = PriceTable::new();
        let a = k("a", 1000);
        let b = k("b", 2000);
        let mut b_computes = 0;
        table.price_with_id(42, &a, 1312.0, 1107.0, None, || (1.0, 10.0));
        let first_b = table.price_with_id(42, &b, 1312.0, 1107.0, None, || {
            b_computes += 1;
            (2.0, 20.0)
        });
        assert_eq!(first_b, (2.0, 20.0));
        // Both profiles now hit, each serving its own numbers.
        let hit_a = table.price_with_id(42, &a, 1312.0, 1107.0, None, || unreachable!());
        let hit_b = table.price_with_id(42, &b, 1312.0, 1107.0, None, || {
            b_computes += 1;
            (99.0, 99.0)
        });
        assert_eq!(hit_a, (1.0, 10.0));
        assert_eq!(hit_b, (2.0, 20.0));
        assert_eq!(b_computes, 1, "collision must not disable memoization");
        assert_eq!(table.len(), 2, "chain holds both colliding profiles");
        let s = table.stats();
        assert_eq!(s.collisions, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn collision_chain_survives_repeated_lookups() {
        let table = PriceTable::new();
        let profiles: Vec<KernelProfile> = (0..4).map(|i| k("k", 1000 + i)).collect();
        for (i, p) in profiles.iter().enumerate() {
            table.price_with_id(7, p, 800.0, 1107.0, None, || (i as f64, i as f64));
        }
        assert_eq!(table.stats().collisions, 3);
        for (i, p) in profiles.iter().enumerate() {
            let got = table.price_with_id(7, p, 800.0, 1107.0, None, || unreachable!());
            assert_eq!(got, (i as f64, i as f64));
        }
    }
}
