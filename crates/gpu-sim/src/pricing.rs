//! Kernel-pricing memoization.
//!
//! Frequency sweeps re-run the *same* handful of kernels at the *same*
//! handful of clocks thousands of times (a characterization run prices a
//! four-kernel MHD period at ~200 frequencies × 5 repetitions). The cost
//! model ([`crate::timing::kernel_timing`] + [`crate::power::kernel_energy`])
//! is pure: for a fixed device spec, `(kernel, core clock, memory clock)`
//! fully determines the noiseless `(time, energy)` of a launch. A
//! [`PriceTable`] caches exactly that mapping so a sweep pays for the model
//! once per distinct `(kernel, frequency)` pair and re-prices every
//! subsequent launch with a hash lookup.
//!
//! ## Key and correctness
//!
//! Entries are keyed by `(kernel-id, freq-bits)`:
//!
//! * the *kernel id* is an FNV-1a hash over the kernel's complete pricing
//!   inputs (name, work items, op mix, ILP efficiency);
//! * the *freq bits* are the raw IEEE-754 bits of the **requested** core and
//!   memory clocks — snapping to a supported frequency is itself
//!   deterministic, so it can happen lazily inside the priced computation
//!   and only on a cache miss (snapping is a linear scan over the frequency
//!   table and is a measurable share of per-launch cost).
//!
//! A 64-bit hash can collide in principle, so every entry stores the full
//! [`KernelProfile`] it was priced for and a hit is only served after an
//! exact equality check; a mismatch falls back to computing (and not
//! caching) the price. Cached values are therefore *bit-identical* to what
//! the uncached path would produce — the property the trace-replay sweep
//! engine relies on.
//!
//! The table is internally synchronized (`RwLock`) and meant to be shared
//! across devices via `Arc`: a parallel sweep hands one table to every
//! per-frequency replica so each `(kernel, frequency)` pair in the whole
//! sweep is priced exactly once.

use std::collections::HashMap;
use std::sync::RwLock;

use crate::kernel::KernelProfile;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn fnv_word(h: u64, word: u64) -> u64 {
    (h ^ word).wrapping_mul(FNV_PRIME)
}

/// Stable 64-bit identity of a kernel's pricing inputs (FNV-1a over
/// 64-bit words — this runs once per `price()` call, i.e. once per
/// replayed launch, so the hash walks words, not bytes).
///
/// Two kernels with equal [`KernelProfile`]s always hash equal; unequal
/// profiles hash unequal up to 64-bit collisions, which [`PriceTable`]
/// guards against with a full equality check.
pub fn kernel_cache_id(kernel: &KernelProfile) -> u64 {
    let mut h = FNV_OFFSET;
    let bytes = kernel.name.as_bytes();
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = fnv_word(h, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = fnv_word(h, u64::from_le_bytes(last));
    }
    // Name length doubles as the separator word: names that differ only in
    // trailing zero padding, and field boundaries, cannot alias.
    h = fnv_word(h, bytes.len() as u64 ^ 0xff00_0000_0000_0000);
    h = fnv_word(h, kernel.work_items);
    for v in kernel.mix.as_feature_vector() {
        h = fnv_word(h, v.to_bits());
    }
    h = fnv_word(h, kernel.ilp_efficiency.to_bits());
    h
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct PriceKey {
    kernel_id: u64,
    core_bits: u64,
    mem_bits: u64,
}

/// Map hasher for [`PriceKey`]: the key's first field is already a 64-bit
/// FNV digest and the clock bits are near-constant across a sweep, so an
/// FNV fold of the three words is both cheap (three multiply-xors on the
/// hot lookup path) and well distributed — SipHash would only add cost.
struct KeyHasher(u64);

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher(FNV_OFFSET)
    }
}

impl std::hash::Hasher for KeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 = fnv_word(self.0, *b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = fnv_word(self.0, n);
    }
}

struct PriceEntry {
    /// Full profile for collision-proof verification of hits.
    profile: KernelProfile,
    time_s: f64,
    energy_j: f64,
}

/// A shareable, internally synchronized memo cache of noiseless launch
/// prices, keyed by `(kernel-id, freq-bits)`. See the module docs.
#[derive(Default)]
pub struct PriceTable {
    entries: RwLock<HashMap<PriceKey, PriceEntry, std::hash::BuildHasherDefault<KeyHasher>>>,
}

impl PriceTable {
    /// An empty table.
    pub fn new() -> Self {
        PriceTable::default()
    }

    /// Number of cached `(kernel, frequency)` prices.
    pub fn len(&self) -> usize {
        self.entries.read().expect("price table poisoned").len()
    }

    /// True when nothing has been priced yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached prices.
    pub fn clear(&self) {
        self.entries.write().expect("price table poisoned").clear();
    }

    /// Returns the cached price for `(kernel, core_mhz, mem_mhz)`, or
    /// computes it with `compute` and caches it. On the (theoretical)
    /// kernel-id collision the price is computed but *not* cached, so a
    /// collision can never serve wrong numbers.
    pub fn price_or_insert_with(
        &self,
        kernel: &KernelProfile,
        core_mhz: f64,
        mem_mhz: f64,
        compute: impl FnOnce() -> (f64, f64),
    ) -> (f64, f64) {
        let key = PriceKey {
            kernel_id: kernel_cache_id(kernel),
            core_bits: core_mhz.to_bits(),
            mem_bits: mem_mhz.to_bits(),
        };
        if let Some(entry) = self.entries.read().expect("price table poisoned").get(&key) {
            if entry.profile == *kernel {
                return (entry.time_s, entry.energy_j);
            }
            return compute();
        }
        let (time_s, energy_j) = compute();
        self.entries.write().expect("price table poisoned").insert(
            key,
            PriceEntry {
                profile: kernel.clone(),
                time_s,
                energy_j,
            },
        );
        (time_s, energy_j)
    }
}

impl std::fmt::Debug for PriceTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PriceTable")
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::OpMix;

    fn k(name: &str, items: u64) -> KernelProfile {
        KernelProfile::new(
            name,
            items,
            OpMix {
                float_add: 10.0,
                global_access: 4.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn second_lookup_is_cached() {
        let table = PriceTable::new();
        let kernel = k("a", 1000);
        let mut calls = 0;
        let first = table.price_or_insert_with(&kernel, 1312.0, 1107.0, || {
            calls += 1;
            (1.0, 2.0)
        });
        let second = table.price_or_insert_with(&kernel, 1312.0, 1107.0, || {
            calls += 1;
            (99.0, 99.0)
        });
        assert_eq!(calls, 1, "second lookup must hit the cache");
        assert_eq!(first, second);
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn distinct_kernels_and_freqs_get_distinct_entries() {
        let table = PriceTable::new();
        table.price_or_insert_with(&k("a", 1000), 1312.0, 1107.0, || (1.0, 1.0));
        table.price_or_insert_with(&k("a", 2000), 1312.0, 1107.0, || (2.0, 2.0));
        table.price_or_insert_with(&k("a", 1000), 800.0, 1107.0, || (3.0, 3.0));
        assert_eq!(table.len(), 3);
        let hit = table.price_or_insert_with(&k("a", 2000), 1312.0, 1107.0, || unreachable!());
        assert_eq!(hit, (2.0, 2.0));
    }

    #[test]
    fn cache_id_depends_on_every_pricing_input() {
        let base = k("a", 1000);
        let mut renamed = base.clone();
        renamed.name = "b".into();
        let mut resized = base.clone();
        resized.work_items = 1001;
        let mut remixed = base.clone();
        remixed.mix.float_mul += 1.0;
        let mut ilp = base.clone();
        ilp.ilp_efficiency *= 0.5;
        let id = kernel_cache_id(&base);
        assert_eq!(id, kernel_cache_id(&base.clone()));
        for other in [renamed, resized, remixed, ilp] {
            assert_ne!(id, kernel_cache_id(&other));
        }
    }

    #[test]
    fn clear_empties_the_table() {
        let table = PriceTable::new();
        table.price_or_insert_with(&k("a", 1000), 1312.0, 1107.0, || (1.0, 1.0));
        assert!(!table.is_empty());
        table.clear();
        assert!(table.is_empty());
    }
}
