//! The device execution engine.
//!
//! [`Device`] owns the mutable state of one simulated GPU: current clocks,
//! cumulative energy counter, device clock, execution trace, and the
//! optional measurement-noise stream. The vendor-specific management layers
//! ([`crate::nvml`], [`crate::rocm`]) and the portable `synergy` crate all
//! drive this type.

use serde::{Deserialize, Serialize};

use crate::kernel::KernelProfile;
use crate::noise::NoiseModel;
use crate::power::{kernel_power, PowerBreakdown};
use crate::spec::DeviceSpec;
use crate::timing::{kernel_timing, TimingBreakdown};
use crate::trace::{Trace, TraceEvent};

/// Result of one kernel launch: what a profiler would hand back.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchRecord {
    /// Wall-clock duration (s), including launch overhead.
    pub time_s: f64,
    /// Energy consumed by the launch (J).
    pub energy_j: f64,
    /// Average power over the launch (W).
    pub avg_power_w: f64,
    /// Core clock the kernel ran at (MHz).
    pub core_mhz: f64,
    /// Memory clock the kernel ran at (MHz).
    pub mem_mhz: f64,
}

/// A simulated GPU with mutable clock and counter state.
#[derive(Debug, Clone)]
pub struct Device {
    spec: DeviceSpec,
    core_mhz: f64,
    mem_mhz: f64,
    /// Cumulative energy counter in joules (NVML reports millijoules; the
    /// NVML layer converts).
    energy_counter_j: f64,
    /// Device-side clock, seconds since creation.
    clock_s: f64,
    /// Power reading of the most recent activity (W).
    last_power_w: f64,
    trace: Trace,
    noise: NoiseModel,
}

impl Device {
    /// Creates a device at its default clocks, with noise disabled and an
    /// unbounded trace.
    pub fn new(spec: DeviceSpec) -> Self {
        let core = spec.default_core_mhz;
        let mem = spec.mem_freqs.max();
        let idle = spec.idle_power_w;
        Device {
            spec,
            core_mhz: core,
            mem_mhz: mem,
            energy_counter_j: 0.0,
            clock_s: 0.0,
            last_power_w: idle,
            trace: Trace::with_capacity_limit(100_000),
            noise: NoiseModel::disabled(),
        }
    }

    /// Creates a device with a seeded measurement-noise model.
    pub fn with_noise(spec: DeviceSpec, noise: NoiseModel) -> Self {
        let mut d = Device::new(spec);
        d.noise = noise;
        d
    }

    /// The static descriptor of this device.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Current core clock (MHz).
    pub fn core_mhz(&self) -> f64 {
        self.core_mhz
    }

    /// Current memory clock (MHz).
    pub fn mem_mhz(&self) -> f64 {
        self.mem_mhz
    }

    /// Sets the core clock, snapping to the nearest supported frequency.
    /// Returns the frequency actually applied — the same contract as
    /// `nvmlDeviceSetApplicationsClocks`.
    pub fn set_core_mhz(&mut self, mhz: f64) -> f64 {
        self.core_mhz = self.spec.core_freqs.snap(mhz);
        self.core_mhz
    }

    /// Sets the memory clock, snapping to the nearest supported frequency.
    pub fn set_mem_mhz(&mut self, mhz: f64) -> f64 {
        self.mem_mhz = self.spec.mem_freqs.snap(mhz);
        self.mem_mhz
    }

    /// Restores the default clock configuration
    /// (`nvmlDeviceResetApplicationsClocks` analogue).
    pub fn reset_clocks(&mut self) {
        self.core_mhz = self.spec.default_core_mhz;
        self.mem_mhz = self.spec.mem_freqs.max();
    }

    /// Executes a kernel at the current clocks, advancing the device clock
    /// and energy counter, and returns the measured record.
    pub fn launch(&mut self, kernel: &KernelProfile) -> LaunchRecord {
        self.launch_at(kernel, self.core_mhz)
    }

    /// Executes a kernel at an explicit core clock without changing the
    /// device's configured clock (per-kernel frequency scaling, as SYnergy
    /// does). The clock is snapped to a supported frequency.
    pub fn launch_at(&mut self, kernel: &KernelProfile, core_mhz: f64) -> LaunchRecord {
        let f = self.spec.core_freqs.snap(core_mhz);
        let timing = kernel_timing(&self.spec, kernel, f, self.mem_mhz);

        let time_s = timing.total_s * self.noise.time_factor();
        let energy_j =
            crate::power::kernel_energy(&self.spec, &timing, f) * self.noise.energy_factor();
        let avg_power_w = energy_j / time_s;

        let rec = LaunchRecord {
            time_s,
            energy_j,
            avg_power_w,
            core_mhz: f,
            mem_mhz: self.mem_mhz,
        };
        self.trace.push(TraceEvent {
            kernel: kernel.name.clone(),
            start_s: self.clock_s,
            duration_s: time_s,
            energy_j,
            core_mhz: f,
            mem_mhz: self.mem_mhz,
            avg_power_w,
            work_items: kernel.work_items,
        });
        self.clock_s += time_s;
        self.energy_counter_j += energy_j;
        self.last_power_w = avg_power_w;
        rec
    }

    /// Dry-run: computes what a launch *would* cost at `core_mhz` without
    /// mutating any state (no trace, no counters, no noise). Used by models
    /// that need ground truth independent of measurement jitter.
    pub fn peek(&self, kernel: &KernelProfile, core_mhz: f64) -> (TimingBreakdown, PowerBreakdown) {
        let f = self.spec.core_freqs.snap(core_mhz);
        let timing = kernel_timing(&self.spec, kernel, f, self.mem_mhz);
        let power = kernel_power(&self.spec, &timing, f);
        (timing, power)
    }

    /// Dry-run returning `(time_s, energy_j)` with the same phase-split
    /// energy accounting as [`Device::launch`], noise-free.
    pub fn peek_cost(&self, kernel: &KernelProfile, core_mhz: f64) -> (f64, f64) {
        let f = self.spec.core_freqs.snap(core_mhz);
        let timing = kernel_timing(&self.spec, kernel, f, self.mem_mhz);
        let energy = crate::power::kernel_energy(&self.spec, &timing, f);
        (timing.total_s, energy)
    }

    /// Advances the device clock by `dt` seconds of idleness, charging idle
    /// power to the energy counter (host-side gaps between kernels).
    ///
    /// # Panics
    /// Panics on negative `dt`.
    pub fn idle_advance(&mut self, dt_s: f64) {
        assert!(dt_s >= 0.0, "time cannot run backwards");
        self.clock_s += dt_s;
        self.energy_counter_j += self.spec.idle_power_w * dt_s;
        self.last_power_w = self.spec.idle_power_w;
    }

    /// Cumulative energy counter (J) since creation — the
    /// `nvmlDeviceGetTotalEnergyConsumption` analogue (which reports mJ).
    pub fn energy_counter_j(&self) -> f64 {
        self.energy_counter_j
    }

    /// Device clock (s since creation).
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Most recent power reading (W) — the `nvmlDeviceGetPowerUsage`
    /// analogue (which reports mW).
    pub fn power_usage_w(&self) -> f64 {
        self.last_power_w
    }

    /// The execution trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Clears the execution trace (counters are unaffected).
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    #[test]
    fn launch_advances_counters() {
        let mut d = Device::new(DeviceSpec::v100());
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let before = d.energy_counter_j();
        let rec = d.launch(&k);
        assert!(rec.time_s > 0.0);
        assert!(d.energy_counter_j() > before);
        assert!((d.clock_s() - rec.time_s).abs() < 1e-15);
        assert_eq!(d.trace().events().len(), 1);
    }

    #[test]
    fn set_core_snaps() {
        let mut d = Device::new(DeviceSpec::v100());
        let applied = d.set_core_mhz(1000.0);
        assert!(d.spec().core_freqs.contains(applied));
        assert_eq!(d.core_mhz(), applied);
    }

    #[test]
    fn reset_restores_defaults() {
        let mut d = Device::new(DeviceSpec::v100());
        d.set_core_mhz(300.0);
        d.reset_clocks();
        assert_eq!(d.core_mhz(), d.spec().default_core_mhz);
    }

    #[test]
    fn launch_at_does_not_change_configured_clock() {
        let mut d = Device::new(DeviceSpec::v100());
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let configured = d.core_mhz();
        let rec = d.launch_at(&k, 300.0);
        assert!(rec.core_mhz < configured);
        assert_eq!(d.core_mhz(), configured);
    }

    #[test]
    fn peek_is_pure() {
        let d = Device::new(DeviceSpec::v100());
        let k = KernelProfile::memory_bound("k", 1_000_000, 32.0);
        let (t1, p1) = d.peek(&k, 800.0);
        let (t2, p2) = d.peek(&k, 800.0);
        assert_eq!(t1.total_s, t2.total_s);
        assert_eq!(p1.total_w, p2.total_w);
        assert_eq!(d.energy_counter_j(), 0.0);
        assert!(d.trace().events().is_empty());
    }

    #[test]
    fn idle_charges_idle_power() {
        let mut d = Device::new(DeviceSpec::v100());
        d.idle_advance(2.0);
        let expected = d.spec().idle_power_w * 2.0;
        assert!((d.energy_counter_j() - expected).abs() < 1e-12);
    }

    #[test]
    fn noise_preserves_determinism_per_seed() {
        let spec = DeviceSpec::v100();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let mut a = Device::with_noise(spec.clone(), NoiseModel::realistic(9));
        let mut b = Device::with_noise(spec, NoiseModel::realistic(9));
        for _ in 0..10 {
            let ra = a.launch(&k);
            let rb = b.launch(&k);
            assert_eq!(ra.time_s, rb.time_s);
            assert_eq!(ra.energy_j, rb.energy_j);
        }
    }

    #[test]
    fn record_power_consistent() {
        let mut d = Device::new(DeviceSpec::mi100());
        let k = KernelProfile::memory_bound("k", 10_000_000, 48.0);
        let rec = d.launch(&k);
        assert!((rec.avg_power_w - rec.energy_j / rec.time_s).abs() < 1e-9);
    }
}
