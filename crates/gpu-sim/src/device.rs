//! The device execution engine.
//!
//! [`Device`] owns the mutable state of one simulated GPU: current clocks,
//! cumulative energy counter, device clock, execution trace, and the
//! optional measurement-noise stream. The vendor-specific management layers
//! ([`crate::nvml`], [`crate::rocm`]) and the portable `synergy` crate all
//! drive this type.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::faults::{FaultError, FaultPlan, FaultState};
use crate::kernel::KernelProfile;
use crate::link::{transfer_power_w, TransferRecord};
use crate::noise::NoiseModel;
use crate::power::{energy_from_parts, resolve_power_cap, CapResolution, PowerBreakdown};
use crate::pricing::PriceTable;
use crate::spec::DeviceSpec;
use crate::timing::TimingBreakdown;
use crate::trace::{Trace, TraceEvent};

/// Result of one kernel launch: what a profiler would hand back.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchRecord {
    /// Wall-clock duration (s), including launch overhead.
    pub time_s: f64,
    /// Energy consumed by the launch (J).
    pub energy_j: f64,
    /// Average power over the launch (W).
    pub avg_power_w: f64,
    /// Core clock the kernel ran at (MHz).
    pub core_mhz: f64,
    /// Memory clock the kernel ran at (MHz).
    pub mem_mhz: f64,
    /// True when the effective clock sat below the requested one for *any*
    /// reason: an injected fault window, the always-on firmware TDP loop,
    /// or a binding operator power cap.
    pub throttled: bool,
    /// True only when a fault-injected throttle window held the granted
    /// clock below the request — a transient anomaly worth re-measuring.
    /// Deterministic TDP/power-cap throttling sets [`LaunchRecord::throttled`]
    /// but not this: it is physics of the requested configuration, and a
    /// re-measurement would reproduce it exactly.
    pub fault_throttled: bool,
}

/// A simulated GPU with mutable clock and counter state.
#[derive(Debug, Clone)]
pub struct Device {
    spec: DeviceSpec,
    core_mhz: f64,
    mem_mhz: f64,
    /// Operator power cap (W), `None` = TDP only. Enforced by
    /// [`resolve_power_cap`] on every launch.
    power_cap_w: Option<f64>,
    /// Cumulative energy counter in joules (NVML reports millijoules; the
    /// NVML layer converts).
    energy_counter_j: f64,
    /// Device-side clock, seconds since creation.
    clock_s: f64,
    /// Power reading of the most recent activity (W).
    last_power_w: f64,
    trace: Trace,
    noise: NoiseModel,
    /// Memo cache of noiseless launch prices; shareable across devices.
    prices: Arc<PriceTable>,
    /// Fault-injection cursor; inert by default.
    faults: FaultState,
}

impl Device {
    /// Creates a device at its default clocks, with noise disabled and an
    /// unbounded trace.
    pub fn new(spec: DeviceSpec) -> Self {
        let core = spec.default_core_mhz;
        let mem = spec.mem_freqs.max();
        let idle = spec.idle_power_w;
        Device {
            spec,
            core_mhz: core,
            mem_mhz: mem,
            power_cap_w: None,
            energy_counter_j: 0.0,
            clock_s: 0.0,
            last_power_w: idle,
            trace: Trace::with_capacity_limit(100_000),
            noise: NoiseModel::disabled(),
            prices: Arc::new(PriceTable::new()),
            faults: FaultState::inert(),
        }
    }

    /// Creates a device with a seeded measurement-noise model.
    pub fn with_noise(spec: DeviceSpec, noise: NoiseModel) -> Self {
        let mut d = Device::new(spec);
        d.noise = noise;
        d
    }

    /// Creates a device with a fault-injection plan.
    pub fn with_faults(spec: DeviceSpec, plan: FaultPlan) -> Self {
        let mut d = Device::new(spec);
        d.set_fault_plan(plan);
        d
    }

    /// Installs a fault-injection plan, restarting its operation counters.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = FaultState::new(plan);
    }

    /// The device's fault-injection cursor.
    pub fn fault_state(&self) -> &FaultState {
        &self.faults
    }

    /// The static descriptor of this device.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Current core clock (MHz).
    pub fn core_mhz(&self) -> f64 {
        self.core_mhz
    }

    /// Current memory clock (MHz).
    pub fn mem_mhz(&self) -> f64 {
        self.mem_mhz
    }

    /// Sets the core clock, snapping to the nearest supported frequency.
    /// Returns the frequency actually applied — the same contract as
    /// `nvmlDeviceSetApplicationsClocks`. Under an active fault plan the
    /// request may be rejected, in which case the device keeps its
    /// previous clock.
    pub fn set_core_mhz(&mut self, mhz: f64) -> Result<f64, FaultError> {
        let requested = self.spec.core_freqs.snap(mhz);
        self.faults.on_set_frequency(requested)?;
        self.core_mhz = requested;
        Ok(self.core_mhz)
    }

    /// Sets the memory clock, snapping to the nearest supported frequency.
    /// Like [`Device::set_core_mhz`] this is a management request the fault
    /// plan may reject — but only a request that *changes* the clock
    /// consumes a management operation, so setting the clock the device is
    /// already at is always a no-op success (matching drivers, which
    /// short-circuit idempotent clock requests).
    pub fn set_mem_mhz(&mut self, mhz: f64) -> Result<f64, FaultError> {
        let requested = self.spec.mem_freqs.snap(mhz);
        if requested != self.mem_mhz {
            self.faults.on_set_frequency(requested)?;
            self.mem_mhz = requested;
        }
        Ok(self.mem_mhz)
    }

    /// Current operator power cap (W); `None` means TDP-only.
    pub fn power_cap_w(&self) -> Option<f64> {
        self.power_cap_w
    }

    /// Sets (or clears, with `None`) the operator power cap — the
    /// `nvmlDeviceSetPowerManagementLimit` analogue. Caps above TDP are
    /// accepted but the TDP still binds first. Only a changing request
    /// consumes a fault-plan management operation (reported with the cap
    /// value — or TDP when clearing — in the `requested_mhz` slot of
    /// [`FaultError::FrequencyRejected`]).
    ///
    /// # Panics
    /// Panics on a non-finite or non-positive cap.
    pub fn set_power_cap_w(&mut self, cap_w: Option<f64>) -> Result<Option<f64>, FaultError> {
        if let Some(c) = cap_w {
            assert!(
                c.is_finite() && c > 0.0,
                "power cap must be finite and positive"
            );
        }
        if cap_w != self.power_cap_w {
            self.faults
                .on_set_frequency(cap_w.unwrap_or(self.spec.tdp_w))?;
            self.power_cap_w = cap_w;
        }
        Ok(self.power_cap_w)
    }

    /// Restores the default clock configuration and clears any operator
    /// power cap (`nvmlDeviceResetApplicationsClocks` analogue).
    pub fn reset_clocks(&mut self) {
        self.core_mhz = self.spec.default_core_mhz;
        self.mem_mhz = self.spec.mem_freqs.max();
        self.power_cap_w = None;
    }

    /// Executes a kernel at the current clocks, advancing the device clock
    /// and energy counter, and returns the measured record. Fails only
    /// when the fault plan injects a transient launch failure.
    pub fn launch(&mut self, kernel: &KernelProfile) -> Result<LaunchRecord, FaultError> {
        self.launch_at(kernel, self.core_mhz)
    }

    /// Executes a kernel at an explicit core clock without changing the
    /// device's configured clock (per-kernel frequency scaling, as SYnergy
    /// does). The clock is snapped to a supported frequency.
    ///
    /// Launching at a clock other than the configured one performs an
    /// implicit application-clock request, which the fault plan may reject
    /// ([`FaultError::FrequencyRejected`] — nothing runs, no counter
    /// moves). The plan may also drop the launch
    /// ([`FaultError::LaunchFailed`]) or hold the effective clock below
    /// the requested one for a throttle window, in which case the launch
    /// succeeds with [`LaunchRecord::throttled`] set and `core_mhz` at the
    /// capped clock.
    pub fn launch_at(
        &mut self,
        kernel: &KernelProfile,
        core_mhz: f64,
    ) -> Result<LaunchRecord, FaultError> {
        let requested = self.spec.core_freqs.snap(core_mhz);
        if requested != self.core_mhz {
            self.faults.on_set_frequency(requested)?;
        }
        let granted = match self.faults.on_launch_attempt(&kernel.name)? {
            Some(cap_mhz) => {
                let cap = self.spec.core_freqs.snap(cap_mhz);
                if cap < requested {
                    cap
                } else {
                    requested
                }
            }
            None => requested,
        };
        // Firmware power-cap enforcement: the effective clock may sit below
        // the fault-granted one when demand exceeds min(TDP, operator cap);
        // the body then runs (and stretches) at that lower clock.
        let res = resolve_power_cap(&self.spec, kernel, granted, self.mem_mhz, self.power_cap_w);
        let f = res.core_mhz;

        let time_s = res.timing.total_s * self.noise.time_factor();
        let energy_j =
            energy_from_parts(&self.spec, &res.timing, &res.power) * self.noise.energy_factor();
        let avg_power_w = energy_j / time_s;

        let rec = LaunchRecord {
            time_s,
            energy_j,
            avg_power_w,
            core_mhz: f,
            mem_mhz: self.mem_mhz,
            throttled: f < requested,
            fault_throttled: granted < requested,
        };
        self.trace.push(TraceEvent {
            kernel: kernel.name.clone(),
            start_s: self.clock_s,
            duration_s: time_s,
            energy_j,
            core_mhz: f,
            mem_mhz: self.mem_mhz,
            avg_power_w,
            work_items: kernel.work_items,
        });
        self.clock_s += time_s;
        self.energy_counter_j += energy_j;
        self.last_power_w = avg_power_w;
        if self.faults.on_launch_complete() {
            // Counter wrap/reset: readings restart from zero, exactly like
            // a wrapped `rsmi_dev_energy_count_get` accumulator.
            self.energy_counter_j = 0.0;
        }
        Ok(rec)
    }

    /// Resolves the effective configuration a request for `core_mhz` would
    /// run at under the current memory clock and power cap, without
    /// mutating any state.
    pub fn resolve(&self, kernel: &KernelProfile, core_mhz: f64) -> CapResolution {
        resolve_power_cap(&self.spec, kernel, core_mhz, self.mem_mhz, self.power_cap_w)
    }

    /// Dry-run: computes what a launch *would* cost at `core_mhz` without
    /// mutating any state (no trace, no counters, no noise). Used by models
    /// that need ground truth independent of measurement jitter. Reflects
    /// cap throttling: the returned timing/power belong to the *effective*
    /// clock.
    pub fn peek(&self, kernel: &KernelProfile, core_mhz: f64) -> (TimingBreakdown, PowerBreakdown) {
        let r = self.resolve(kernel, core_mhz);
        (r.timing, r.power)
    }

    /// Dry-run returning `(time_s, energy_j)` with the same phase-split
    /// energy accounting as [`Device::launch`], noise-free.
    pub fn peek_cost(&self, kernel: &KernelProfile, core_mhz: f64) -> (f64, f64) {
        let r = self.resolve(kernel, core_mhz);
        (
            r.timing.total_s,
            energy_from_parts(&self.spec, &r.timing, &r.power),
        )
    }

    /// Pure pricing: `(time_s, energy_j)` of one noiseless launch of
    /// `kernel` at `core_mhz`, served from the device's [`PriceTable`].
    ///
    /// Identical to [`Device::peek_cost`] (bit-for-bit — the cache stores
    /// what `peek_cost` computes), but memoized per `(kernel, frequency)`
    /// pair, which makes repeated re-pricing of the same kernel mix across
    /// a frequency sweep a hash lookup instead of a cost-model evaluation.
    pub fn price(&self, kernel: &KernelProfile, core_mhz: f64) -> (f64, f64) {
        self.prices
            .price_or_insert_with(kernel, core_mhz, self.mem_mhz, self.power_cap_w, || {
                self.peek_cost(kernel, core_mhz)
            })
    }

    /// Executes `n` back-to-back launches of `kernel` at an explicit core
    /// clock, pricing the kernel **once** (via [`Device::price`]) and then
    /// applying per-launch measurement noise and counter accumulation in
    /// exactly the order `n` separate [`Device::launch_at`] calls would:
    /// each launch draws one time factor then one energy factor, and the
    /// device clock / energy counter advance launch by launch, so the final
    /// counter values are bit-identical to the unbatched path.
    ///
    /// `sink` observes every launch's `(time_s, energy_j)` in submission
    /// order. The trace records a single aggregate event for the whole
    /// batch (when the trace is recording at all), not `n` events — that,
    /// plus the skipped per-launch cost-model evaluations, is where the
    /// batch path's speed comes from.
    ///
    /// Returns the number of *fault-throttled* launches in the batch —
    /// launches a fault-injected throttle window held below the request
    /// (see [`LaunchRecord::fault_throttled`]). Deterministic TDP/cap
    /// throttling is not counted: it is physics of the configuration, not
    /// degradation. Under an active fault plan the batch runs launch by
    /// launch and stops at the first injected failure: `sink` has then
    /// observed every completed launch and the error is returned. With the
    /// inert plan this is the bit-identical fast path, and no window can
    /// fire, so the count is zero.
    pub fn launch_batch(
        &mut self,
        kernel: &KernelProfile,
        core_mhz: f64,
        n: u64,
        sink: &mut dyn FnMut(f64, f64),
    ) -> Result<u64, FaultError> {
        if n == 0 {
            return Ok(0);
        }
        if !self.faults.is_inert() {
            let mut throttled = 0;
            for _ in 0..n {
                let rec = self.launch_at(kernel, core_mhz)?;
                if rec.fault_throttled {
                    throttled += 1;
                }
                sink(rec.time_s, rec.energy_j);
            }
            return Ok(throttled);
        }
        let (base_time_s, base_energy_j) = self.price(kernel, core_mhz);
        // One resolution per batch (not per launch) recovers the effective
        // clock the serial path would have reported. With an inert fault
        // plan no throttle *window* can fire, so the fault-throttle count
        // is zero even when the TDP/cap resolver lowers the clock.
        let requested = self.spec.core_freqs.snap(core_mhz);
        let res = self.resolve(kernel, requested);
        let throttled = 0;
        let start_s = self.clock_s;
        let mut batch_time_s = 0.0;
        let mut batch_energy_j = 0.0;
        for _ in 0..n {
            let time_s = base_time_s * self.noise.time_factor();
            let energy_j = base_energy_j * self.noise.energy_factor();
            self.clock_s += time_s;
            self.energy_counter_j += energy_j;
            self.last_power_w = energy_j / time_s;
            batch_time_s += time_s;
            batch_energy_j += energy_j;
            sink(time_s, energy_j);
        }
        if self.trace.is_recording() {
            self.trace.push(TraceEvent {
                kernel: kernel.name.clone(),
                start_s,
                duration_s: batch_time_s,
                energy_j: batch_energy_j,
                core_mhz: res.core_mhz,
                mem_mhz: self.mem_mhz,
                avg_power_w: batch_energy_j / batch_time_s,
                work_items: kernel.work_items.saturating_mul(n),
            });
        }
        Ok(throttled)
    }

    /// The device's price memo cache.
    pub fn price_table(&self) -> &Arc<PriceTable> {
        &self.prices
    }

    /// Replaces the device's price cache, typically to share one table
    /// across many per-frequency device replicas in a parallel sweep.
    pub fn set_price_table(&mut self, table: Arc<PriceTable>) {
        self.prices = table;
    }

    /// Replaces the execution trace with an empty one bounded by
    /// `capacity` events (`None` = unbounded, `Some(0)` = record nothing).
    /// Sweep drivers that replay millions of launches use a zero-capacity
    /// trace so the per-batch event construction is skipped entirely.
    pub fn set_trace_capacity(&mut self, capacity: Option<usize>) {
        self.trace = match capacity {
            Some(cap) => Trace::with_capacity_limit(cap),
            None => Trace::new(),
        };
    }

    /// Advances the device clock by `dt` seconds of idleness, charging idle
    /// power to the energy counter (host-side gaps between kernels).
    ///
    /// # Panics
    /// Panics on negative `dt`.
    pub fn idle_advance(&mut self, dt_s: f64) {
        assert!(dt_s >= 0.0, "time cannot run backwards");
        self.clock_s += dt_s;
        self.energy_counter_j += self.spec.idle_power_w * dt_s;
        self.last_power_w = self.spec.idle_power_w;
    }

    /// Moves `bytes` over the device's peer-to-peer interconnect port,
    /// advancing the device clock and energy counter.
    ///
    /// Time follows the alpha-beta model of [`crate::link::LinkSpec`];
    /// energy flows through the *memory* power path (a DMA engine streams
    /// DRAM while the compute pipes idle, see
    /// [`crate::link::transfer_power_w`]), so a lower memory clock cheapens
    /// the transfer like it cheapens a streaming kernel. The fault plan may
    /// degrade the link (the transfer completes at a fraction of nominal
    /// bandwidth, [`TransferRecord::degraded`] set) or drop it entirely
    /// ([`FaultError::LinkLost`] — nothing runs, no counter moves).
    pub fn transfer(&mut self, bytes: u64) -> Result<TransferRecord, FaultError> {
        let fault = self.faults.on_transfer()?;
        let factor = fault.unwrap_or(1.0);
        let time_base_s = self.spec.link.transfer_time_s(bytes, factor);
        // Achieved DRAM utilization: what the (possibly degraded) link can
        // actually pull through the local memory system.
        let util = if time_base_s > 0.0 {
            (bytes as f64 / time_base_s / (self.spec.mem_bandwidth_gbs * 1e9)).min(1.0)
        } else {
            0.0
        };
        let power_w = transfer_power_w(&self.spec, self.mem_mhz, util);
        let time_s = time_base_s * self.noise.time_factor();
        let energy_j = power_w * time_base_s * self.noise.energy_factor();
        if self.trace.is_recording() {
            self.trace.push(TraceEvent {
                kernel: "link::transfer".to_string(),
                start_s: self.clock_s,
                duration_s: time_s,
                energy_j,
                core_mhz: self.core_mhz,
                mem_mhz: self.mem_mhz,
                avg_power_w: energy_j / time_s,
                work_items: bytes,
            });
        }
        self.clock_s += time_s;
        self.energy_counter_j += energy_j;
        self.last_power_w = energy_j / time_s;
        Ok(TransferRecord {
            bytes,
            time_s,
            energy_j,
            degraded: fault.is_some(),
        })
    }

    /// Cumulative energy counter (J) since creation — the
    /// `nvmlDeviceGetTotalEnergyConsumption` analogue (which reports mJ).
    pub fn energy_counter_j(&self) -> f64 {
        self.energy_counter_j
    }

    /// Device clock (s since creation).
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Most recent power reading (W) — the `nvmlDeviceGetPowerUsage`
    /// analogue (which reports mW).
    pub fn power_usage_w(&self) -> f64 {
        self.last_power_w
    }

    /// The execution trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Clears the execution trace (counters are unaffected).
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    #[test]
    fn launch_advances_counters() {
        let mut d = Device::new(DeviceSpec::v100());
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let before = d.energy_counter_j();
        let rec = d.launch(&k).unwrap();
        assert!(rec.time_s > 0.0);
        assert!(d.energy_counter_j() > before);
        assert!((d.clock_s() - rec.time_s).abs() < 1e-15);
        assert_eq!(d.trace().events().len(), 1);
    }

    #[test]
    fn set_core_snaps() {
        let mut d = Device::new(DeviceSpec::v100());
        let applied = d.set_core_mhz(1000.0).unwrap();
        assert!(d.spec().core_freqs.contains(applied));
        assert_eq!(d.core_mhz(), applied);
    }

    #[test]
    fn reset_restores_defaults() {
        let mut d = Device::new(DeviceSpec::v100());
        d.set_core_mhz(300.0).unwrap();
        d.reset_clocks();
        assert_eq!(d.core_mhz(), d.spec().default_core_mhz);
    }

    #[test]
    fn launch_at_does_not_change_configured_clock() {
        let mut d = Device::new(DeviceSpec::v100());
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let configured = d.core_mhz();
        let rec = d.launch_at(&k, 300.0).unwrap();
        assert!(rec.core_mhz < configured);
        assert_eq!(d.core_mhz(), configured);
    }

    #[test]
    fn peek_is_pure() {
        let d = Device::new(DeviceSpec::v100());
        let k = KernelProfile::memory_bound("k", 1_000_000, 32.0);
        let (t1, p1) = d.peek(&k, 800.0);
        let (t2, p2) = d.peek(&k, 800.0);
        assert_eq!(t1.total_s, t2.total_s);
        assert_eq!(p1.total_w, p2.total_w);
        assert_eq!(d.energy_counter_j(), 0.0);
        assert!(d.trace().events().is_empty());
    }

    #[test]
    fn idle_charges_idle_power() {
        let mut d = Device::new(DeviceSpec::v100());
        d.idle_advance(2.0);
        let expected = d.spec().idle_power_w * 2.0;
        assert!((d.energy_counter_j() - expected).abs() < 1e-12);
    }

    #[test]
    fn noise_preserves_determinism_per_seed() {
        let spec = DeviceSpec::v100();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let mut a = Device::with_noise(spec.clone(), NoiseModel::realistic(9));
        let mut b = Device::with_noise(spec, NoiseModel::realistic(9));
        for _ in 0..10 {
            let ra = a.launch(&k).unwrap();
            let rb = b.launch(&k).unwrap();
            assert_eq!(ra.time_s, rb.time_s);
            assert_eq!(ra.energy_j, rb.energy_j);
        }
    }

    #[test]
    fn price_matches_peek_cost_bitwise() {
        let d = Device::new(DeviceSpec::v100());
        let k = KernelProfile::memory_bound("k", 2_000_000, 48.0);
        for f in [135.0, 800.0, 1312.1, 1597.0] {
            let (pt, pe) = d.peek_cost(&k, f);
            // First call computes, second must serve the cached value.
            assert_eq!(d.price(&k, f), (pt, pe));
            assert_eq!(d.price(&k, f), (pt, pe));
        }
        assert_eq!(d.price_table().len(), 4);
    }

    #[test]
    fn launch_batch_matches_serial_launches_noiseless() {
        let spec = DeviceSpec::v100();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let mut serial = Device::new(spec.clone());
        let mut batched = Device::new(spec);
        let mut expected = Vec::new();
        for _ in 0..7 {
            let rec = serial.launch_at(&k, 900.0).unwrap();
            expected.push((rec.time_s, rec.energy_j));
        }
        let mut seen = Vec::new();
        batched
            .launch_batch(&k, 900.0, 7, &mut |t, e| seen.push((t, e)))
            .unwrap();
        assert_eq!(seen, expected);
        assert_eq!(batched.clock_s(), serial.clock_s());
        assert_eq!(batched.energy_counter_j(), serial.energy_counter_j());
        assert_eq!(batched.power_usage_w(), serial.power_usage_w());
        // One aggregate trace event instead of seven.
        assert_eq!(batched.trace().events().len(), 1);
        let ev = &batched.trace().events()[0];
        assert_eq!(ev.work_items, 7_000_000);
        assert_eq!(ev.duration_s, batched.clock_s());
    }

    #[test]
    fn launch_batch_matches_serial_launches_with_noise() {
        let spec = DeviceSpec::v100();
        let k = KernelProfile::memory_bound("k", 4_000_000, 64.0);
        let mut serial = Device::with_noise(spec.clone(), NoiseModel::realistic(31));
        let mut batched = Device::with_noise(spec, NoiseModel::realistic(31));
        let mut expected = Vec::new();
        for _ in 0..5 {
            let rec = serial.launch_at(&k, 700.0).unwrap();
            expected.push((rec.time_s, rec.energy_j));
        }
        let mut seen = Vec::new();
        batched
            .launch_batch(&k, 700.0, 5, &mut |t, e| seen.push((t, e)))
            .unwrap();
        assert_eq!(seen, expected, "noise must be drawn per launch, in order");
        assert_eq!(batched.clock_s(), serial.clock_s());
        assert_eq!(batched.energy_counter_j(), serial.energy_counter_j());
    }

    #[test]
    fn zero_capacity_trace_skips_batch_events() {
        let mut d = Device::new(DeviceSpec::v100());
        d.set_trace_capacity(Some(0));
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        d.launch_batch(&k, 900.0, 3, &mut |_, _| {}).unwrap();
        assert!(d.trace().events().is_empty());
        assert_eq!(d.trace().dropped(), 0, "events are never even built");
        assert!(d.clock_s() > 0.0, "counters still advance");
    }

    #[test]
    fn shared_price_table_is_populated_across_replicas() {
        let spec = DeviceSpec::v100();
        let table = Arc::new(PriceTable::new());
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let mut a = Device::new(spec.clone());
        a.set_price_table(Arc::clone(&table));
        let mut b = Device::new(spec);
        b.set_price_table(Arc::clone(&table));
        a.launch_batch(&k, 900.0, 2, &mut |_, _| {}).unwrap();
        b.launch_batch(&k, 900.0, 2, &mut |_, _| {}).unwrap();
        assert_eq!(table.len(), 1, "both replicas share one cached price");
    }

    #[test]
    fn record_power_consistent() {
        let mut d = Device::new(DeviceSpec::mi100());
        let k = KernelProfile::memory_bound("k", 10_000_000, 48.0);
        let rec = d.launch(&k).unwrap();
        assert!((rec.avg_power_w - rec.energy_j / rec.time_s).abs() < 1e-9);
    }

    // ---- Fault injection at the device layer ----

    use crate::faults::{FaultError, FaultPlan, Schedule, ThrottleWindow};

    #[test]
    fn rejected_set_frequency_keeps_previous_clock() {
        let plan = FaultPlan::none().reject_set_frequency(Schedule::once(0));
        let mut d = Device::with_faults(DeviceSpec::v100(), plan);
        let before = d.core_mhz();
        let err = d.set_core_mhz(800.0).unwrap_err();
        assert!(matches!(err, FaultError::FrequencyRejected { .. }));
        assert_eq!(d.core_mhz(), before, "device stays at previous clock");
        // The next request (index 1) goes through.
        let applied = d.set_core_mhz(800.0).unwrap();
        assert_eq!(d.core_mhz(), applied);
    }

    #[test]
    fn launch_at_foreign_clock_consumes_a_set_frequency_op() {
        let plan = FaultPlan::none().reject_set_frequency(Schedule::once(0));
        let mut d = Device::with_faults(DeviceSpec::v100(), plan);
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        // Default-clock launches perform no clock request and cannot be
        // rejected.
        assert!(d.launch(&k).is_ok());
        let before = (d.clock_s(), d.energy_counter_j());
        let err = d.launch_at(&k, 600.0).unwrap_err();
        assert!(matches!(err, FaultError::FrequencyRejected { .. }));
        assert_eq!(
            (d.clock_s(), d.energy_counter_j()),
            before,
            "a rejected launch moves no counter"
        );
    }

    #[test]
    fn throttle_caps_effective_clock_for_window() {
        let plan = FaultPlan::none().throttle(
            Schedule::once(0),
            ThrottleWindow {
                cap_mhz: 700.0,
                launches: 2,
            },
        );
        let mut d = Device::with_faults(DeviceSpec::v100(), plan);
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        // Request a clock whose power demand fits under TDP, so the only
        // throttle in play is the injected fault window (at the very top
        // clock the firmware TDP loop would throttle this kernel too).
        let r1 = d.launch_at(&k, 1400.0).unwrap();
        assert!(r1.throttled);
        assert!(r1.fault_throttled, "window throttles are fault throttles");
        assert!(r1.core_mhz <= 700.0 + 15.0);
        let r2 = d.launch_at(&k, 1400.0).unwrap();
        assert!(r2.throttled);
        let r3 = d.launch_at(&k, 1400.0).unwrap();
        assert!(!r3.throttled, "window over");
        assert!(!r3.fault_throttled);
        assert!((r3.core_mhz - 1400.0).abs() < 10.0);
    }

    #[test]
    fn tdp_throttles_saturating_kernel_at_top_clock() {
        // No fault plan at all: the always-on firmware TDP loop throttles a
        // saturating compute-bound kernel whose demand at 1597 MHz exceeds
        // 300 W, and reports it in the launch record.
        let mut d = Device::new(DeviceSpec::v100());
        let k = KernelProfile::compute_bound("k", 100_000_000, 200.0);
        let rec = d.launch_at(&k, 1597.0).unwrap();
        assert!(rec.throttled);
        assert!(
            !rec.fault_throttled,
            "TDP throttling is deterministic physics, not a fault"
        );
        assert!(rec.core_mhz < 1597.0);
        assert!(rec.avg_power_w <= d.spec().tdp_w * 1.001);
    }

    #[test]
    fn set_mem_mhz_snaps_and_idempotent_requests_are_free() {
        let plan = FaultPlan::none().reject_set_frequency(Schedule::once(0));
        let mut d = Device::with_faults(DeviceSpec::v100(), plan);
        let top = d.spec().mem_freqs.max();
        // Setting the clock the device is already at consumes no
        // management op, so the scheduled rejection stays pending.
        assert_eq!(d.set_mem_mhz(top).unwrap(), top);
        let err = d.set_mem_mhz(800.0).unwrap_err();
        assert!(matches!(err, FaultError::FrequencyRejected { .. }));
        assert_eq!(d.mem_mhz(), top, "device keeps previous memory clock");
        let applied = d.set_mem_mhz(800.0).unwrap();
        assert!((applied - 810.0).abs() < 1e-9, "snapped to table entry");
        assert_eq!(d.mem_mhz(), applied);
    }

    #[test]
    fn power_cap_throttles_and_reset_clears_it() {
        let mut d = Device::new(DeviceSpec::v100());
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let free = d.launch_at(&k, 1200.0).unwrap();
        assert!(!free.throttled);
        d.set_power_cap_w(Some(120.0)).unwrap();
        let capped = d.launch_at(&k, 1200.0).unwrap();
        assert!(capped.throttled, "120 W must bind at 1200 MHz");
        assert!(!capped.fault_throttled, "cap throttling is not a fault");
        assert!(capped.core_mhz < free.core_mhz);
        assert!(capped.time_s > free.time_s, "cap stretches the body");
        assert!(capped.avg_power_w <= 120.0 + 1e-9);
        d.reset_clocks();
        assert_eq!(d.power_cap_w(), None);
        let again = d.launch_at(&k, 1200.0).unwrap();
        assert_eq!(again.time_s.to_bits(), free.time_s.to_bits());
    }

    #[test]
    fn batch_reports_cap_throttled_launches_like_serial() {
        let spec = DeviceSpec::v100();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let mut serial = Device::new(spec.clone());
        serial.set_power_cap_w(Some(150.0)).unwrap();
        let mut batched = Device::new(spec);
        batched.set_power_cap_w(Some(150.0)).unwrap();
        let mut n_fault_throttled = 0;
        let mut expected = Vec::new();
        for _ in 0..3 {
            let rec = serial.launch_at(&k, 1400.0).unwrap();
            assert!(rec.throttled, "150 W binds at 1400 MHz on this kernel");
            n_fault_throttled += u64::from(rec.fault_throttled);
            expected.push((rec.time_s, rec.energy_j));
        }
        let mut seen = Vec::new();
        let throttled = batched
            .launch_batch(&k, 1400.0, 3, &mut |t, e| seen.push((t, e)))
            .unwrap();
        assert_eq!(seen, expected);
        assert_eq!(throttled, n_fault_throttled);
        assert_eq!(
            throttled, 0,
            "cap throttling is configuration physics, not a fault count"
        );
        assert_eq!(batched.energy_counter_j(), serial.energy_counter_j());
    }

    #[test]
    fn throttle_below_cap_is_not_throttled() {
        let plan = FaultPlan::none().throttle(
            Schedule::once(0),
            ThrottleWindow {
                cap_mhz: 1200.0,
                launches: 1,
            },
        );
        let mut d = Device::with_faults(DeviceSpec::v100(), plan);
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let rec = d.launch_at(&k, 800.0).unwrap();
        assert!(!rec.throttled, "request below the cap is unaffected");
        assert!((rec.core_mhz - 800.0).abs() < 10.0);
    }

    #[test]
    fn counter_reset_rewinds_energy_counter() {
        let plan = FaultPlan::none().reset_energy_counter(Schedule::once(1));
        let mut d = Device::with_faults(DeviceSpec::v100(), plan);
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        d.launch(&k).unwrap();
        let after_first = d.energy_counter_j();
        assert!(after_first > 0.0);
        d.launch(&k).unwrap();
        assert_eq!(d.energy_counter_j(), 0.0, "counter reset at launch 1");
        d.launch(&k).unwrap();
        assert!(d.energy_counter_j() > 0.0);
        assert!(d.energy_counter_j() < after_first * 2.0);
    }

    #[test]
    fn transient_launch_failure_moves_nothing() {
        let plan = FaultPlan::none().fail_launches(Schedule::once(0));
        let mut d = Device::with_faults(DeviceSpec::v100(), plan);
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let err = d.launch(&k).unwrap_err();
        assert!(matches!(err, FaultError::LaunchFailed { .. }));
        assert_eq!(d.energy_counter_j(), 0.0);
        assert_eq!(d.clock_s(), 0.0);
        assert!(d.trace().events().is_empty());
        // Retry (attempt index 1) succeeds.
        assert!(d.launch(&k).is_ok());
    }

    #[test]
    fn faulty_batch_matches_serial_faulty_launches() {
        let plan = FaultPlan::none().throttle(
            Schedule::once(1),
            ThrottleWindow {
                cap_mhz: 900.0,
                launches: 2,
            },
        );
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let mut serial = Device::with_faults(DeviceSpec::v100(), plan.clone());
        let mut batched = Device::with_faults(DeviceSpec::v100(), plan);
        let mut expected = Vec::new();
        for _ in 0..4 {
            let rec = serial.launch_at(&k, 1400.0).unwrap();
            expected.push((rec.time_s, rec.energy_j));
        }
        let mut seen = Vec::new();
        let throttled = batched
            .launch_batch(&k, 1400.0, 4, &mut |t, e| seen.push((t, e)))
            .unwrap();
        assert_eq!(seen, expected);
        assert_eq!(throttled, 2);
        assert_eq!(batched.energy_counter_j(), serial.energy_counter_j());
    }

    #[test]
    fn transfer_advances_counters_and_prices_by_link() {
        let mut d = Device::new(DeviceSpec::v100());
        let bytes = 150_000_000; // 1 ms at 150 GB/s
        let rec = d.transfer(bytes).unwrap();
        assert!(!rec.degraded);
        let expected_t = d.spec().link.transfer_time_s(bytes, 1.0);
        assert_eq!(rec.time_s, expected_t);
        assert_eq!(d.clock_s(), rec.time_s);
        assert_eq!(d.energy_counter_j(), rec.energy_j);
        // Power sits between the idle floor and idle + full memory power.
        let p = rec.energy_j / rec.time_s;
        assert!(p > d.spec().idle_power_w);
        assert!(p < d.spec().idle_power_w + d.spec().mem_power_w);
        assert_eq!(d.trace().events().len(), 1);
        assert_eq!(d.trace().events()[0].work_items, bytes);
    }

    #[test]
    fn low_mem_clock_cheapens_transfers() {
        let mut top = Device::new(DeviceSpec::v100());
        let mut low = Device::new(DeviceSpec::v100());
        let floor = low.spec().mem_freqs.min();
        low.set_mem_mhz(floor).unwrap();
        let a = top.transfer(64_000_000).unwrap();
        let b = low.transfer(64_000_000).unwrap();
        assert_eq!(a.time_s, b.time_s, "link speed is mem-clock independent");
        assert!(b.energy_j < a.energy_j, "mem down-clock cheapens the DMA");
    }

    #[test]
    fn degraded_link_stretches_transfer_and_lost_link_moves_nothing() {
        let plan = FaultPlan::none()
            .degrade_link(Schedule::once(1), 0.25)
            .fail_link(Schedule::once(2));
        let mut d = Device::with_faults(DeviceSpec::v100(), plan);
        let clean = d.transfer(150_000_000).unwrap();
        let slow = d.transfer(150_000_000).unwrap();
        assert!(slow.degraded);
        assert!(
            slow.time_s > 3.0 * clean.time_s,
            "quarter bandwidth ≈ 4× the streaming time"
        );
        let before = (d.clock_s(), d.energy_counter_j());
        let err = d.transfer(150_000_000).unwrap_err();
        assert_eq!(err, FaultError::LinkLost);
        assert_eq!(
            (d.clock_s(), d.energy_counter_j()),
            before,
            "a lost link moves no counter"
        );
    }

    #[test]
    fn faulty_batch_stops_at_first_failure() {
        let plan = FaultPlan::none().fail_launches(Schedule::once(2));
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let mut d = Device::with_faults(DeviceSpec::v100(), plan);
        let mut seen = 0;
        let err = d
            .launch_batch(&k, 900.0, 5, &mut |_, _| seen += 1)
            .unwrap_err();
        assert!(matches!(err, FaultError::LaunchFailed { .. }));
        assert_eq!(seen, 2, "sink observed the completed launches");
    }
}
