//! Roofline execution-time model with occupancy effects.
//!
//! A kernel's duration is modelled as
//!
//! ```text
//! T = overhead + pipeline_depth / f + max(T_comp, T_mem)
//!               + overlap_penalty · min(T_comp, T_mem)
//! ```
//!
//! where `T_comp` scales with 1/f_core and the achieved compute throughput
//! (degraded at low occupancy), and `T_mem` depends only on the memory
//! subsystem (degraded when too few threads are in flight to saturate DRAM).
//!
//! These are the mechanics behind every observation in §2–3 of the paper:
//!
//! * memory-bound kernels (`T_mem > T_comp` at the default clock) keep their
//!   duration nearly flat as the core clock drops — until the compute roof
//!   crosses the memory roof;
//! * compute-bound kernels scale ∝ 1/f over the whole range;
//! * small launches sit on the `overhead + depth/f` floor with low
//!   utilization, which moves the crossover point — making the
//!   energy-optimal frequency depend on the *input*.

use serde::{Deserialize, Serialize};

use crate::kernel::KernelProfile;
use crate::spec::DeviceSpec;

/// Timing breakdown of a single kernel launch at a fixed frequency pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// Total wall-clock duration (s).
    pub total_s: f64,
    /// Compute-roof time (s).
    pub comp_s: f64,
    /// Memory-roof time (s).
    pub mem_s: f64,
    /// Fixed overhead + pipeline latency (s).
    pub overhead_s: f64,
    /// Compute-pipe activity during the kernel body, in `[0, 1]`:
    /// the fraction of body time the compute units are busy.
    pub comp_activity: f64,
    /// Memory-system activity during the kernel body, in `[0, 1]`.
    pub mem_activity: f64,
    /// Achieved occupancy (resident-thread utilization), in `[0, 1]`.
    pub occupancy: f64,
}

/// Saturating utilization curve: `x / (x + half)`, where `x` is the load
/// relative to capacity. Reaches 0.5 at `x = half`, → 1 as `x → ∞`.
fn saturate(x: f64, half: f64) -> f64 {
    debug_assert!(x >= 0.0 && half > 0.0);
    x / (x + half)
}

/// Power occupancy of a launch: how much of the chip the launch lights up
/// (1.0 = the power plateau). Measured GPU power rises roughly with the
/// *logarithm* of the launch size between "one warp" and "every SM full":
/// scheduling spreads blocks across SMs first (waking clock trees fast),
/// then additional warps per SM add progressively less switching. We model
/// that directly: 0 below ~50 threads, then logarithmic up to 64× the
/// power-saturation pool.
pub fn occupancy(spec: &DeviceSpec, work_items: u64) -> f64 {
    let n = work_items as f64;
    let n0 = 50.0;
    let n1 = spec.power_saturation_threads();
    if n <= n0 {
        return 0.0;
    }
    ((n / n0).ln() / (n1 / n0).ln()).min(1.0)
}

/// Computes the timing breakdown for `kernel` at `core_mhz` / `mem_mhz`.
///
/// `mem_mhz` scales bandwidth relative to the device's top memory frequency
/// (the V100 has a single memory frequency, so this is a no-op there).
pub fn kernel_timing(
    spec: &DeviceSpec,
    kernel: &KernelProfile,
    core_mhz: f64,
    mem_mhz: f64,
) -> TimingBreakdown {
    assert!(
        core_mhz > 0.0 && mem_mhz > 0.0,
        "frequencies must be positive"
    );
    let n = kernel.work_items as f64;
    let f_hz = core_mhz * 1e6;

    // --- Compute roof -----------------------------------------------------
    // Issue-cycles per item divided over all lanes, degraded by how well the
    // launch can keep the lanes fed (half-speed at 6 % of resident
    // capacity). Compute and memory share the saturation curve: once a
    // launch saturates the device, its *normalized* speedup/energy curves
    // stop moving with input size — the convergence the paper's
    // leave-one-out validation relies on — while under-filled launches stay
    // latency- and overhead-dominated.
    let resident = spec.saturation_threads();
    let comp_util = saturate(n / resident, 0.06);
    let lane_throughput = spec.total_lanes() * spec.ilp * kernel.ilp_efficiency * comp_util;
    let comp_s = n * kernel.mix.issue_cycles() / (lane_throughput * f_hz);

    // --- Memory roof -------------------------------------------------------
    // Bandwidth scales with the memory clock relative to its maximum.
    let mem_scale = mem_mhz / spec.mem_freqs.max();
    let mem_util = saturate(n / resident, 0.06);
    let bw = spec.mem_bandwidth_gbs * 1e9 * mem_scale * mem_util;
    let bytes = kernel.total_global_bytes();
    let mem_s = if bytes > 0.0 { bytes / bw } else { 0.0 };

    // --- Fixed costs --------------------------------------------------------
    let overhead_s = spec.launch_overhead_s + spec.pipeline_depth_cycles / f_hz;

    // --- Roofline composition ----------------------------------------------
    let body = comp_s.max(mem_s) + spec.overlap_penalty * comp_s.min(mem_s);
    let total_s = overhead_s + body;

    // Activities: what fraction of the body each subsystem is busy for.
    // Guard against a zero-length body (can't happen for valid kernels, but
    // keeps the math total).
    let (comp_activity, mem_activity) = if body > 0.0 {
        ((comp_s / body).min(1.0), (mem_s / body).min(1.0))
    } else {
        (0.0, 0.0)
    };

    TimingBreakdown {
        total_s,
        comp_s,
        mem_s,
        overhead_s,
        comp_activity,
        mem_activity,
        occupancy: occupancy(spec, kernel.work_items),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelProfile;
    use crate::spec::DeviceSpec;

    fn v100() -> DeviceSpec {
        DeviceSpec::v100()
    }

    #[test]
    fn compute_bound_scales_inversely_with_core_clock() {
        let spec = v100();
        let k = KernelProfile::compute_bound("cb", 10_000_000, 2000.0);
        let t_lo = kernel_timing(&spec, &k, 800.0, 1107.0).total_s;
        let t_hi = kernel_timing(&spec, &k, 1600.0, 1107.0).total_s;
        let ratio = t_lo / t_hi;
        assert!(
            (ratio - 2.0).abs() < 0.1,
            "compute-bound time should halve when f doubles, ratio={ratio}"
        );
    }

    #[test]
    fn memory_bound_flat_under_downclock() {
        let spec = v100();
        let k = KernelProfile::memory_bound("mb", 50_000_000, 64.0);
        let t_def = kernel_timing(&spec, &k, 1312.0, 1107.0).total_s;
        let t_lo = kernel_timing(&spec, &k, 1000.0, 1107.0).total_s;
        let slowdown = t_lo / t_def;
        assert!(
            slowdown < 1.05,
            "memory-bound kernel should barely slow down, got {slowdown}"
        );
    }

    #[test]
    fn memory_bound_eventually_becomes_compute_bound() {
        // A stencil-like kernel with moderate arithmetic intensity
        // (~3 issue-cycles per DRAM byte): memory-bound at the default
        // clock, but the compute roof crosses over near 300 MHz.
        let spec = v100();
        let k = KernelProfile::new(
            "stencil",
            50_000_000,
            crate::kernel::OpMix {
                float_add: 100.0,
                float_mul: 85.0,
                global_access: 16.0,
                ..Default::default()
            },
        );
        let at_default = kernel_timing(&spec, &k, 1312.0, 1107.0);
        assert!(
            at_default.mem_s > at_default.comp_s,
            "must be memory-bound at the default clock"
        );
        let t_min = kernel_timing(&spec, &k, spec.min_core_mhz(), 1107.0).total_s;
        assert!(
            t_min / at_default.total_s > 1.3,
            "at 135 MHz the same kernel is compute-limited"
        );
    }

    #[test]
    fn time_monotone_nonincreasing_in_frequency() {
        let spec = v100();
        for k in [
            KernelProfile::compute_bound("cb", 1_000_000, 100.0),
            KernelProfile::memory_bound("mb", 1_000_000, 32.0),
            KernelProfile::compute_bound("tiny", 640, 50.0),
        ] {
            let mut prev = f64::INFINITY;
            for f in spec.core_freqs.iter() {
                let t = kernel_timing(&spec, &k, f, 1107.0).total_s;
                assert!(
                    t <= prev * (1.0 + 1e-12),
                    "raising f must never slow a kernel down ({})",
                    k.name
                );
                prev = t;
            }
        }
    }

    #[test]
    fn small_launch_dominated_by_overhead() {
        let spec = v100();
        let k = KernelProfile::compute_bound("tiny", 64, 10.0);
        let t = kernel_timing(&spec, &k, 1312.0, 1107.0);
        assert!(
            t.overhead_s / t.total_s > 0.5,
            "a 64-thread launch should be overhead-dominated"
        );
    }

    #[test]
    fn occupancy_saturates_at_one() {
        let spec = v100();
        assert!(occupancy(&spec, u64::MAX / 2) <= 1.0);
        assert_eq!(occupancy(&spec, 1), 0.0, "sub-warp launches are noise");
        assert!(occupancy(&spec, 500) > 0.0);
        let full = spec.power_saturation_threads() as u64;
        assert!((occupancy(&spec, full) - 1.0).abs() < 1e-9);
        // The rise is logarithmic: equal multiplicative steps in size give
        // equal additive steps in occupancy (below the plateau).
        let a = occupancy(&spec, 200);
        let b = occupancy(&spec, 800);
        let c = occupancy(&spec, 3_200);
        assert!((2.0 * b - a - c).abs() < 1e-9);
    }

    #[test]
    fn activities_within_unit_interval() {
        let spec = v100();
        let k = KernelProfile::memory_bound("mb", 123_456, 48.0);
        let t = kernel_timing(&spec, &k, 700.0, 1107.0);
        assert!((0.0..=1.0).contains(&t.comp_activity));
        assert!((0.0..=1.0).contains(&t.mem_activity));
    }

    #[test]
    fn larger_launches_take_longer() {
        let spec = v100();
        let small = KernelProfile::compute_bound("s", 1_000_000, 100.0);
        let big = KernelProfile::compute_bound("b", 4_000_000, 100.0);
        let ts = kernel_timing(&spec, &small, 1312.0, 1107.0).total_s;
        let tb = kernel_timing(&spec, &big, 1312.0, 1107.0).total_s;
        assert!(tb > ts);
    }
}
