//! ROCm-SMI-like management API.
//!
//! Mirrors the subset of the ROCm System Management Interface the paper's
//! pipeline needs. The crucial semantic difference from NVML (called out in
//! §3.1 of the paper) is that AMD GPUs have **no default fixed clock**:
//! the stock configuration is the *auto* performance level, a DVFS governor
//! that picks clocks dynamically. The paper uses the auto level as the AMD
//! baseline for speedup/normalized-energy. We model the governor as
//! converging, under sustained load, to the spec's `default_core_mhz`
//! (near the top of the range, matching the paper's observation that auto
//! sits close to the best achievable speedup).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::device::{Device, LaunchRecord};
use crate::faults::FaultError;
use crate::kernel::KernelProfile;
use crate::spec::{DeviceSpec, Vendor};

/// `rsmi_dev_perf_level_t` analogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfLevel {
    /// The DVFS governor chooses clocks (stock configuration).
    Auto,
    /// Pin to the lowest supported clock.
    Low,
    /// Pin to the highest supported clock.
    High,
    /// Clocks pinned by `set_clk_freq`.
    Manual,
}

/// ROCm-SMI-style error codes.
#[derive(Debug, Clone, PartialEq)]
pub enum RsmiError {
    /// Device index out of range.
    InvalidIndex(usize),
    /// The device is not an AMD GPU.
    NotSupported(String),
    /// Manual clock selection outside the supported range.
    InvalidFrequency(f64),
    /// The SMU rejected the request because the device was busy
    /// (`RSMI_STATUS_BUSY`); the previous clock configuration is kept.
    Busy { requested_mhz: f64 },
    /// An unexpected device-side failure (`RSMI_STATUS_UNKNOWN_ERROR`);
    /// the launch did not execute.
    UnknownError(String),
    /// An xGMI link failed to retrain; the transfer did not complete and
    /// the link stays down.
    LinkLost,
}

impl std::fmt::Display for RsmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsmiError::InvalidIndex(i) => write!(f, "invalid device index {i}"),
            RsmiError::NotSupported(n) => write!(f, "device '{n}' is not managed by ROCm-SMI"),
            RsmiError::InvalidFrequency(mhz) => write!(f, "invalid frequency {mhz} MHz"),
            RsmiError::Busy { requested_mhz } => {
                write!(f, "device busy, clock request {requested_mhz} MHz dropped")
            }
            RsmiError::UnknownError(kernel) => {
                write!(f, "unknown device error (launching '{kernel}')")
            }
            RsmiError::LinkLost => write!(f, "xGMI link retrain failed, link down"),
        }
    }
}

impl std::error::Error for RsmiError {}

impl From<FaultError> for RsmiError {
    fn from(e: FaultError) -> Self {
        match e {
            FaultError::FrequencyRejected { requested_mhz } => RsmiError::Busy { requested_mhz },
            FaultError::LaunchFailed { kernel } => RsmiError::UnknownError(kernel),
            FaultError::LinkLost => RsmiError::LinkLost,
        }
    }
}

/// The ROCm-SMI library handle (`rsmi_init` analogue).
#[derive(Debug, Clone, Default)]
pub struct RocmSmi {
    devices: Vec<Arc<Mutex<Device>>>,
}

impl RocmSmi {
    /// Initializes ROCm-SMI over a set of simulated devices.
    pub fn init(devices: Vec<Device>) -> Self {
        RocmSmi {
            devices: devices
                .into_iter()
                .map(|d| Arc::new(Mutex::new(d)))
                .collect(),
        }
    }

    /// Initializes over shared device handles.
    pub fn init_shared(devices: Vec<Arc<Mutex<Device>>>) -> Self {
        RocmSmi { devices }
    }

    /// `rsmi_num_monitor_devices`.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Returns a managed handle for device `index`.
    pub fn device_by_index(&self, index: usize) -> Result<RocmDevice, RsmiError> {
        let handle = self
            .devices
            .get(index)
            .ok_or(RsmiError::InvalidIndex(index))?
            .clone();
        let vendor = handle.lock().spec().vendor;
        if vendor != Vendor::Amd {
            let name = handle.lock().spec().name.clone();
            return Err(RsmiError::NotSupported(name));
        }
        Ok(RocmDevice {
            inner: handle,
            perf_level: PerfLevel::Auto,
        })
    }
}

/// A handle to one ROCm-SMI-managed device.
#[derive(Debug, Clone)]
pub struct RocmDevice {
    inner: Arc<Mutex<Device>>,
    perf_level: PerfLevel,
}

impl RocmDevice {
    /// Creates a standalone handle over a fresh MI100 at the auto level.
    pub fn mi100() -> Self {
        RocmDevice {
            inner: Arc::new(Mutex::new(Device::new(DeviceSpec::mi100()))),
            perf_level: PerfLevel::Auto,
        }
    }

    /// Wraps a shared device (caller guarantees it is an AMD device).
    pub fn from_shared(inner: Arc<Mutex<Device>>) -> Self {
        RocmDevice {
            inner,
            perf_level: PerfLevel::Auto,
        }
    }

    /// The underlying shared device handle.
    pub fn shared(&self) -> Arc<Mutex<Device>> {
        self.inner.clone()
    }

    /// Locks the underlying device without cloning the shared handle (the
    /// batch-launch hot path takes this once per batch).
    pub fn lock_device(&self) -> parking_lot::MutexGuard<'_, Device> {
        self.inner.lock()
    }

    /// `rsmi_dev_name_get`.
    pub fn name(&self) -> String {
        self.inner.lock().spec().name.clone()
    }

    /// Current performance level.
    pub fn perf_level(&self) -> PerfLevel {
        self.perf_level
    }

    /// `rsmi_dev_perf_level_set`. Switching to `Low`/`High` pins the clock;
    /// `Auto` hands control back to the governor. On [`RsmiError::Busy`]
    /// the level (and the clock) stay unchanged.
    pub fn set_perf_level(&mut self, level: PerfLevel) -> Result<(), RsmiError> {
        {
            let mut dev = self.inner.lock();
            match level {
                PerfLevel::Low => {
                    let f = dev.spec().min_core_mhz();
                    dev.set_core_mhz(f)?;
                }
                PerfLevel::High => {
                    let f = dev.spec().max_core_mhz();
                    dev.set_core_mhz(f)?;
                }
                PerfLevel::Auto | PerfLevel::Manual => {}
            }
        }
        self.perf_level = level;
        Ok(())
    }

    /// `rsmi_dev_gpu_clk_freq_get(RSMI_CLK_TYPE_SYS)` — supported core
    /// frequencies.
    pub fn supported_core_clocks(&self) -> Vec<f64> {
        self.inner.lock().spec().core_freqs.as_slice().to_vec()
    }

    /// `rsmi_dev_gpu_clk_freq_set` analogue: pins the core clock (switching
    /// to the `Manual` level) and returns the frequency actually applied.
    pub fn set_clk_freq(&mut self, core_mhz: f64) -> Result<f64, RsmiError> {
        if !core_mhz.is_finite() || core_mhz <= 0.0 {
            return Err(RsmiError::InvalidFrequency(core_mhz));
        }
        let applied = self.inner.lock().set_core_mhz(core_mhz)?;
        self.perf_level = PerfLevel::Manual;
        Ok(applied)
    }

    /// `rsmi_dev_gpu_clk_freq_get(RSMI_CLK_TYPE_MEM)` — supported memory
    /// frequencies.
    pub fn supported_mem_clocks(&self) -> Vec<f64> {
        self.inner.lock().spec().mem_freqs.as_slice().to_vec()
    }

    /// `rsmi_dev_gpu_clk_freq_set(RSMI_CLK_TYPE_MEM)` analogue: pins the
    /// memory clock and returns the frequency actually applied. Does not
    /// disturb the core performance level.
    pub fn set_mem_clk_freq(&mut self, mem_mhz: f64) -> Result<f64, RsmiError> {
        if !mem_mhz.is_finite() || mem_mhz <= 0.0 {
            return Err(RsmiError::InvalidFrequency(mem_mhz));
        }
        self.inner
            .lock()
            .set_mem_mhz(mem_mhz)
            .map_err(RsmiError::from)
    }

    /// `rsmi_dev_power_cap_set` analogue — sets (or clears, with `None`)
    /// the operator power cap in watts (real ROCm-SMI speaks microwatts;
    /// the simulator keeps watts everywhere).
    pub fn set_power_cap_w(&mut self, cap_w: Option<f64>) -> Result<Option<f64>, RsmiError> {
        self.inner
            .lock()
            .set_power_cap_w(cap_w)
            .map_err(RsmiError::from)
    }

    /// `rsmi_dev_power_cap_get` analogue — current cap in watts.
    pub fn power_cap_w(&self) -> Option<f64> {
        self.inner.lock().power_cap_w()
    }

    /// Current core clock (MHz). Under `Auto`, reports the frequency the
    /// governor would run a loaded kernel at.
    pub fn current_clk_freq(&self) -> f64 {
        let dev = self.inner.lock();
        match self.perf_level {
            PerfLevel::Auto => dev.spec().default_core_mhz,
            _ => dev.core_mhz(),
        }
    }

    /// `rsmi_dev_power_ave_get` — average power in **microwatts**.
    pub fn power_ave_uw(&self) -> u64 {
        (self.inner.lock().power_usage_w() * 1e6).round() as u64
    }

    /// Cumulative energy counter in **microjoules**
    /// (`rsmi_dev_energy_count_get`).
    pub fn energy_count_uj(&self) -> u64 {
        (self.inner.lock().energy_counter_j() * 1e6).round() as u64
    }

    /// Executes a kernel under the current performance level. Under `Auto`
    /// the governor picks the clock for the launch (sustained-load
    /// convergence frequency); under `Low`/`High`/`Manual` the pinned clock
    /// is used.
    pub fn launch(&self, kernel: &KernelProfile) -> Result<LaunchRecord, RsmiError> {
        let mut dev = self.inner.lock();
        let res = match self.perf_level {
            PerfLevel::Auto => {
                let f = dev.spec().default_core_mhz;
                dev.launch_at(kernel, f)
            }
            _ => dev.launch(kernel),
        };
        res.map_err(RsmiError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    #[test]
    fn enumerates_and_rejects_nvidia() {
        let smi = RocmSmi::init(vec![
            Device::new(DeviceSpec::mi100()),
            Device::new(DeviceSpec::v100()),
        ]);
        assert_eq!(smi.device_count(), 2);
        assert!(smi.device_by_index(0).is_ok());
        assert!(matches!(
            smi.device_by_index(1),
            Err(RsmiError::NotSupported(_))
        ));
        assert!(matches!(
            smi.device_by_index(5),
            Err(RsmiError::InvalidIndex(5))
        ));
    }

    #[test]
    fn default_level_is_auto() {
        let dev = RocmDevice::mi100();
        assert_eq!(dev.perf_level(), PerfLevel::Auto);
        // Under auto the reported clock is the governor's convergence point.
        assert_eq!(dev.current_clk_freq(), 1450.0);
    }

    #[test]
    fn manual_pin_snaps() {
        let mut dev = RocmDevice::mi100();
        let applied = dev.set_clk_freq(777.0).unwrap();
        assert_eq!(dev.perf_level(), PerfLevel::Manual);
        assert_eq!(dev.current_clk_freq(), applied);
        assert!(dev.set_clk_freq(f64::NAN).is_err());
        assert!(dev.set_clk_freq(-3.0).is_err());
    }

    #[test]
    fn low_high_pin_extremes() {
        let mut dev = RocmDevice::mi100();
        dev.set_perf_level(PerfLevel::Low).unwrap();
        assert_eq!(dev.current_clk_freq(), 300.0);
        dev.set_perf_level(PerfLevel::High).unwrap();
        assert_eq!(dev.current_clk_freq(), 1500.0);
    }

    #[test]
    fn auto_launch_uses_governor_frequency() {
        let dev = RocmDevice::mi100();
        let k = KernelProfile::compute_bound("k", 10_000_000, 100.0);
        let rec = dev.launch(&k).unwrap();
        assert_eq!(rec.core_mhz, 1450.0);
    }

    #[test]
    fn auto_beats_low_on_speed() {
        let k = KernelProfile::compute_bound("k", 50_000_000, 200.0);
        let auto_dev = RocmDevice::mi100();
        let t_auto = auto_dev.launch(&k).unwrap().time_s;
        let mut low_dev = RocmDevice::mi100();
        low_dev.set_perf_level(PerfLevel::Low).unwrap();
        let t_low = low_dev.launch(&k).unwrap().time_s;
        assert!(t_auto < t_low);
    }

    #[test]
    fn mem_clock_and_power_cap_round_trip() {
        let mut dev = RocmDevice::mi100();
        assert_eq!(dev.supported_mem_clocks(), vec![800.0, 1000.0, 1200.0]);
        let applied = dev.set_mem_clk_freq(950.0).unwrap();
        assert_eq!(applied, 1000.0, "snaps to the supported table");
        assert_eq!(dev.perf_level(), PerfLevel::Auto, "core level untouched");
        assert!(dev.set_mem_clk_freq(f64::NAN).is_err());
        assert_eq!(dev.set_power_cap_w(Some(220.0)).unwrap(), Some(220.0));
        assert_eq!(dev.power_cap_w(), Some(220.0));
        assert_eq!(dev.set_power_cap_w(None).unwrap(), None);
    }

    #[test]
    fn energy_counter_microjoules() {
        let dev = RocmDevice::mi100();
        let k = KernelProfile::memory_bound("k", 10_000_000, 64.0);
        let rec = dev.launch(&k).unwrap();
        let uj = dev.energy_count_uj();
        assert!((uj as f64 - rec.energy_j * 1e6).abs() <= 1.0);
    }

    #[test]
    fn busy_keeps_perf_level_and_clock() {
        use crate::faults::{FaultPlan, Schedule};
        let plan = FaultPlan::none().reject_set_frequency(Schedule::once(0));
        let mut dev = RocmDevice::from_shared(Arc::new(Mutex::new(Device::with_faults(
            DeviceSpec::mi100(),
            plan,
        ))));
        let clk_before = dev.lock_device().core_mhz();
        match dev.set_perf_level(PerfLevel::Low) {
            Err(RsmiError::Busy { .. }) => {}
            other => panic!("expected Busy, got {other:?}"),
        }
        assert_eq!(dev.perf_level(), PerfLevel::Auto, "level unchanged on Busy");
        assert_eq!(dev.lock_device().core_mhz(), clk_before);
        // Retry goes through and the level sticks.
        dev.set_perf_level(PerfLevel::Low).unwrap();
        assert_eq!(dev.perf_level(), PerfLevel::Low);
    }
}
