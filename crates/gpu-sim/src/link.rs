//! Peer-to-peer interconnect link model.
//!
//! Domain-decomposed solvers exchange halo planes between devices every
//! substep; the cost of those transfers is what turns "more devices" from a
//! free lunch into an energy trade-off. A [`LinkSpec`] describes the
//! per-device interconnect port with the two numbers a bandwidth-latency
//! (alpha-beta) model needs:
//!
//! * **peak bandwidth** (GB/s) — the beta term; a message of `b` bytes
//!   streams for `b / peak` seconds,
//! * **per-message latency** (s) — the alpha term; protocol, routing and
//!   DMA-descriptor setup paid once per message regardless of size.
//!
//! The energy of a transfer flows through the *memory* power path of
//! [`crate::power`]: a DMA engine reads/writes DRAM on both endpoints while
//! the compute pipes idle, so the power during a transfer is the idle floor
//! plus the memory subsystem at the utilization the link can actually
//! sustain. Down-clocking memory therefore cheapens halo exchange exactly
//! like it cheapens a streaming kernel — which is what lets the lattice
//! sweep price communication and computation in one currency.
//!
//! Defaults are NVLink2-class, so device specs serialized before this field
//! existed deserialize to the bandwidth class of the paper's pinned V100s.

use serde::{Deserialize, Serialize};

use crate::power::MEM_FLOOR_CLOCK_SENSITIVITY;
use crate::spec::DeviceSpec;

/// Static description of a device's peer-to-peer interconnect port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Peak unidirectional link bandwidth (GB/s).
    pub peak_gbs: f64,
    /// Fixed per-message latency (seconds).
    pub latency_s: f64,
}

impl LinkSpec {
    /// NVLink 2.0 port bundle of an SXM2 V100: six 25 GB/s sub-links,
    /// 150 GB/s per direction, ~1.3 µs end-to-end message latency.
    pub fn nvlink2() -> Self {
        LinkSpec {
            peak_gbs: 150.0,
            latency_s: 1.3e-6,
        }
    }

    /// Infinity Fabric (xGMI) bridge of an MI100 hive: ~100 GB/s per
    /// direction across the 3-link bridge, slightly higher latency.
    pub fn xgmi() -> Self {
        LinkSpec {
            peak_gbs: 100.0,
            latency_s: 1.5e-6,
        }
    }

    /// Xe-Link port of a Max-series (Ponte Vecchio) part: ~106 GB/s per
    /// direction.
    pub fn xelink() -> Self {
        LinkSpec {
            peak_gbs: 106.0,
            latency_s: 1.5e-6,
        }
    }

    /// Time to move `bytes` over this link at `bandwidth_factor` of its
    /// nominal peak (1.0 = healthy link; a degraded link retrains to a
    /// fraction of its lane width).
    pub fn transfer_time_s(&self, bytes: u64, bandwidth_factor: f64) -> f64 {
        self.latency_s + bytes as f64 / (self.peak_gbs * 1e9 * bandwidth_factor)
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::nvlink2()
    }
}

/// Board power while a DMA transfer is in flight, at memory clock
/// `mem_mhz` and achieved DRAM-bandwidth utilization `util` ∈ [0, 1].
///
/// Same memory-activity shape as [`crate::power::kernel_power`]: the
/// always-on floor scales weakly with the memory clock
/// ([`MEM_FLOOR_CLOCK_SENSITIVITY`]), the dynamic part scales with
/// utilization and clock. The compute domain contributes only its idle
/// floor — the SMs are stalled, not gated off.
pub fn transfer_power_w(spec: &DeviceSpec, mem_mhz: f64, util: f64) -> f64 {
    let s = mem_mhz / spec.mem_freqs.max();
    let floor_scale = 1.0 - MEM_FLOOR_CLOCK_SENSITIVITY * (1.0 - s);
    let mf = spec.mem_power_floor;
    let mem_activity = mf * floor_scale + (1.0 - mf) * util.clamp(0.0, 1.0) * s;
    spec.idle_power_w + spec.mem_power_w * mem_activity
}

/// One completed interconnect transfer, as measured on the device clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferRecord {
    /// Bytes moved.
    pub bytes: u64,
    /// Wall time of the transfer (s).
    pub time_s: f64,
    /// Energy charged to this device for the transfer (J).
    pub energy_j: f64,
    /// Whether a link-degradation fault slowed this transfer.
    pub degraded: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_nvlink2_class() {
        assert_eq!(LinkSpec::default(), LinkSpec::nvlink2());
        assert!(LinkSpec::nvlink2().peak_gbs > LinkSpec::xgmi().peak_gbs);
    }

    #[test]
    fn transfer_time_is_alpha_beta() {
        let l = LinkSpec::nvlink2();
        let small = l.transfer_time_s(0, 1.0);
        assert_eq!(small, l.latency_s, "zero bytes pay only latency");
        let big = l.transfer_time_s(150_000_000_000, 1.0);
        assert!((big - (l.latency_s + 1.0)).abs() < 1e-12, "150 GB ≈ 1 s");
        // Degradation stretches only the bandwidth term.
        let degraded = l.transfer_time_s(150_000_000_000, 0.5);
        assert!((degraded - (l.latency_s + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn transfer_power_scales_with_utilization_and_mem_clock() {
        let spec = DeviceSpec::v100();
        let top = spec.mem_freqs.max();
        let idle_link = transfer_power_w(&spec, top, 0.0);
        let busy_link = transfer_power_w(&spec, top, 1.0);
        assert!(busy_link > idle_link, "utilization must cost power");
        assert!(
            busy_link <= spec.idle_power_w + spec.mem_power_w + 1e-9,
            "transfer power is bounded by idle + full memory subsystem"
        );
        // A lower memory clock cheapens the same transfer.
        let low = transfer_power_w(&spec, spec.mem_freqs.min(), 1.0);
        assert!(low < busy_link);
    }
}
