//! Frequency tables.
//!
//! Real GPUs expose a discrete set of supported clock frequencies (the V100
//! reports 196 graphics clocks through `nvmlDeviceGetSupportedGraphicsClocks`).
//! [`FrequencyTable`] models that set: an ascending, deduplicated list of
//! frequencies in MHz with nearest-neighbour snapping, which is exactly what
//! the driver does when asked for an unsupported clock.

use serde::{Deserialize, Serialize};

/// An ascending table of supported frequencies in MHz.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyTable {
    freqs: Vec<f64>,
}

impl FrequencyTable {
    /// Builds a table from arbitrary frequencies; sorts ascending and
    /// removes duplicates (within 1 kHz).
    ///
    /// # Panics
    /// Panics if `freqs` is empty or contains a non-finite or non-positive
    /// frequency — a device with no valid clocks is a programming error.
    pub fn new(mut freqs: Vec<f64>) -> Self {
        assert!(!freqs.is_empty(), "frequency table must not be empty");
        assert!(
            freqs.iter().all(|f| f.is_finite() && *f > 0.0),
            "frequencies must be finite and positive"
        );
        freqs.sort_by(f64::total_cmp);
        // Dedup against the last *retained* frequency, never the previous
        // raw element: a chain of near-duplicates each within 1 kHz of its
        // neighbour must not transitively collapse entries that are farther
        // than 1 kHz apart. Retained entries are therefore always ≥ 1 kHz
        // from each other, which is what makes `snap_index` exact.
        let mut deduped: Vec<f64> = Vec::with_capacity(freqs.len());
        for f in freqs {
            match deduped.last() {
                Some(&kept) if (f - kept).abs() < 1e-3 => {}
                _ => deduped.push(f),
            }
        }
        FrequencyTable { freqs: deduped }
    }

    /// Builds `n` evenly spaced frequencies over `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `n < 2` or `lo >= hi`.
    pub fn linspace(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 2, "linspace needs at least two points");
        assert!(lo < hi, "lo must be < hi");
        let step = (hi - lo) / (n as f64 - 1.0);
        let freqs = (0..n).map(|i| lo + step * i as f64).collect();
        FrequencyTable::new(freqs)
    }

    /// Number of supported frequencies.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// True when the table is empty (never, by construction, but kept for
    /// API completeness / clippy's `len_without_is_empty`).
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Lowest supported frequency (MHz).
    pub fn min(&self) -> f64 {
        self.freqs[0]
    }

    /// Highest supported frequency (MHz).
    pub fn max(&self) -> f64 {
        *self.freqs.last().expect("non-empty")
    }

    /// All supported frequencies, ascending.
    pub fn as_slice(&self) -> &[f64] {
        &self.freqs
    }

    /// Iterator over supported frequencies, ascending.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.freqs.iter().copied()
    }

    /// Snaps `mhz` to the nearest supported frequency, like the driver does.
    /// Always equal to `self.as_slice()[self.snap_index(mhz)]` — `snap` and
    /// `snap_index` share one nearest-neighbour search, so they can never
    /// disagree about which table entry a request lands on.
    pub fn snap(&self, mhz: f64) -> f64 {
        self.freqs[self.snap_index(mhz)]
    }

    /// Index of the nearest supported frequency. This is the primitive
    /// `snap` is defined in terms of (it used to re-locate the snapped
    /// value with a 1e-9 tolerance scan, a different tolerance than the
    /// 1 kHz the table itself is deduplicated with).
    pub fn snap_index(&self, mhz: f64) -> usize {
        self.freqs
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| (*a - mhz).abs().total_cmp(&(*b - mhz).abs()))
            .map(|(i, _)| i)
            .expect("non-empty")
    }

    /// Whether `mhz` is (within 1 kHz of) a supported frequency.
    pub fn contains(&self, mhz: f64) -> bool {
        self.freqs.iter().any(|f| (*f - mhz).abs() < 1e-3)
    }

    /// Returns every `stride`-th frequency (ascending), always including the
    /// highest one. Used by sweep drivers to thin very dense tables.
    ///
    /// # Panics
    /// Panics if `stride == 0`.
    pub fn strided(&self, stride: usize) -> Vec<f64> {
        assert!(stride > 0, "stride must be positive");
        let mut out: Vec<f64> = self.freqs.iter().copied().step_by(stride).collect();
        let max = self.max();
        if out.last().map(|f| (*f - max).abs() > 1e-9).unwrap_or(true) {
            out.push(max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_count() {
        let t = FrequencyTable::linspace(135.0, 1597.0, 196);
        assert_eq!(t.len(), 196);
        assert!((t.min() - 135.0).abs() < 1e-12);
        assert!((t.max() - 1597.0).abs() < 1e-12);
    }

    #[test]
    fn new_sorts_and_dedups() {
        let t = FrequencyTable::new(vec![500.0, 100.0, 500.0, 300.0]);
        assert_eq!(t.as_slice(), &[100.0, 300.0, 500.0]);
    }

    #[test]
    fn snap_picks_nearest() {
        let t = FrequencyTable::new(vec![100.0, 200.0, 300.0]);
        assert_eq!(t.snap(149.0), 100.0);
        assert_eq!(t.snap(151.0), 200.0);
        assert_eq!(t.snap(1000.0), 300.0);
        assert_eq!(t.snap(-5.0), 100.0);
    }

    #[test]
    fn snap_index_roundtrips() {
        let t = FrequencyTable::linspace(135.0, 1597.0, 196);
        for (i, f) in t.iter().enumerate() {
            assert_eq!(t.snap_index(f), i);
        }
    }

    #[test]
    fn neighbour_chain_does_not_collapse_distant_points() {
        // Five entries, each 0.4 kHz from its neighbour: pairwise-adjacent
        // values are "duplicates", but the ends are 1.6 kHz apart and must
        // survive. Transitive dedup would collapse the whole chain to one.
        let t = FrequencyTable::new(vec![100.0, 100.0004, 100.0008, 100.0012, 100.0016]);
        assert!(t.len() >= 2, "chain ends are > 1 kHz apart: {:?}", t);
        assert!((t.min() - 100.0).abs() < 1e-12);
        assert!(t.max() - t.min() > 1e-3);
        // Every retained pair is at least the dedup tolerance apart.
        for w in t.as_slice().windows(2) {
            assert!(w[1] - w[0] >= 1e-3);
        }
    }

    proptest::proptest! {
        /// `snap` ∘ `snap_index` round-trips on arbitrary tables: every
        /// table entry snaps to itself (same index, same bits), and an
        /// arbitrary query snaps to the entry its index points at.
        #[test]
        fn snap_and_snap_index_agree(
            raw in proptest::collection::vec(1.0f64..5000.0, 1..40),
            query in -100.0f64..6000.0,
        ) {
            let t = FrequencyTable::new(raw);
            for (i, f) in t.iter().enumerate() {
                proptest::prop_assert_eq!(t.snap_index(f), i);
                proptest::prop_assert_eq!(t.snap(f).to_bits(), f.to_bits());
            }
            let i = t.snap_index(query);
            proptest::prop_assert_eq!(t.snap(query).to_bits(), t.as_slice()[i].to_bits());
        }
    }

    #[test]
    fn strided_includes_max() {
        let t = FrequencyTable::linspace(100.0, 1000.0, 10);
        let s = t.strided(4);
        assert!((s.last().unwrap() - 1000.0).abs() < 1e-9);
        assert!(s.len() < t.len());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_table_panics() {
        let _ = FrequencyTable::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn negative_frequency_panics() {
        let _ = FrequencyTable::new(vec![-1.0]);
    }
}
