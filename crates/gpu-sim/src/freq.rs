//! Frequency tables.
//!
//! Real GPUs expose a discrete set of supported clock frequencies (the V100
//! reports 196 graphics clocks through `nvmlDeviceGetSupportedGraphicsClocks`).
//! [`FrequencyTable`] models that set: an ascending, deduplicated list of
//! frequencies in MHz with nearest-neighbour snapping, which is exactly what
//! the driver does when asked for an unsupported clock.

use serde::{Deserialize, Serialize};

/// An ascending table of supported frequencies in MHz.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyTable {
    freqs: Vec<f64>,
}

impl FrequencyTable {
    /// Builds a table from arbitrary frequencies; sorts ascending and
    /// removes duplicates (within 1 kHz).
    ///
    /// # Panics
    /// Panics if `freqs` is empty or contains a non-finite or non-positive
    /// frequency — a device with no valid clocks is a programming error.
    pub fn new(mut freqs: Vec<f64>) -> Self {
        assert!(!freqs.is_empty(), "frequency table must not be empty");
        assert!(
            freqs.iter().all(|f| f.is_finite() && *f > 0.0),
            "frequencies must be finite and positive"
        );
        freqs.sort_by(f64::total_cmp);
        freqs.dedup_by(|a, b| (*a - *b).abs() < 1e-3);
        FrequencyTable { freqs }
    }

    /// Builds `n` evenly spaced frequencies over `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `n < 2` or `lo >= hi`.
    pub fn linspace(lo: f64, hi: f64, n: usize) -> Self {
        assert!(n >= 2, "linspace needs at least two points");
        assert!(lo < hi, "lo must be < hi");
        let step = (hi - lo) / (n as f64 - 1.0);
        let freqs = (0..n).map(|i| lo + step * i as f64).collect();
        FrequencyTable::new(freqs)
    }

    /// Number of supported frequencies.
    pub fn len(&self) -> usize {
        self.freqs.len()
    }

    /// True when the table is empty (never, by construction, but kept for
    /// API completeness / clippy's `len_without_is_empty`).
    pub fn is_empty(&self) -> bool {
        self.freqs.is_empty()
    }

    /// Lowest supported frequency (MHz).
    pub fn min(&self) -> f64 {
        self.freqs[0]
    }

    /// Highest supported frequency (MHz).
    pub fn max(&self) -> f64 {
        *self.freqs.last().expect("non-empty")
    }

    /// All supported frequencies, ascending.
    pub fn as_slice(&self) -> &[f64] {
        &self.freqs
    }

    /// Iterator over supported frequencies, ascending.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.freqs.iter().copied()
    }

    /// Snaps `mhz` to the nearest supported frequency, like the driver does.
    pub fn snap(&self, mhz: f64) -> f64 {
        self.freqs
            .iter()
            .copied()
            .min_by(|a, b| (a - mhz).abs().total_cmp(&(b - mhz).abs()))
            .expect("non-empty")
    }

    /// Index of the nearest supported frequency.
    pub fn snap_index(&self, mhz: f64) -> usize {
        let snapped = self.snap(mhz);
        self.freqs
            .iter()
            .position(|f| (*f - snapped).abs() < 1e-9)
            .expect("snapped frequency is in table")
    }

    /// Whether `mhz` is (within 1 kHz of) a supported frequency.
    pub fn contains(&self, mhz: f64) -> bool {
        self.freqs.iter().any(|f| (*f - mhz).abs() < 1e-3)
    }

    /// Returns every `stride`-th frequency (ascending), always including the
    /// highest one. Used by sweep drivers to thin very dense tables.
    ///
    /// # Panics
    /// Panics if `stride == 0`.
    pub fn strided(&self, stride: usize) -> Vec<f64> {
        assert!(stride > 0, "stride must be positive");
        let mut out: Vec<f64> = self.freqs.iter().copied().step_by(stride).collect();
        let max = self.max();
        if out.last().map(|f| (*f - max).abs() > 1e-9).unwrap_or(true) {
            out.push(max);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints_and_count() {
        let t = FrequencyTable::linspace(135.0, 1597.0, 196);
        assert_eq!(t.len(), 196);
        assert!((t.min() - 135.0).abs() < 1e-12);
        assert!((t.max() - 1597.0).abs() < 1e-12);
    }

    #[test]
    fn new_sorts_and_dedups() {
        let t = FrequencyTable::new(vec![500.0, 100.0, 500.0, 300.0]);
        assert_eq!(t.as_slice(), &[100.0, 300.0, 500.0]);
    }

    #[test]
    fn snap_picks_nearest() {
        let t = FrequencyTable::new(vec![100.0, 200.0, 300.0]);
        assert_eq!(t.snap(149.0), 100.0);
        assert_eq!(t.snap(151.0), 200.0);
        assert_eq!(t.snap(1000.0), 300.0);
        assert_eq!(t.snap(-5.0), 100.0);
    }

    #[test]
    fn snap_index_roundtrips() {
        let t = FrequencyTable::linspace(135.0, 1597.0, 196);
        for (i, f) in t.iter().enumerate() {
            assert_eq!(t.snap_index(f), i);
        }
    }

    #[test]
    fn strided_includes_max() {
        let t = FrequencyTable::linspace(100.0, 1000.0, 10);
        let s = t.strided(4);
        assert!((s.last().unwrap() - 1000.0).abs() < 1e-9);
        assert!(s.len() < t.len());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_table_panics() {
        let _ = FrequencyTable::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn negative_frequency_panics() {
        let _ = FrequencyTable::new(vec![-1.0]);
    }
}
