//! Static device descriptors.
//!
//! A [`DeviceSpec`] captures everything the timing and power models need to
//! know about a GPU. Two presets are provided, matching the hardware used in
//! the paper: [`DeviceSpec::v100`] (NVIDIA V100, 196 core frequencies from
//! 135 MHz to 1597 MHz, four memory frequencies topping at 1107 MHz) and
//! [`DeviceSpec::mi100`] (AMD MI100, whose stock behaviour is an "auto"
//! performance level rather than a fixed default clock).

use serde::{Deserialize, Serialize};

use crate::freq::FrequencyTable;
use crate::link::LinkSpec;

/// GPU vendor, which selects the management API shape (NVML vs ROCm-SMI)
/// and the meaning of the "default" frequency configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA: fixed default application clocks, NVML management.
    Nvidia,
    /// AMD: "auto" DVFS performance level by default, ROCm-SMI management.
    Amd,
    /// Intel: frequency-range control through Level Zero sysman; the
    /// default is a firmware governor inside the full range (like AMD's
    /// auto level).
    Intel,
}

/// Parameters of the convex (power-law) voltage/frequency curve. See
/// [`crate::voltage`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VoltageCurve {
    /// Voltage at the minimum core frequency (V).
    pub v_min: f64,
    /// Voltage at the maximum core frequency (V).
    pub v_max: f64,
    /// Power-law exponent `q` of the normalized curve
    /// `V = v_min + (v_max − v_min)·x^q`; `q > 1` makes the top frequency
    /// bins disproportionately expensive.
    pub exponent: f64,
}

/// A complete static description of a simulated GPU.
///
/// All constants are either public datasheet values (SM counts, bandwidths,
/// TDP, frequency ranges) or calibration constants chosen so that the
/// simulator reproduces the qualitative speedup/energy behaviour reported in
/// the paper (see `DESIGN.md` §2). None of them change at runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"NVIDIA V100"`.
    pub name: String,
    /// Vendor (selects management API semantics).
    pub vendor: Vendor,
    /// Number of streaming multiprocessors (NVIDIA) / compute units (AMD).
    pub num_sms: u32,
    /// FP32 lanes per SM/CU.
    pub lanes_per_sm: u32,
    /// Maximum resident threads per SM/CU (architectural limit).
    pub max_threads_per_sm: u32,
    /// Threads per SM at which real kernels saturate throughput (register
    /// and cache pressure stop occupancy well short of the architectural
    /// limit; V100-class stencil/compute kernels plateau near 512).
    pub saturation_threads_per_sm: u32,
    /// Threads per SM at which *power* saturates: once every SM has a
    /// resident block (~128 threads each), the whole chip's clock trees
    /// are lit and additional warps change power only marginally.
    pub power_saturation_threads_per_sm: u32,
    /// Supported core frequencies (MHz), ascending.
    pub core_freqs: FrequencyTable,
    /// Supported memory frequencies (MHz), ascending.
    pub mem_freqs: FrequencyTable,
    /// Default core frequency (MHz). For AMD devices this is the frequency
    /// the "auto" governor converges to under load; the ROCm layer exposes
    /// it as the auto performance level rather than a settable clock.
    pub default_core_mhz: f64,
    /// Peak DRAM bandwidth at the default memory clock (GB/s).
    pub mem_bandwidth_gbs: f64,
    /// Idle (static + leakage + fan) power in watts.
    pub idle_power_w: f64,
    /// Maximum core dynamic power at `v_max`/`f_max`, full activity (W).
    pub core_power_w: f64,
    /// Maximum memory subsystem power at full bandwidth utilization (W).
    pub mem_power_w: f64,
    /// Board power limit (W): when demand exceeds it the firmware throttles
    /// the effective core clock until the launch fits (see
    /// [`crate::power::resolve_power_cap`]); an operator power cap below
    /// TDP tightens the same loop.
    pub tdp_w: f64,
    /// Voltage/frequency curve parameters.
    pub voltage: VoltageCurve,
    /// Fixed kernel launch overhead (seconds). Host→device submission cost.
    pub launch_overhead_s: f64,
    /// Pipeline fill/drain depth in core cycles; contributes `depth / f`
    /// of latency to every kernel. Dominates tiny-workload kernels.
    pub pipeline_depth_cycles: f64,
    /// Instruction-level parallelism factor of a single lane (dual-issue…).
    pub ilp: f64,
    /// Fraction of core dynamic power burnt even when compute pipes stall on
    /// memory (imperfect clock gating). Higher values make core
    /// down-clocking more profitable for memory-bound kernels.
    pub clock_gating_floor: f64,
    /// Fraction of core dynamic power modulated by launch occupancy; the
    /// remainder (global clock distribution, L2, schedulers) switches
    /// whenever any kernel runs, regardless of how full the chip is.
    pub occ_amplitude: f64,
    /// Fraction of memory power burnt regardless of achieved bandwidth.
    pub mem_power_floor: f64,
    /// Fraction of `min(T_comp, T_mem)` that fails to overlap with the
    /// dominant phase (0 = perfect overlap).
    pub overlap_penalty: f64,
    /// Peer-to-peer interconnect port (see [`crate::link`]). Defaults to
    /// an NVLink2-class link so specs serialized before this field existed
    /// keep loading.
    #[serde(default)]
    pub link: LinkSpec,
}

impl DeviceSpec {
    /// The NVIDIA V100 (SXM2 32 GB) descriptor used throughout the paper.
    ///
    /// 80 SMs × 64 FP32 lanes, 900 GB/s HBM2 at the stock 1107 MHz memory
    /// clock (three lower bins are settable for the configuration
    /// lattice), 196 supported core frequencies from 135 to 1597 MHz
    /// (matching §5.1 of the paper), 300 W TDP. The paper's "default
    /// configuration" is the stock application clock, 1312 MHz.
    pub fn v100() -> Self {
        let core_freqs = FrequencyTable::linspace(135.0, 1597.0, 196);
        // Snap the stock application clock onto the supported table so the
        // "default configuration" is itself a settable frequency.
        let default_core_mhz = core_freqs.snap(1312.0);
        DeviceSpec {
            name: "NVIDIA V100".to_string(),
            vendor: Vendor::Nvidia,
            num_sms: 80,
            lanes_per_sm: 64,
            max_threads_per_sm: 2048,
            saturation_threads_per_sm: 512,
            power_saturation_threads_per_sm: 128,
            core_freqs,
            // NVML on a V100 reports four application memory clocks; the
            // stock (and default) configuration is the top one, 1107 MHz.
            mem_freqs: FrequencyTable::new(vec![703.0, 810.0, 958.0, 1107.0]),
            default_core_mhz,
            mem_bandwidth_gbs: 900.0,
            idle_power_w: 30.0,
            core_power_w: 260.0,
            mem_power_w: 55.0,
            tdp_w: 300.0,
            voltage: VoltageCurve {
                v_min: 0.64,
                v_max: 1.06,
                exponent: 5.0,
            },
            launch_overhead_s: 6.0e-6,
            pipeline_depth_cycles: 700.0,
            ilp: 1.8,
            clock_gating_floor: 0.42,
            occ_amplitude: 0.65,
            mem_power_floor: 0.25,
            overlap_penalty: 0.15,
            link: LinkSpec::nvlink2(),
        }
    }

    /// The AMD MI100 descriptor used in the paper.
    ///
    /// 120 CUs × 64 lanes, 1228 GB/s HBM2. ROCm-SMI exposes a frequency
    /// *range* rather than NVML-style application clocks; we model 121
    /// settable core frequencies from 300 to 1500 MHz plus the stock
    /// "auto" performance level, which under load converges near the top of
    /// the range (the paper observes the auto setting sits close to the
    /// highest achievable speedup).
    pub fn mi100() -> Self {
        DeviceSpec {
            name: "AMD MI100".to_string(),
            vendor: Vendor::Amd,
            num_sms: 120,
            lanes_per_sm: 64,
            max_threads_per_sm: 2560,
            saturation_threads_per_sm: 512,
            power_saturation_threads_per_sm: 128,
            core_freqs: FrequencyTable::linspace(300.0, 1500.0, 121),
            // ROCm-SMI exposes three memory performance levels on MI100;
            // the auto governor parks at the top one under load.
            mem_freqs: FrequencyTable::new(vec![800.0, 1000.0, 1200.0]),
            default_core_mhz: 1450.0,
            mem_bandwidth_gbs: 1228.8,
            idle_power_w: 35.0,
            core_power_w: 265.0,
            mem_power_w: 60.0,
            tdp_w: 300.0,
            voltage: VoltageCurve {
                v_min: 0.66,
                v_max: 1.10,
                exponent: 5.0,
            },
            launch_overhead_s: 8.0e-6,
            pipeline_depth_cycles: 900.0,
            ilp: 1.6,
            clock_gating_floor: 0.40,
            occ_amplitude: 0.65,
            mem_power_floor: 0.25,
            overlap_penalty: 0.18,
            link: LinkSpec::xgmi(),
        }
    }

    /// The Intel Data Center GPU Max 1100 (Ponte Vecchio) descriptor.
    ///
    /// Not part of the paper's evaluation, but SYnergy's portability story
    /// (§2.1) covers Intel through Level Zero; the substrate supports it so
    /// the portable layer can be exercised across all three vendors.
    /// 56 Xe cores × 128 lanes, 1229 GB/s HBM2e, 300 W, frequency range
    /// 300–1550 MHz in 50 MHz bins with a firmware governor by default.
    pub fn max1100() -> Self {
        DeviceSpec {
            name: "Intel Max 1100".to_string(),
            vendor: Vendor::Intel,
            num_sms: 56,
            lanes_per_sm: 128,
            max_threads_per_sm: 4096,
            saturation_threads_per_sm: 1024,
            power_saturation_threads_per_sm: 256,
            core_freqs: FrequencyTable::linspace(300.0, 1550.0, 26),
            // HBM2e stacks on PVC support three memory frequency bins.
            mem_freqs: FrequencyTable::new(vec![1046.0, 1305.0, 1565.0]),
            default_core_mhz: 1450.0,
            mem_bandwidth_gbs: 1228.8,
            idle_power_w: 38.0,
            core_power_w: 255.0,
            mem_power_w: 62.0,
            tdp_w: 300.0,
            voltage: VoltageCurve {
                v_min: 0.65,
                v_max: 1.05,
                exponent: 5.0,
            },
            launch_overhead_s: 7.0e-6,
            pipeline_depth_cycles: 800.0,
            ilp: 1.7,
            clock_gating_floor: 0.40,
            occ_amplitude: 0.65,
            mem_power_floor: 0.25,
            overlap_penalty: 0.16,
            link: LinkSpec::xelink(),
        }
    }

    /// Maximum supported core frequency in MHz.
    pub fn max_core_mhz(&self) -> f64 {
        self.core_freqs.max()
    }

    /// Minimum supported core frequency in MHz.
    pub fn min_core_mhz(&self) -> f64 {
        self.core_freqs.min()
    }

    /// Total FP32 lanes on the device.
    pub fn total_lanes(&self) -> f64 {
        f64::from(self.num_sms) * f64::from(self.lanes_per_sm)
    }

    /// Total resident-thread capacity (the latency-hiding pool).
    pub fn total_resident_threads(&self) -> f64 {
        f64::from(self.num_sms) * f64::from(self.max_threads_per_sm)
    }

    /// Device-wide thread count at which throughput saturates — the
    /// occupancy reference the timing model divides by.
    pub fn saturation_threads(&self) -> f64 {
        f64::from(self.num_sms) * f64::from(self.saturation_threads_per_sm)
    }

    /// Device-wide thread count at which power saturates — the occupancy
    /// reference the power model divides by.
    pub fn power_saturation_threads(&self) -> f64 {
        f64::from(self.num_sms) * f64::from(self.power_saturation_threads_per_sm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_has_196_core_frequencies() {
        let spec = DeviceSpec::v100();
        assert_eq!(spec.core_freqs.len(), 196);
        assert!((spec.core_freqs.min() - 135.0).abs() < 1e-9);
        assert!((spec.core_freqs.max() - 1597.0).abs() < 1e-9);
    }

    #[test]
    fn v100_memory_frequency_lattice() {
        let spec = DeviceSpec::v100();
        assert_eq!(spec.mem_freqs.len(), 4);
        assert!((spec.mem_freqs.min() - 703.0).abs() < 1e-9);
        // The *top* memory clock stays 1107 MHz — it is the default
        // configuration, so single-point sweeps remain bit-identical.
        assert!((spec.mem_freqs.max() - 1107.0).abs() < 1e-9);
    }

    #[test]
    fn every_vendor_has_a_memory_clock_axis() {
        for spec in [
            DeviceSpec::v100(),
            DeviceSpec::mi100(),
            DeviceSpec::max1100(),
        ] {
            assert!(spec.mem_freqs.len() >= 2, "{} has no mem axis", spec.name);
        }
    }

    #[test]
    fn default_clock_is_supported_or_within_range() {
        for spec in [DeviceSpec::v100(), DeviceSpec::mi100()] {
            assert!(spec.default_core_mhz >= spec.min_core_mhz());
            assert!(spec.default_core_mhz <= spec.max_core_mhz());
        }
    }

    #[test]
    fn tdp_caps_the_component_sum() {
        // The component maxima can nominally exceed the board limit (they
        // never all saturate at once); the firmware throttle loop
        // ([`crate::power::resolve_power_cap`]) holds the line.
        for spec in [DeviceSpec::v100(), DeviceSpec::mi100()] {
            let sum = spec.idle_power_w + spec.core_power_w + spec.mem_power_w;
            assert!(sum >= spec.tdp_w, "components must be able to reach TDP");
            assert!((290.0..=310.0).contains(&spec.tdp_w));
        }
    }

    #[test]
    fn vendors_differ() {
        assert_eq!(DeviceSpec::v100().vendor, Vendor::Nvidia);
        assert_eq!(DeviceSpec::mi100().vendor, Vendor::Amd);
    }

    #[test]
    fn every_vendor_has_an_interconnect_port() {
        for spec in [
            DeviceSpec::v100(),
            DeviceSpec::mi100(),
            DeviceSpec::max1100(),
        ] {
            assert!(spec.link.peak_gbs > 0.0, "{} has no link", spec.name);
            assert!(spec.link.latency_s > 0.0);
            assert!(
                spec.link.peak_gbs < spec.mem_bandwidth_gbs,
                "interconnect must be slower than local DRAM"
            );
        }
        assert_eq!(DeviceSpec::v100().link, LinkSpec::nvlink2());
        assert_eq!(DeviceSpec::mi100().link, LinkSpec::xgmi());
    }
}
