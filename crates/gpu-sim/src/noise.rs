//! Deterministic measurement-noise model.
//!
//! Real energy counters and wall clocks jitter run to run; the paper repeats
//! every measurement five times and takes a robust aggregate (§5.1). To
//! exercise that pipeline the simulator can inject small multiplicative
//! noise on reported time and energy. The noise stream is a seeded ChaCha
//! RNG, so experiments stay bit-reproducible.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded multiplicative-noise source.
///
/// Each sample returns a factor `exp(σ·z)` with `z` approximately standard
/// normal (sum of uniforms), i.e. log-normal noise with median 1.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    rng: ChaCha8Rng,
    sigma_time: f64,
    sigma_energy: f64,
}

impl NoiseModel {
    /// Creates a noise model with separate relative σ for time and energy.
    ///
    /// # Panics
    /// Panics on negative sigmas.
    pub fn new(seed: u64, sigma_time: f64, sigma_energy: f64) -> Self {
        assert!(sigma_time >= 0.0 && sigma_energy >= 0.0, "σ must be ≥ 0");
        NoiseModel {
            rng: ChaCha8Rng::seed_from_u64(seed),
            sigma_time,
            sigma_energy,
        }
    }

    /// A disabled noise model: every factor is exactly 1.
    pub fn disabled() -> Self {
        NoiseModel::new(0, 0.0, 0.0)
    }

    /// Typical measurement jitter (~1 % on time, ~1.5 % on energy).
    pub fn realistic(seed: u64) -> Self {
        NoiseModel::new(seed, 0.01, 0.015)
    }

    /// Whether this model perturbs measurements at all.
    pub fn is_enabled(&self) -> bool {
        self.sigma_time > 0.0 || self.sigma_energy > 0.0
    }

    fn standard_normal(&mut self) -> f64 {
        // Irwin–Hall sum of 12 uniforms: mean 6, variance 1.
        let s: f64 = (0..12).map(|_| self.rng.gen::<f64>()).sum();
        s - 6.0
    }

    /// Multiplicative factor to apply to a time measurement.
    pub fn time_factor(&mut self) -> f64 {
        if self.sigma_time == 0.0 {
            return 1.0;
        }
        let z = self.standard_normal();
        (self.sigma_time * z).exp()
    }

    /// Multiplicative factor to apply to an energy measurement.
    pub fn energy_factor(&mut self) -> f64 {
        if self.sigma_energy == 0.0 {
            return 1.0;
        }
        let z = self.standard_normal();
        (self.sigma_energy * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_exactly_one() {
        let mut n = NoiseModel::disabled();
        for _ in 0..100 {
            assert_eq!(n.time_factor(), 1.0);
            assert_eq!(n.energy_factor(), 1.0);
        }
        assert!(!n.is_enabled());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = NoiseModel::realistic(42);
        let mut b = NoiseModel::realistic(42);
        for _ in 0..50 {
            assert_eq!(a.time_factor(), b.time_factor());
            assert_eq!(a.energy_factor(), b.energy_factor());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = NoiseModel::realistic(1);
        let mut b = NoiseModel::realistic(2);
        let same = (0..20)
            .filter(|_| a.time_factor() == b.time_factor())
            .count();
        assert!(same < 20);
    }

    #[test]
    fn factors_close_to_one() {
        let mut n = NoiseModel::realistic(7);
        let mut sum = 0.0;
        let trials = 2000;
        for _ in 0..trials {
            let f = n.time_factor();
            assert!((0.9..1.1).contains(&f), "1% noise should stay within ±10%");
            sum += f;
        }
        let mean = sum / trials as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean factor ≈ 1, got {mean}");
    }
}
