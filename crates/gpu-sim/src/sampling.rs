//! Power-sample timelines.
//!
//! Real energy measurements integrate a power sampler (NVML exposes ~50 Hz
//! board-power samples; SYnergy polls it). This module reconstructs that
//! view from a device's execution trace: a piecewise-constant power
//! timeline sampled at a fixed period, plus trapezoidal re-integration —
//! letting tests confirm that counter-based energy and sampled energy
//! agree, and giving tools a profiler-style view.

use serde::{Deserialize, Serialize};

use crate::trace::Trace;

/// One power sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Sample timestamp (s, device clock).
    pub t_s: f64,
    /// Board power at the sample (W).
    pub power_w: f64,
}

/// Samples the power timeline implied by `trace` every `period_s`, from 0
/// to the end of the last event. Gaps between kernels report `idle_w`.
///
/// # Panics
/// Panics on a non-positive period.
pub fn sample_power(trace: &Trace, period_s: f64, idle_w: f64) -> Vec<PowerSample> {
    assert!(period_s > 0.0, "sampling period must be positive");
    let end = trace
        .events()
        .iter()
        .map(|e| e.start_s + e.duration_s)
        .fold(0.0f64, f64::max);
    let mut samples = Vec::new();
    let mut t = 0.0;
    while t <= end {
        let power = trace
            .events()
            .iter()
            .find(|e| t >= e.start_s && t < e.start_s + e.duration_s)
            .map(|e| e.avg_power_w)
            .unwrap_or(idle_w);
        samples.push(PowerSample {
            t_s: t,
            power_w: power,
        });
        t += period_s;
    }
    samples
}

/// Trapezoidal energy integral of a sample timeline (J) — what a
/// sampling-based meter reports.
pub fn integrate_samples(samples: &[PowerSample]) -> f64 {
    samples
        .windows(2)
        .map(|w| 0.5 * (w[0].power_w + w[1].power_w) * (w[1].t_s - w[0].t_s))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::kernel::KernelProfile;
    use crate::spec::DeviceSpec;

    fn loaded_device() -> Device {
        let mut dev = Device::new(DeviceSpec::v100());
        let k = KernelProfile::compute_bound("k", 50_000_000, 400.0);
        for _ in 0..5 {
            dev.launch(&k).unwrap();
        }
        dev
    }

    #[test]
    fn samples_cover_the_whole_run() {
        let dev = loaded_device();
        let samples = sample_power(dev.trace(), dev.clock_s() / 100.0, 30.0);
        assert!(samples.len() >= 100);
        assert_eq!(samples[0].t_s, 0.0);
        assert!(samples.last().unwrap().t_s <= dev.clock_s());
    }

    #[test]
    fn sampled_energy_matches_counter_for_dense_sampling() {
        let dev = loaded_device();
        let samples = sample_power(dev.trace(), dev.clock_s() / 5000.0, 30.0);
        let sampled = integrate_samples(&samples);
        let counter = dev.energy_counter_j();
        let rel = (sampled - counter).abs() / counter;
        assert!(rel < 0.02, "sampled {sampled} vs counter {counter}");
    }

    #[test]
    fn coarse_sampling_still_approximates() {
        // The paper-style measurement (tens of samples per run) stays
        // within a few percent for steady workloads.
        let dev = loaded_device();
        let samples = sample_power(dev.trace(), dev.clock_s() / 40.0, 30.0);
        let sampled = integrate_samples(&samples);
        let counter = dev.energy_counter_j();
        assert!((sampled - counter).abs() / counter < 0.08);
    }

    #[test]
    fn gaps_report_idle_power() {
        let mut dev = Device::new(DeviceSpec::v100());
        let k = KernelProfile::compute_bound("k", 50_000_000, 400.0);
        dev.launch(&k).unwrap();
        dev.idle_advance(1.0);
        dev.launch(&k).unwrap();
        let idle = dev.spec().idle_power_w;
        let samples = sample_power(dev.trace(), 0.01, idle);
        let idle_samples = samples.iter().filter(|s| s.power_w == idle).count();
        assert!(idle_samples > 50, "the 1 s gap must sample as idle");
    }

    #[test]
    fn empty_trace_yields_single_idle_sample() {
        let dev = Device::new(DeviceSpec::v100());
        let samples = sample_power(dev.trace(), 0.1, 42.0);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].power_w, 42.0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let dev = Device::new(DeviceSpec::v100());
        let _ = sample_power(dev.trace(), 0.0, 30.0);
    }
}
