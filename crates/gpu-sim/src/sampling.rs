//! Power-sample timelines.
//!
//! Real energy measurements integrate a power sampler (NVML exposes ~50 Hz
//! board-power samples; SYnergy polls it). This module reconstructs that
//! view from a device's execution trace: a piecewise-constant power
//! timeline sampled at a fixed period, plus trapezoidal re-integration —
//! letting tests confirm that counter-based energy and sampled energy
//! agree, and giving tools a profiler-style view.

use serde::{Deserialize, Serialize};

use crate::trace::{Trace, TraceEvent};

/// One power sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Sample timestamp (s, device clock).
    pub t_s: f64,
    /// Board power at the sample (W).
    pub power_w: f64,
}

/// Samples the power timeline implied by `trace` every `period_s`, from 0
/// to the end of the last event. Gaps between kernels report `idle_w`.
///
/// Events are sorted once and consumed by a forward-only cursor (kernel
/// executions on one device never overlap), so sampling is
/// O(events·log events + samples) instead of O(events × samples). Sample
/// timestamps come from the index grid `t = i · period_s`, not a running
/// `t += period_s` accumulator, so long timelines cannot drift off the
/// grid or drop/duplicate the final sample to accumulated rounding.
///
/// # Panics
/// Panics on a non-positive period.
pub fn sample_power(trace: &Trace, period_s: f64, idle_w: f64) -> Vec<PowerSample> {
    assert!(period_s > 0.0, "sampling period must be positive");
    let mut events: Vec<&TraceEvent> = trace.events().iter().collect();
    events.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
    let end = events
        .iter()
        .map(|e| e.start_s + e.duration_s)
        .fold(0.0f64, f64::max);
    let mut samples = Vec::new();
    let mut cursor = 0;
    for i in 0u64.. {
        let t = i as f64 * period_s;
        if t > end {
            break;
        }
        while cursor < events.len() && events[cursor].start_s + events[cursor].duration_s <= t {
            cursor += 1;
        }
        let power = match events.get(cursor) {
            Some(e) if e.start_s <= t => e.avg_power_w,
            _ => idle_w,
        };
        samples.push(PowerSample {
            t_s: t,
            power_w: power,
        });
    }
    samples
}

/// Trapezoidal energy integral of a sample timeline (J) — what a
/// sampling-based meter reports.
pub fn integrate_samples(samples: &[PowerSample]) -> f64 {
    samples
        .windows(2)
        .map(|w| 0.5 * (w[0].power_w + w[1].power_w) * (w[1].t_s - w[0].t_s))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::kernel::KernelProfile;
    use crate::spec::DeviceSpec;

    fn loaded_device() -> Device {
        let mut dev = Device::new(DeviceSpec::v100());
        let k = KernelProfile::compute_bound("k", 50_000_000, 400.0);
        for _ in 0..5 {
            dev.launch(&k).unwrap();
        }
        dev
    }

    #[test]
    fn samples_cover_the_whole_run() {
        let dev = loaded_device();
        let samples = sample_power(dev.trace(), dev.clock_s() / 100.0, 30.0);
        assert!(samples.len() >= 100);
        assert_eq!(samples[0].t_s, 0.0);
        assert!(samples.last().unwrap().t_s <= dev.clock_s());
    }

    #[test]
    fn sampled_energy_matches_counter_for_dense_sampling() {
        let dev = loaded_device();
        let samples = sample_power(dev.trace(), dev.clock_s() / 5000.0, 30.0);
        let sampled = integrate_samples(&samples);
        let counter = dev.energy_counter_j();
        let rel = (sampled - counter).abs() / counter;
        assert!(rel < 0.02, "sampled {sampled} vs counter {counter}");
    }

    #[test]
    fn coarse_sampling_still_approximates() {
        // The paper-style measurement (tens of samples per run) stays
        // within a few percent for steady workloads.
        let dev = loaded_device();
        let samples = sample_power(dev.trace(), dev.clock_s() / 40.0, 30.0);
        let sampled = integrate_samples(&samples);
        let counter = dev.energy_counter_j();
        assert!((sampled - counter).abs() / counter < 0.08);
    }

    #[test]
    fn gaps_report_idle_power() {
        let mut dev = Device::new(DeviceSpec::v100());
        let k = KernelProfile::compute_bound("k", 50_000_000, 400.0);
        dev.launch(&k).unwrap();
        dev.idle_advance(1.0);
        dev.launch(&k).unwrap();
        let idle = dev.spec().idle_power_w;
        let samples = sample_power(dev.trace(), 0.01, idle);
        let idle_samples = samples.iter().filter(|s| s.power_w == idle).count();
        assert!(idle_samples > 50, "the 1 s gap must sample as idle");
    }

    #[test]
    fn empty_trace_yields_single_idle_sample() {
        let dev = Device::new(DeviceSpec::v100());
        let samples = sample_power(dev.trace(), 0.1, 42.0);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].power_w, 42.0);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let dev = Device::new(DeviceSpec::v100());
        let _ = sample_power(dev.trace(), 0.0, 30.0);
    }

    #[test]
    fn sample_timestamps_sit_exactly_on_the_index_grid() {
        // A running `t += period` accumulator drifts (0.1 is not exactly
        // representable); the index grid must reproduce `i * period`
        // bit-exactly at every sample, however long the timeline.
        let mut dev = Device::new(DeviceSpec::v100());
        let k = KernelProfile::compute_bound("k", 500_000_000, 400.0);
        for _ in 0..5 {
            dev.idle_advance(0.37);
            dev.launch(&k).unwrap();
        }
        let period = 0.1;
        let samples = sample_power(dev.trace(), period, 30.0);
        assert!(samples.len() > 10);
        for (i, s) in samples.iter().enumerate() {
            assert_eq!(s.t_s, i as f64 * period, "sample {i} off the grid");
        }
        // The final grid point at or before the end is present: no sample
        // dropped to accumulated rounding.
        let end = dev.clock_s();
        let last = samples.last().unwrap().t_s;
        assert!(last <= end, "last sample {last} beyond the end {end}");
        assert!(
            samples.len() as f64 * period > end,
            "grid point {} <= end {end} was dropped",
            samples.len() as f64 * period
        );
    }

    #[test]
    fn cursor_scan_matches_per_sample_linear_scan() {
        // The sorted-cursor implementation must report exactly what the
        // original O(events × samples) scan reported at every tick.
        let mut dev = Device::new(DeviceSpec::v100());
        let a = KernelProfile::compute_bound("a", 50_000_000, 400.0);
        let b = KernelProfile::memory_bound("b", 20_000_000, 300.0);
        for _ in 0..4 {
            dev.launch(&a).unwrap();
            dev.idle_advance(0.01);
            dev.launch(&b).unwrap();
        }
        let idle = 25.0;
        let samples = sample_power(dev.trace(), 0.003, idle);
        for s in &samples {
            let expect = dev
                .trace()
                .events()
                .iter()
                .find(|e| s.t_s >= e.start_s && s.t_s < e.start_s + e.duration_s)
                .map(|e| e.avg_power_w)
                .unwrap_or(idle);
            assert_eq!(s.power_w, expect, "diverged at t = {}", s.t_s);
        }
    }
}
