//! The voltage/frequency curve.
//!
//! DVFS couples voltage to frequency. On V100/MI100-class parts the
//! measured curve is *convex*: voltage creeps up slowly through the low and
//! middle of the frequency range and rises steeply toward the top bins. We
//! model it as a power law,
//!
//! ```text
//! V(f) = v_min + (v_max − v_min) · ((f − f_min)/(f_max − f_min))^q
//! ```
//!
//! with `q > 1`. Because dynamic power goes as `V²·f`, the convexity is
//! what produces both headline behaviours in the paper's characterization:
//! the top frequency bins are disproportionately expensive (LiGen pays
//! ~60 % more energy for ~22 % speedup, Fig. 10b), while moderate
//! down-clocking still lowers `V²` enough to save energy (~10 % for LiGen,
//! ~20 % for memory-bound Cronos) before static energy takes over at the
//! bottom of the range.

use crate::spec::{DeviceSpec, VoltageCurve};

/// Operating voltage (V) at core frequency `f_mhz` for the given curve over
/// the device range `[f_min_mhz, f_max_mhz]`. Frequencies outside the range
/// are clamped.
pub fn voltage_at(curve: &VoltageCurve, f_mhz: f64, f_min_mhz: f64, f_max_mhz: f64) -> f64 {
    debug_assert!(f_max_mhz > f_min_mhz);
    let f = f_mhz.clamp(f_min_mhz, f_max_mhz);
    let x = (f - f_min_mhz) / (f_max_mhz - f_min_mhz);
    curve.v_min + (curve.v_max - curve.v_min) * x.powf(curve.exponent)
}

/// Voltage at `f_mhz` for a device spec (convenience wrapper).
pub fn device_voltage(spec: &DeviceSpec, f_mhz: f64) -> f64 {
    voltage_at(
        &spec.voltage,
        f_mhz,
        spec.min_core_mhz(),
        spec.max_core_mhz(),
    )
}

/// The `V(f)²·f` dynamic-power scale factor, normalized so it equals 1.0 at
/// `f_max`. This is the factor by which per-cycle switching energy × cycle
/// rate varies across the frequency range.
pub fn dynamic_scale(spec: &DeviceSpec, f_mhz: f64) -> f64 {
    let f_max = spec.max_core_mhz();
    let v = device_voltage(spec, f_mhz);
    let v_max = spec.voltage.v_max;
    (v / v_max).powi(2) * (f_mhz / f_max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    #[test]
    fn voltage_monotone_nondecreasing() {
        let spec = DeviceSpec::v100();
        let mut prev = 0.0;
        for f in spec.core_freqs.iter() {
            let v = device_voltage(&spec, f);
            assert!(v >= prev - 1e-12, "voltage must not decrease with f");
            prev = v;
        }
    }

    #[test]
    fn voltage_bounds() {
        let spec = DeviceSpec::v100();
        assert!((device_voltage(&spec, spec.min_core_mhz()) - spec.voltage.v_min).abs() < 1e-9);
        assert!((device_voltage(&spec, spec.max_core_mhz()) - spec.voltage.v_max).abs() < 1e-9);
    }

    #[test]
    fn curve_is_convex() {
        // The midpoint voltage must sit below the linear interpolant.
        let spec = DeviceSpec::v100();
        let f_mid = 0.5 * (spec.min_core_mhz() + spec.max_core_mhz());
        let linear = 0.5 * (spec.voltage.v_min + spec.voltage.v_max);
        assert!(device_voltage(&spec, f_mid) < linear);
    }

    #[test]
    fn dynamic_scale_normalized_at_fmax() {
        let spec = DeviceSpec::mi100();
        assert!((dynamic_scale(&spec, spec.max_core_mhz()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_scale_monotone_increasing() {
        let spec = DeviceSpec::v100();
        let mut prev = -1.0;
        for f in spec.core_freqs.iter() {
            let d = dynamic_scale(&spec, f);
            assert!(d > prev, "V²f must rise with f");
            prev = d;
        }
    }

    #[test]
    fn top_bins_are_disproportionately_expensive() {
        // Going from the default clock to f_max must raise V²f much faster
        // than frequency — the mechanism behind the paper's +60 % energy
        // for +22 % speedup on LiGen.
        let spec = DeviceSpec::v100();
        let f_def = spec.default_core_mhz;
        let f_max = spec.max_core_mhz();
        let ratio = dynamic_scale(&spec, f_max) / dynamic_scale(&spec, f_def);
        let freq_ratio = f_max / f_def;
        assert!(
            ratio > 1.4 * freq_ratio,
            "top-bin V²f ratio {ratio:.2} vs frequency ratio {freq_ratio:.2}"
        );
    }

    #[test]
    fn moderate_downclock_still_lowers_v_squared() {
        // V(0.85·f_def) must be visibly below V(f_def): the convex curve
        // keeps falling below the default clock, so down-clocking saves
        // dynamic energy per unit work.
        let spec = DeviceSpec::v100();
        let v_def = device_voltage(&spec, spec.default_core_mhz);
        let v_low = device_voltage(&spec, 0.85 * spec.default_core_mhz);
        assert!(v_low < v_def * 0.97, "v_low {v_low} vs v_def {v_def}");
    }
}
