//! Per-kernel execution trace.
//!
//! Every launch appends a [`TraceEvent`] so tools (and tests) can inspect
//! what ran, at which clock, and what it cost — the simulator's analogue of
//! an NVML sampling log or an `nsys` timeline.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// One executed kernel, as recorded by the device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Kernel name.
    pub kernel: String,
    /// Device timestamp at launch (s since device creation).
    pub start_s: f64,
    /// Duration (s).
    pub duration_s: f64,
    /// Energy consumed (J).
    pub energy_j: f64,
    /// Core clock during the launch (MHz).
    pub core_mhz: f64,
    /// Memory clock during the launch (MHz).
    pub mem_mhz: f64,
    /// Average power (W).
    pub avg_power_w: f64,
    /// Work items in the launch.
    pub work_items: u64,
}

/// An append-only log of executed kernels with bounded memory use.
///
/// Backed by a ring buffer so eviction at the capacity limit is O(1) —
/// long-running sweeps launch millions of kernels through one device.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: Option<usize>,
    dropped: u64,
}

impl Trace {
    /// Unbounded trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Trace that keeps only the most recent `capacity` events (older events
    /// are dropped and counted).
    pub fn with_capacity_limit(capacity: usize) -> Self {
        Trace {
            events: VecDeque::new(),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if over capacity.
    pub fn push(&mut self, ev: TraceEvent) {
        if let Some(cap) = self.capacity {
            if self.events.len() == cap {
                if cap == 0 {
                    self.dropped += 1;
                    return;
                }
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(ev);
    }

    /// Whether pushed events can be retained at all (false only for a
    /// zero-capacity trace, which drops everything). Lets hot paths skip
    /// constructing events that would be thrown away.
    pub fn is_recording(&self) -> bool {
        self.capacity != Some(0)
    }

    /// Recorded events, oldest first.
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Number of events evicted due to the capacity limit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total energy across recorded events (J).
    pub fn total_energy_j(&self) -> f64 {
        self.events.iter().map(|e| e.energy_j).sum()
    }

    /// Total kernel time across recorded events (s).
    pub fn total_time_s(&self) -> f64 {
        self.events.iter().map(|e| e.duration_s).sum()
    }

    /// Clears all recorded events (the drop counter survives).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Events for one kernel name.
    pub fn by_kernel<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.kernel == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, e: f64) -> TraceEvent {
        TraceEvent {
            kernel: name.to_string(),
            start_s: 0.0,
            duration_s: 1.0,
            energy_j: e,
            core_mhz: 1000.0,
            mem_mhz: 1107.0,
            avg_power_w: e,
            work_items: 1,
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut t = Trace::new();
        t.push(ev("a", 2.0));
        t.push(ev("b", 3.0));
        assert_eq!(t.total_energy_j(), 5.0);
        assert_eq!(t.total_time_s(), 2.0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = Trace::with_capacity_limit(2);
        t.push(ev("a", 1.0));
        t.push(ev("b", 1.0));
        t.push(ev("c", 1.0));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[0].kernel, "b");
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = Trace::with_capacity_limit(0);
        t.push(ev("a", 1.0));
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn filter_by_kernel() {
        let mut t = Trace::new();
        t.push(ev("x", 1.0));
        t.push(ev("y", 1.0));
        t.push(ev("x", 1.0));
        assert_eq!(t.by_kernel("x").count(), 2);
    }
}
