//! # gpu-sim — an analytical DVFS GPU simulator
//!
//! This crate is the hardware substrate for the reproduction of
//! *"Domain-Specific Energy Modeling for Drug Discovery and
//! Magnetohydrodynamics Applications"* (SC-W 2023). The paper measures real
//! NVIDIA V100 and AMD MI100 GPUs through NVML and ROCm-SMI; this crate
//! replaces them with an analytical simulator that reproduces the *mechanics*
//! that drive every result in the paper:
//!
//! * **Roofline execution time** — a kernel's duration is the maximum of its
//!   compute time (∝ 1/f_core) and its memory time (independent of the core
//!   clock), plus launch overhead and pipeline latency. Memory-bound kernels
//!   therefore tolerate core down-clocking with near-zero slowdown, while
//!   compute-bound kernels slow down proportionally.
//! * **CMOS power** — dynamic power scales with `V(f)² · f`, with an idle
//!   floor and a memory-subsystem term. Down-clocking below the voltage knee
//!   stops paying back, which produces the energy-minimum frequencies and the
//!   Pareto knees seen in the paper's characterization figures.
//! * **Occupancy** — small workloads under-utilize the device, so both time
//!   and power become dominated by fixed costs; this is what makes the
//!   energy-optimal frequency *input-dependent*, the paper's key observation.
//!
//! The programming interface mirrors the structure of the real stack:
//! [`nvml`] is an NVML-like management API, [`rocm`] is a ROCm-SMI-like API
//! (with the MI100's "auto" performance level), and [`device::Device`] is the
//! execution engine both wrap.
//!
//! Everything is deterministic. Optional measurement noise flows through a
//! seeded ChaCha RNG ([`noise`]); optional management-API faults (clock
//! rejections, thermal throttling, counter wraps, dropped launches) flow
//! through a seedable [`faults::FaultPlan`].
//!
//! ```
//! use gpu_sim::{device::Device, spec::DeviceSpec, kernel::KernelProfile};
//!
//! let mut dev = Device::new(DeviceSpec::v100());
//! let k = KernelProfile::compute_bound("saxpy", 1 << 20, 64.0);
//! let rec = dev.launch(&k).expect("fault-free device");
//! assert!(rec.time_s > 0.0 && rec.energy_j > 0.0);
//! ```

pub mod device;
pub mod faults;
pub mod freq;
pub mod kernel;
pub mod level_zero;
pub mod link;
pub mod noise;
pub mod nvml;
pub mod power;
pub mod pricing;
pub mod rocm;
pub mod sampling;
pub mod spec;
pub mod timing;
pub mod trace;
pub mod voltage;

pub use device::{Device, LaunchRecord};
pub use faults::{substream_seed, FaultError, FaultPlan, FaultState, Schedule, ThrottleWindow};
pub use kernel::{KernelProfile, OpMix};
pub use link::{LinkSpec, TransferRecord};
pub use pricing::PriceTable;
pub use spec::{DeviceSpec, Vendor};

/// Convenience prelude bringing the most commonly used items into scope.
pub mod prelude {
    pub use crate::device::{Device, LaunchRecord};
    pub use crate::kernel::{KernelProfile, OpMix};
    pub use crate::spec::{DeviceSpec, Vendor};
}
