//! Kernel workload descriptors.
//!
//! A [`KernelProfile`] is what an application submits to the simulator: the
//! amount of parallel work and the per-work-item instruction mix. The mix is
//! broken down into exactly the categories the general-purpose energy model
//! of Fan et al. uses as *static code features* (Table 1 of the paper), so
//! the feature extractor in `energy-model` can read them straight off the
//! profile.

use serde::{Deserialize, Serialize};

/// Per-work-item instruction mix, in the Table-1 feature categories.
///
/// Counts are `f64` averages per work item (loops and branches make
/// per-item counts fractional in general).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OpMix {
    /// Integer additions and subtractions.
    pub int_add: f64,
    /// Integer multiplications.
    pub int_mul: f64,
    /// Integer divisions.
    pub int_div: f64,
    /// Integer bitwise operations.
    pub int_bw: f64,
    /// Floating-point additions and subtractions.
    pub float_add: f64,
    /// Floating-point multiplications.
    pub float_mul: f64,
    /// Floating-point divisions.
    pub float_div: f64,
    /// Special-function operations (sin, cos, exp, sqrt, …).
    pub special: f64,
    /// Global-memory accesses (4-byte words that reach DRAM).
    pub global_access: f64,
    /// Local/shared-memory accesses (4-byte words).
    pub local_access: f64,
}

impl OpMix {
    /// Total arithmetic operations per item (excludes memory accesses).
    pub fn total_arith(&self) -> f64 {
        self.int_add
            + self.int_mul
            + self.int_div
            + self.int_bw
            + self.float_add
            + self.float_mul
            + self.float_div
            + self.special
    }

    /// Floating-point operations per item.
    pub fn total_flops(&self) -> f64 {
        self.float_add + self.float_mul + self.float_div + self.special
    }

    /// DRAM traffic per item in bytes (4 bytes per counted global access).
    pub fn global_bytes(&self) -> f64 {
        self.global_access * 4.0
    }

    /// Issue-cycles per item on one lane, weighting each category by its
    /// reciprocal-throughput cost. These are the costs the timing model
    /// charges; they approximate Volta/CDNA1 per-lane throughputs.
    pub fn issue_cycles(&self) -> f64 {
        self.int_add * 1.0
            + self.int_mul * 2.0
            + self.int_div * 12.0
            + self.int_bw * 1.0
            + self.float_add * 1.0
            + self.float_mul * 1.0
            + self.float_div * 8.0
            + self.special * 4.0
            + self.local_access * 0.5
            // address generation / LSU issue for global accesses
            + self.global_access * 0.35
    }

    /// Arithmetic intensity: arithmetic ops per DRAM byte. `+inf` for a
    /// kernel with no global traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.global_bytes();
        if bytes == 0.0 {
            f64::INFINITY
        } else {
            self.total_arith() / bytes
        }
    }

    /// Element-wise sum of two mixes.
    pub fn combine(&self, other: &OpMix) -> OpMix {
        OpMix {
            int_add: self.int_add + other.int_add,
            int_mul: self.int_mul + other.int_mul,
            int_div: self.int_div + other.int_div,
            int_bw: self.int_bw + other.int_bw,
            float_add: self.float_add + other.float_add,
            float_mul: self.float_mul + other.float_mul,
            float_div: self.float_div + other.float_div,
            special: self.special + other.special,
            global_access: self.global_access + other.global_access,
            local_access: self.local_access + other.local_access,
        }
    }

    /// Mix scaled by a constant factor (e.g. iterations of an inner loop).
    pub fn scaled(&self, k: f64) -> OpMix {
        OpMix {
            int_add: self.int_add * k,
            int_mul: self.int_mul * k,
            int_div: self.int_div * k,
            int_bw: self.int_bw * k,
            float_add: self.float_add * k,
            float_mul: self.float_mul * k,
            float_div: self.float_div * k,
            special: self.special * k,
            global_access: self.global_access * k,
            local_access: self.local_access * k,
        }
    }

    /// The mix as the Table-1 feature vector, in table order:
    /// `[int_add, int_mul, int_div, int_bw, float_add, float_mul,
    /// float_div, sf, gl_access, loc_access]`.
    pub fn as_feature_vector(&self) -> [f64; 10] {
        [
            self.int_add,
            self.int_mul,
            self.int_div,
            self.int_bw,
            self.float_add,
            self.float_mul,
            self.float_div,
            self.special,
            self.global_access,
            self.local_access,
        ]
    }
}

/// A complete kernel launch descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name (for traces and feature attribution).
    pub name: String,
    /// Number of parallel work items (GPU threads with useful work).
    pub work_items: u64,
    /// Per-item instruction mix.
    pub mix: OpMix,
    /// Fraction of the architectural ILP the kernel's instruction schedule
    /// achieves (1.0 = perfectly unrolled independent streams, as in
    /// micro-benchmarks; real kernels with dependent chains and divergence
    /// land lower). *Invisible to static analysis* — one of the transfer
    /// gaps that limit the general-purpose model on real applications.
    pub ilp_efficiency: f64,
}

impl KernelProfile {
    /// Creates a kernel profile.
    ///
    /// # Panics
    /// Panics if `work_items == 0` — an empty launch is a programming error
    /// in the calling application.
    pub fn new(name: impl Into<String>, work_items: u64, mix: OpMix) -> Self {
        assert!(work_items > 0, "kernel must have at least one work item");
        KernelProfile {
            name: name.into(),
            work_items,
            mix,
            ilp_efficiency: 1.0,
        }
    }

    /// Sets the achieved-ILP fraction (see [`KernelProfile::ilp_efficiency`]).
    ///
    /// # Panics
    /// Panics outside `(0, 1]`.
    pub fn with_ilp_efficiency(mut self, eff: f64) -> Self {
        assert!(eff > 0.0 && eff <= 1.0, "ILP efficiency must be in (0, 1]");
        self.ilp_efficiency = eff;
        self
    }

    /// A purely compute-bound kernel: `flops` FP operations per item split
    /// between adds and muls, negligible memory traffic.
    pub fn compute_bound(name: impl Into<String>, work_items: u64, flops: f64) -> Self {
        KernelProfile::new(
            name,
            work_items,
            OpMix {
                float_add: flops * 0.5,
                float_mul: flops * 0.5,
                global_access: 2.0,
                ..OpMix::default()
            },
        )
    }

    /// A memory-bound streaming kernel: `bytes` DRAM bytes per item with a
    /// token amount of arithmetic.
    pub fn memory_bound(name: impl Into<String>, work_items: u64, bytes: f64) -> Self {
        KernelProfile::new(
            name,
            work_items,
            OpMix {
                float_add: 2.0,
                int_add: 2.0,
                global_access: bytes / 4.0,
                ..OpMix::default()
            },
        )
    }

    /// Total DRAM traffic of the launch in bytes.
    pub fn total_global_bytes(&self) -> f64 {
        self.work_items as f64 * self.mix.global_bytes()
    }

    /// Total floating-point operations of the launch.
    pub fn total_flops(&self) -> f64 {
        self.work_items as f64 * self.mix.total_flops()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_vector_order_matches_table1() {
        let mix = OpMix {
            int_add: 1.0,
            int_mul: 2.0,
            int_div: 3.0,
            int_bw: 4.0,
            float_add: 5.0,
            float_mul: 6.0,
            float_div: 7.0,
            special: 8.0,
            global_access: 9.0,
            local_access: 10.0,
        };
        assert_eq!(
            mix.as_feature_vector(),
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        );
    }

    #[test]
    fn combine_and_scale_are_linear() {
        let a = OpMix {
            float_add: 2.0,
            global_access: 4.0,
            ..OpMix::default()
        };
        let b = a.scaled(3.0);
        assert_eq!(b.float_add, 6.0);
        let c = a.combine(&b);
        assert_eq!(c.global_access, 16.0);
    }

    #[test]
    fn arithmetic_intensity_classifies() {
        let cb = KernelProfile::compute_bound("c", 100, 1000.0);
        let mb = KernelProfile::memory_bound("m", 100, 64.0);
        assert!(cb.mix.arithmetic_intensity() > mb.mix.arithmetic_intensity());
    }

    #[test]
    fn intensity_infinite_without_memory() {
        let mix = OpMix {
            float_add: 1.0,
            ..OpMix::default()
        };
        assert!(mix.arithmetic_intensity().is_infinite());
    }

    #[test]
    #[should_panic(expected = "at least one work item")]
    fn zero_items_panics() {
        let _ = KernelProfile::new("k", 0, OpMix::default());
    }

    #[test]
    fn issue_cycles_positive_for_any_nonzero_mix() {
        let mix = OpMix {
            int_bw: 1.0,
            ..OpMix::default()
        };
        assert!(mix.issue_cycles() > 0.0);
    }
}
