//! NVML-like management API.
//!
//! Mirrors the subset of the NVIDIA Management Library the paper's pipeline
//! needs — supported-clock enumeration, application-clock control, the power
//! sampler, and the total-energy counter — with Rust naming and `Result`
//! error handling instead of `nvmlReturn_t` codes. Units follow NVML: power
//! in milliwatts, energy in millijoules, clocks in MHz.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::device::{Device, LaunchRecord};
use crate::faults::FaultError;
use crate::kernel::KernelProfile;
use crate::spec::{DeviceSpec, Vendor};

/// NVML-style error codes.
#[derive(Debug, Clone, PartialEq)]
pub enum NvmlError {
    /// Device index out of range (`NVML_ERROR_INVALID_ARGUMENT`).
    InvalidIndex(usize),
    /// The device is not an NVIDIA GPU (`NVML_ERROR_NOT_SUPPORTED`).
    NotSupported(String),
    /// Requested memory clock is not supported.
    InvalidMemoryClock(f64),
    /// The driver refused the application-clock change
    /// (`NVML_ERROR_NO_PERMISSION`); the device keeps its previous clocks.
    NoPermission { requested_mhz: f64 },
    /// The device fell off the bus mid-operation
    /// (`NVML_ERROR_GPU_IS_LOST`); the launch did not execute.
    GpuLost(String),
    /// An NVLink port reported a fatal error (the
    /// `NVML_NVLINK_ERROR_DL_*` counter family); the transfer did not
    /// complete and the link stays down.
    LinkLost,
}

impl std::fmt::Display for NvmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvmlError::InvalidIndex(i) => write!(f, "invalid device index {i}"),
            NvmlError::NotSupported(name) => {
                write!(f, "device '{name}' is not managed by NVML")
            }
            NvmlError::InvalidMemoryClock(mhz) => {
                write!(f, "unsupported memory clock {mhz} MHz")
            }
            NvmlError::NoPermission { requested_mhz } => {
                write!(
                    f,
                    "no permission to set application clock {requested_mhz} MHz"
                )
            }
            NvmlError::GpuLost(kernel) => {
                write!(f, "GPU is lost (launching '{kernel}')")
            }
            NvmlError::LinkLost => write!(f, "NVLink fatal error, link down"),
        }
    }
}

impl std::error::Error for NvmlError {}

impl From<FaultError> for NvmlError {
    fn from(e: FaultError) -> Self {
        match e {
            FaultError::FrequencyRejected { requested_mhz } => {
                NvmlError::NoPermission { requested_mhz }
            }
            FaultError::LaunchFailed { kernel } => NvmlError::GpuLost(kernel),
            FaultError::LinkLost => NvmlError::LinkLost,
        }
    }
}

/// The NVML library handle (the `nvmlInit` analogue).
#[derive(Debug, Clone, Default)]
pub struct Nvml {
    devices: Vec<Arc<Mutex<Device>>>,
}

impl Nvml {
    /// Initializes NVML over a set of simulated devices. Non-NVIDIA devices
    /// are accepted but refuse management calls, like a hybrid node.
    pub fn init(devices: Vec<Device>) -> Self {
        Nvml {
            devices: devices
                .into_iter()
                .map(|d| Arc::new(Mutex::new(d)))
                .collect(),
        }
    }

    /// Initializes NVML over shared device handles (for co-management with
    /// other layers, e.g. the `synergy` queue).
    pub fn init_shared(devices: Vec<Arc<Mutex<Device>>>) -> Self {
        Nvml { devices }
    }

    /// `nvmlDeviceGetCount`.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// `nvmlDeviceGetHandleByIndex`.
    pub fn device_by_index(&self, index: usize) -> Result<NvmlDevice, NvmlError> {
        let handle = self
            .devices
            .get(index)
            .ok_or(NvmlError::InvalidIndex(index))?
            .clone();
        let vendor = handle.lock().spec().vendor;
        if vendor != Vendor::Nvidia {
            let name = handle.lock().spec().name.clone();
            return Err(NvmlError::NotSupported(name));
        }
        Ok(NvmlDevice { inner: handle })
    }
}

/// A handle to one NVML-managed device.
#[derive(Debug, Clone)]
pub struct NvmlDevice {
    inner: Arc<Mutex<Device>>,
}

impl NvmlDevice {
    /// Creates a standalone NVML handle over a fresh V100.
    pub fn v100() -> Self {
        NvmlDevice {
            inner: Arc::new(Mutex::new(Device::new(DeviceSpec::v100()))),
        }
    }

    /// Wraps a shared device. The caller must ensure it is an NVIDIA device
    /// (use [`Nvml::device_by_index`] for checked access).
    pub fn from_shared(inner: Arc<Mutex<Device>>) -> Self {
        NvmlDevice { inner }
    }

    /// The underlying shared device handle.
    pub fn shared(&self) -> Arc<Mutex<Device>> {
        self.inner.clone()
    }

    /// Locks the underlying device without cloning the shared handle (the
    /// batch-launch hot path takes this once per batch).
    pub fn lock_device(&self) -> parking_lot::MutexGuard<'_, Device> {
        self.inner.lock()
    }

    /// `nvmlDeviceGetName`.
    pub fn name(&self) -> String {
        self.inner.lock().spec().name.clone()
    }

    /// `nvmlDeviceGetSupportedMemoryClocks`.
    pub fn supported_memory_clocks(&self) -> Vec<f64> {
        self.inner.lock().spec().mem_freqs.as_slice().to_vec()
    }

    /// `nvmlDeviceGetSupportedGraphicsClocks(mem_mhz)`.
    pub fn supported_graphics_clocks(&self, mem_mhz: f64) -> Result<Vec<f64>, NvmlError> {
        let dev = self.inner.lock();
        if !dev.spec().mem_freqs.contains(mem_mhz) {
            return Err(NvmlError::InvalidMemoryClock(mem_mhz));
        }
        Ok(dev.spec().core_freqs.as_slice().to_vec())
    }

    /// `nvmlDeviceSetApplicationsClocks(mem, core)`. Returns the clocks
    /// actually applied (snapped to supported values).
    pub fn set_applications_clocks(
        &self,
        mem_mhz: f64,
        core_mhz: f64,
    ) -> Result<(f64, f64), NvmlError> {
        let mut dev = self.inner.lock();
        if !dev.spec().mem_freqs.contains(mem_mhz) {
            return Err(NvmlError::InvalidMemoryClock(mem_mhz));
        }
        let m = dev.set_mem_mhz(mem_mhz)?;
        let c = dev.set_core_mhz(core_mhz)?;
        Ok((m, c))
    }

    /// `nvmlDeviceSetPowerManagementLimit` — sets (or clears, with `None`)
    /// the operator power cap in watts. Returns the cap actually applied.
    pub fn set_power_management_limit_w(
        &self,
        cap_w: Option<f64>,
    ) -> Result<Option<f64>, NvmlError> {
        self.inner
            .lock()
            .set_power_cap_w(cap_w)
            .map_err(NvmlError::from)
    }

    /// `nvmlDeviceGetPowerManagementLimit` — current cap in watts; `None`
    /// means the board runs at its default TDP limit.
    pub fn power_management_limit_w(&self) -> Option<f64> {
        self.inner.lock().power_cap_w()
    }

    /// `nvmlDeviceResetApplicationsClocks`.
    pub fn reset_applications_clocks(&self) {
        self.inner.lock().reset_clocks();
    }

    /// `nvmlDeviceGetClockInfo(NVML_CLOCK_GRAPHICS)` — current core clock.
    pub fn clock_info_graphics(&self) -> f64 {
        self.inner.lock().core_mhz()
    }

    /// `nvmlDeviceGetClockInfo(NVML_CLOCK_MEM)` — current memory clock.
    pub fn clock_info_memory(&self) -> f64 {
        self.inner.lock().mem_mhz()
    }

    /// `nvmlDeviceGetPowerUsage` — last power sample in **milliwatts**.
    pub fn power_usage_mw(&self) -> u64 {
        (self.inner.lock().power_usage_w() * 1e3).round() as u64
    }

    /// `nvmlDeviceGetTotalEnergyConsumption` — cumulative energy in
    /// **millijoules**.
    pub fn total_energy_consumption_mj(&self) -> u64 {
        (self.inner.lock().energy_counter_j() * 1e3).round() as u64
    }

    /// Executes a kernel at the configured application clocks. Not part of
    /// NVML (which only manages), but the simulator's stand-in for the CUDA
    /// launch the managed device would perform.
    pub fn launch(&self, kernel: &KernelProfile) -> Result<LaunchRecord, NvmlError> {
        self.inner.lock().launch(kernel).map_err(NvmlError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    fn one_v100() -> Nvml {
        Nvml::init(vec![Device::new(DeviceSpec::v100())])
    }

    #[test]
    fn enumerates_devices() {
        let nvml = one_v100();
        assert_eq!(nvml.device_count(), 1);
        assert!(nvml.device_by_index(0).is_ok());
        assert!(matches!(
            nvml.device_by_index(1),
            Err(NvmlError::InvalidIndex(1))
        ));
    }

    #[test]
    fn rejects_amd_devices() {
        let nvml = Nvml::init(vec![Device::new(DeviceSpec::mi100())]);
        match nvml.device_by_index(0) {
            Err(NvmlError::NotSupported(name)) => assert!(name.contains("MI100")),
            other => panic!("expected NotSupported, got {other:?}"),
        }
    }

    #[test]
    fn supported_clocks_match_spec() {
        let dev = one_v100().device_by_index(0).unwrap();
        let mems = dev.supported_memory_clocks();
        assert_eq!(mems, vec![703.0, 810.0, 958.0, 1107.0]);
        let clocks = dev.supported_graphics_clocks(1107.0).unwrap();
        assert_eq!(clocks.len(), 196);
        assert!(dev.supported_graphics_clocks(999.0).is_err());
    }

    #[test]
    fn power_limit_round_trips() {
        let dev = one_v100().device_by_index(0).unwrap();
        assert_eq!(dev.power_management_limit_w(), None);
        assert_eq!(
            dev.set_power_management_limit_w(Some(200.0)).unwrap(),
            Some(200.0)
        );
        assert_eq!(dev.power_management_limit_w(), Some(200.0));
        dev.reset_applications_clocks();
        assert_eq!(dev.power_management_limit_w(), None, "reset clears the cap");
    }

    #[test]
    fn set_clocks_snaps_and_applies() {
        let dev = one_v100().device_by_index(0).unwrap();
        let (m, c) = dev.set_applications_clocks(1107.0, 1000.0).unwrap();
        assert_eq!(m, 1107.0);
        assert_eq!(dev.clock_info_graphics(), c);
        dev.reset_applications_clocks();
        assert!((dev.clock_info_graphics() - 1312.1).abs() < 1.0);
    }

    #[test]
    fn energy_counter_in_millijoules() {
        let dev = NvmlDevice::v100();
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        let rec = dev.launch(&k).unwrap();
        let mj = dev.total_energy_consumption_mj();
        assert!((mj as f64 - rec.energy_j * 1e3).abs() <= 1.0);
    }

    #[test]
    fn power_usage_in_milliwatts() {
        let dev = NvmlDevice::v100();
        let k = KernelProfile::memory_bound("k", 10_000_000, 64.0);
        let rec = dev.launch(&k).unwrap();
        let mw = dev.power_usage_mw();
        assert!((mw as f64 - rec.avg_power_w * 1e3).abs() <= 1.0);
    }

    #[test]
    fn fault_errors_map_to_nvml_codes() {
        use crate::faults::{FaultPlan, Schedule};
        let plan = FaultPlan::none()
            .reject_set_frequency(Schedule::once(0))
            .fail_launches(Schedule::once(0));
        let dev = NvmlDevice::from_shared(Arc::new(Mutex::new(Device::with_faults(
            DeviceSpec::v100(),
            plan,
        ))));
        let before = dev.clock_info_graphics();
        match dev.set_applications_clocks(1107.0, 900.0) {
            Err(NvmlError::NoPermission { requested_mhz }) => {
                assert!((requested_mhz - 900.0).abs() < 15.0)
            }
            other => panic!("expected NoPermission, got {other:?}"),
        }
        assert_eq!(dev.clock_info_graphics(), before);
        let k = KernelProfile::compute_bound("k", 1_000_000, 100.0);
        assert!(matches!(dev.launch(&k), Err(NvmlError::GpuLost(_))));
        // Both fault classes were one-shot: the retries succeed.
        assert!(dev.set_applications_clocks(1107.0, 900.0).is_ok());
        assert!(dev.launch(&k).is_ok());
    }
}
