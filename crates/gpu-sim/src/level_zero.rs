//! Level-Zero-like (Intel oneAPI sysman) management API.
//!
//! Mirrors the subset of the Level Zero Sysman interface SYnergy's Intel
//! backend uses: frequency-domain enumeration and range control
//! (`zesFrequencySetRange`), the energy counter (`zesPowerGetEnergyCounter`,
//! microjoules), and power sampling. Intel GPUs, like AMD ones, have no
//! fixed default clock: the stock configuration is the full frequency range
//! with a firmware governor choosing within it; pinning means collapsing
//! the range to a single bin.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::device::{Device, LaunchRecord};
use crate::faults::FaultError;
use crate::kernel::KernelProfile;
use crate::spec::{DeviceSpec, Vendor};

/// Level-Zero-style error codes.
#[derive(Debug, Clone, PartialEq)]
pub enum ZeError {
    /// Device index out of range (`ZE_RESULT_ERROR_INVALID_ARGUMENT`).
    InvalidIndex(usize),
    /// The device is not an Intel GPU (`ZE_RESULT_ERROR_UNSUPPORTED_FEATURE`).
    Unsupported(String),
    /// An invalid frequency range was requested.
    InvalidRange {
        /// Requested minimum (MHz).
        min_mhz: f64,
        /// Requested maximum (MHz).
        max_mhz: f64,
    },
    /// The firmware refused to apply the requested clock
    /// (`ZE_RESULT_ERROR_NOT_AVAILABLE`); the previous clock is kept.
    NotAvailable { requested_mhz: f64 },
    /// The device dropped off mid-operation
    /// (`ZE_RESULT_ERROR_DEVICE_LOST`); the launch did not execute.
    DeviceLost(String),
    /// A Xe-Link fabric port went down; the transfer did not complete and
    /// the link stays down.
    LinkLost,
}

impl std::fmt::Display for ZeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZeError::InvalidIndex(i) => write!(f, "invalid device index {i}"),
            ZeError::Unsupported(n) => write!(f, "device '{n}' is not managed by Level Zero"),
            ZeError::InvalidRange { min_mhz, max_mhz } => {
                write!(f, "invalid frequency range [{min_mhz}, {max_mhz}] MHz")
            }
            ZeError::NotAvailable { requested_mhz } => {
                write!(f, "clock {requested_mhz} MHz not available right now")
            }
            ZeError::DeviceLost(kernel) => {
                write!(f, "device lost (launching '{kernel}')")
            }
            ZeError::LinkLost => write!(f, "Xe-Link fabric port down"),
        }
    }
}

impl std::error::Error for ZeError {}

impl From<FaultError> for ZeError {
    fn from(e: FaultError) -> Self {
        match e {
            FaultError::FrequencyRejected { requested_mhz } => {
                ZeError::NotAvailable { requested_mhz }
            }
            FaultError::LaunchFailed { kernel } => ZeError::DeviceLost(kernel),
            FaultError::LinkLost => ZeError::LinkLost,
        }
    }
}

/// The driver handle (`zeInit` + `zesDriverGet` analogue).
#[derive(Debug, Clone, Default)]
pub struct ZeDriver {
    devices: Vec<Arc<Mutex<Device>>>,
}

impl ZeDriver {
    /// Initializes the driver over a set of simulated devices.
    pub fn init(devices: Vec<Device>) -> Self {
        ZeDriver {
            devices: devices
                .into_iter()
                .map(|d| Arc::new(Mutex::new(d)))
                .collect(),
        }
    }

    /// Initializes over shared device handles.
    pub fn init_shared(devices: Vec<Arc<Mutex<Device>>>) -> Self {
        ZeDriver { devices }
    }

    /// `zesDeviceGet` count.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Returns a sysman handle for device `index`.
    pub fn device_by_index(&self, index: usize) -> Result<ZeDevice, ZeError> {
        let handle = self
            .devices
            .get(index)
            .ok_or(ZeError::InvalidIndex(index))?
            .clone();
        let vendor = handle.lock().spec().vendor;
        if vendor != Vendor::Intel {
            let name = handle.lock().spec().name.clone();
            return Err(ZeError::Unsupported(name));
        }
        Ok(ZeDevice::from_shared(handle))
    }
}

/// A sysman handle to one Intel device.
#[derive(Debug, Clone)]
pub struct ZeDevice {
    inner: Arc<Mutex<Device>>,
    /// The active frequency range `[min, max]` (MHz). Stock = full range.
    range: (f64, f64),
}

impl ZeDevice {
    /// A standalone handle over a fresh Max 1100 at the stock range.
    pub fn max1100() -> Self {
        ZeDevice::from_shared(Arc::new(Mutex::new(Device::new(DeviceSpec::max1100()))))
    }

    /// Wraps a shared device (caller guarantees it is an Intel device).
    pub fn from_shared(inner: Arc<Mutex<Device>>) -> Self {
        let range = {
            let dev = inner.lock();
            (dev.spec().min_core_mhz(), dev.spec().max_core_mhz())
        };
        ZeDevice { inner, range }
    }

    /// The underlying shared device handle.
    pub fn shared(&self) -> Arc<Mutex<Device>> {
        self.inner.clone()
    }

    /// Locks the underlying device without cloning the shared handle (the
    /// batch-launch hot path takes this once per batch).
    pub fn lock_device(&self) -> parking_lot::MutexGuard<'_, Device> {
        self.inner.lock()
    }

    /// `zesDeviceGetProperties` — device name.
    pub fn name(&self) -> String {
        self.inner.lock().spec().name.clone()
    }

    /// `zesFrequencyGetAvailableClocks` — the supported core clocks.
    pub fn available_clocks(&self) -> Vec<f64> {
        self.inner.lock().spec().core_freqs.as_slice().to_vec()
    }

    /// `zesFrequencyGetRange` — the active `[min, max]` range (MHz).
    pub fn frequency_range(&self) -> (f64, f64) {
        self.range
    }

    /// `zesFrequencySetRange`: constrains the governor to `[min, max]`.
    /// Pinning a clock is `set_frequency_range(f, f)`. Both endpoints snap
    /// to supported clocks; returns the applied range.
    pub fn set_frequency_range(
        &mut self,
        min_mhz: f64,
        max_mhz: f64,
    ) -> Result<(f64, f64), ZeError> {
        if !(min_mhz.is_finite() && max_mhz.is_finite()) || min_mhz > max_mhz || min_mhz <= 0.0 {
            return Err(ZeError::InvalidRange { min_mhz, max_mhz });
        }
        let dev = self.inner.lock();
        let lo = dev.spec().core_freqs.snap(min_mhz);
        let hi = dev.spec().core_freqs.snap(max_mhz);
        drop(dev);
        if lo > hi {
            return Err(ZeError::InvalidRange { min_mhz, max_mhz });
        }
        self.range = (lo, hi);
        Ok(self.range)
    }

    /// Restores the stock (full) range.
    pub fn reset_frequency_range(&mut self) {
        let dev = self.inner.lock();
        self.range = (dev.spec().min_core_mhz(), dev.spec().max_core_mhz());
    }

    /// `zesFrequencyGetAvailableClocks` on the memory domain — the
    /// supported memory clocks.
    pub fn available_memory_clocks(&self) -> Vec<f64> {
        self.inner.lock().spec().mem_freqs.as_slice().to_vec()
    }

    /// `zesFrequencySetRange` on the memory domain, pinned form: sets the
    /// memory clock (snapping to a supported bin) and returns the applied
    /// frequency.
    pub fn set_memory_frequency(&mut self, mem_mhz: f64) -> Result<f64, ZeError> {
        if !mem_mhz.is_finite() || mem_mhz <= 0.0 {
            return Err(ZeError::InvalidRange {
                min_mhz: mem_mhz,
                max_mhz: mem_mhz,
            });
        }
        self.inner
            .lock()
            .set_mem_mhz(mem_mhz)
            .map_err(ZeError::from)
    }

    /// `zesPowerSetLimits` analogue — sets (or clears, with `None`) the
    /// sustained power limit in watts.
    pub fn set_power_limit_w(&mut self, cap_w: Option<f64>) -> Result<Option<f64>, ZeError> {
        self.inner
            .lock()
            .set_power_cap_w(cap_w)
            .map_err(ZeError::from)
    }

    /// `zesPowerGetLimits` analogue — current sustained limit in watts.
    pub fn power_limit_w(&self) -> Option<f64> {
        self.inner.lock().power_cap_w()
    }

    /// The frequency the firmware governor actually runs a loaded kernel
    /// at: its preferred sustained clock, clamped into the active range.
    pub fn governor_frequency(&self) -> f64 {
        let dev = self.inner.lock();
        dev.spec()
            .default_core_mhz
            .clamp(self.range.0, self.range.1)
    }

    /// `zesPowerGetEnergyCounter` — cumulative energy in **microjoules**.
    pub fn energy_counter_uj(&self) -> u64 {
        (self.inner.lock().energy_counter_j() * 1e6).round() as u64
    }

    /// Last power sample in **milliwatts** (`zesPowerGetProperties` +
    /// sampling analogue).
    pub fn power_mw(&self) -> u64 {
        (self.inner.lock().power_usage_w() * 1e3).round() as u64
    }

    /// Executes a kernel at the governor-selected clock within the active
    /// range (the simulator stand-in for a SYCL launch on this device).
    pub fn launch(&self, kernel: &KernelProfile) -> Result<LaunchRecord, ZeError> {
        let f = self.governor_frequency();
        self.inner
            .lock()
            .launch_at(kernel, f)
            .map_err(ZeError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_and_rejects_other_vendors() {
        let drv = ZeDriver::init(vec![
            Device::new(DeviceSpec::max1100()),
            Device::new(DeviceSpec::v100()),
        ]);
        assert_eq!(drv.device_count(), 2);
        assert!(drv.device_by_index(0).is_ok());
        assert!(matches!(
            drv.device_by_index(1),
            Err(ZeError::Unsupported(_))
        ));
        assert!(matches!(
            drv.device_by_index(9),
            Err(ZeError::InvalidIndex(9))
        ));
    }

    #[test]
    fn stock_range_is_full_table() {
        let dev = ZeDevice::max1100();
        let (lo, hi) = dev.frequency_range();
        assert_eq!(lo, 300.0);
        assert_eq!(hi, 1550.0);
        assert_eq!(dev.governor_frequency(), 1450.0);
    }

    #[test]
    fn range_pinning_snaps_and_governs() {
        let mut dev = ZeDevice::max1100();
        let (lo, hi) = dev.set_frequency_range(912.0, 912.0).unwrap();
        assert_eq!(lo, hi);
        assert!(dev.available_clocks().contains(&lo));
        assert_eq!(dev.governor_frequency(), lo);
        let rec = dev
            .launch(&KernelProfile::compute_bound("k", 1 << 20, 200.0))
            .unwrap();
        assert_eq!(rec.core_mhz, lo);
    }

    #[test]
    fn capping_the_range_caps_the_governor() {
        let mut dev = ZeDevice::max1100();
        dev.set_frequency_range(300.0, 1000.0).unwrap();
        assert!(dev.governor_frequency() <= 1000.0);
        dev.reset_frequency_range();
        assert_eq!(dev.governor_frequency(), 1450.0);
    }

    #[test]
    fn invalid_ranges_rejected() {
        let mut dev = ZeDevice::max1100();
        assert!(dev.set_frequency_range(1000.0, 500.0).is_err());
        assert!(dev.set_frequency_range(f64::NAN, 1000.0).is_err());
        assert!(dev.set_frequency_range(-5.0, 1000.0).is_err());
    }

    #[test]
    fn memory_domain_and_power_limit_round_trip() {
        let mut dev = ZeDevice::max1100();
        assert_eq!(dev.available_memory_clocks(), vec![1046.0, 1305.0, 1565.0]);
        let applied = dev.set_memory_frequency(1200.0).unwrap();
        assert_eq!(applied, 1305.0, "snaps to a supported bin");
        assert!(dev.set_memory_frequency(-1.0).is_err());
        assert_eq!(dev.set_power_limit_w(Some(250.0)).unwrap(), Some(250.0));
        assert_eq!(dev.power_limit_w(), Some(250.0));
        assert_eq!(dev.set_power_limit_w(None).unwrap(), None);
    }

    #[test]
    fn energy_counter_microjoules() {
        let dev = ZeDevice::max1100();
        let k = KernelProfile::memory_bound("k", 10_000_000, 64.0);
        let rec = dev.launch(&k).unwrap();
        let uj = dev.energy_counter_uj();
        assert!((uj as f64 - rec.energy_j * 1e6).abs() <= 1.0);
        assert!(dev.power_mw() > 0);
    }

    #[test]
    fn fault_errors_map_to_ze_codes() {
        use crate::faults::{FaultPlan, Schedule};
        let plan = FaultPlan::none()
            .reject_set_frequency(Schedule::once(0))
            .fail_launches(Schedule::once(1));
        let mut dev = ZeDevice::from_shared(Arc::new(Mutex::new(Device::with_faults(
            DeviceSpec::max1100(),
            plan,
        ))));
        // Pin to a non-default clock so the launch issues a clock request.
        dev.set_frequency_range(912.0, 912.0).unwrap();
        let k = KernelProfile::compute_bound("k", 1 << 20, 200.0);
        assert!(matches!(dev.launch(&k), Err(ZeError::NotAvailable { .. })));
        // Launch index 0 completed? No — the rejected launch never ran, so
        // the next attempt is still launch index 0; retry succeeds, and the
        // following attempt trips the scheduled launch failure at index 1.
        assert!(dev.launch(&k).is_ok());
        assert!(matches!(dev.launch(&k), Err(ZeError::DeviceLost(_))));
        assert!(dev.launch(&k).is_ok());
    }
}
