//! CMOS power model.
//!
//! Average power during a kernel body is modelled as
//!
//! ```text
//! P = P_idle
//!   + P_core_max · dyn_scale(f) · (gating_floor + (1-gating_floor) · act_c · occ_mix)
//!   + P_mem_max  · (mem_floor  + (1-mem_floor)  · act_m · bw_util)
//! ```
//!
//! `dyn_scale(f) = (V(f)/V_max)² · f/f_max` is the classic CMOS dynamic-power
//! factor ([`crate::voltage::dynamic_scale`]). The gating floor models
//! imperfect clock gating: even when the compute pipes stall on memory, the
//! clock tree and issue logic keep switching, so core power still falls with
//! `V²·f` — this is precisely why down-clocking a *memory-bound* kernel saves
//! energy (Cronos, §3.1 of the paper) while barely affecting runtime.

use serde::{Deserialize, Serialize};

use crate::kernel::KernelProfile;
use crate::spec::DeviceSpec;
use crate::timing::{kernel_timing, TimingBreakdown};
use crate::voltage::dynamic_scale;

/// How strongly the memory power *floor* (refresh, PHY, controller clocks)
/// follows the memory clock: at memory-clock scale `s = mem_mhz / mem_max`
/// the floor draws `floor · (1 − κ·(1−s))` of its top-clock value. The
/// dynamic (bandwidth-tracking) component scales fully with `s`; the floor
/// only partially, because DRAM refresh and rail leakage survive a
/// down-clock. κ = 0 reproduces the old clock-blind floor; κ = 1 scales it
/// fully. At `s = 1` the factor is exactly `1.0`, bit-preserving the
/// top-memory-clock power.
pub const MEM_FLOOR_CLOCK_SENSITIVITY: f64 = 0.6;

/// Average-power breakdown for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Total average power over the kernel body (W).
    pub total_w: f64,
    /// Idle/static component (W).
    pub idle_w: f64,
    /// Core dynamic component (W).
    pub core_w: f64,
    /// Memory subsystem component (W).
    pub mem_w: f64,
}

/// Average power *demand* while executing a kernel with the given timing
/// breakdown at `core_mhz` / `mem_mhz`. This is the raw CMOS model — it is
/// **not** clamped to the board power limit. A real board never reports
/// power above its cap; it *throttles the clock* until demand fits, which
/// stretches the kernel body. [`resolve_power_cap`] models that firmware
/// loop; the old behaviour here (silently `min`-ing `total_w` with the TDP
/// while keeping full-clock timing) gave capped kernels free energy savings
/// with no runtime penalty.
pub fn kernel_power(
    spec: &DeviceSpec,
    timing: &TimingBreakdown,
    core_mhz: f64,
    mem_mhz: f64,
) -> PowerBreakdown {
    assert!(core_mhz > 0.0, "core frequency must be positive");
    assert!(mem_mhz > 0.0, "memory frequency must be positive");
    let dyn_scale = dynamic_scale(spec, core_mhz);

    // Occupancy gates how many SMs actually switch: idle SMs are
    // clock-gated, so an almost-empty launch only lights up a fraction of
    // the chip ([`crate::timing::occupancy`] already encodes the
    // logarithmic rise of chip activity with launch size); the gating
    // floor then applies *within* the active SMs.
    let lam = spec.occ_amplitude;
    let occ_mix = (1.0 - lam) + lam * timing.occupancy;
    let gf = spec.clock_gating_floor;
    let core_activity = occ_mix * (gf + (1.0 - gf) * timing.comp_activity);
    let core_w = spec.core_power_w * dyn_scale * core_activity;

    let mf = spec.mem_power_floor;
    // Memory power follows the achieved memory clock as well as achieved
    // bandwidth. `s` scales the dynamic (activity) component linearly —
    // HBM switching energy per transfer is ∝ f_mem at fixed I/O voltage —
    // and the floor partially (κ): down-clocking memory saves real power
    // even for compute-bound kernels that barely touch DRAM. At the top
    // memory clock `s == 1.0` and both factors are exact no-ops, keeping
    // single-memory-point sweeps bit-identical.
    let s = mem_mhz / spec.mem_freqs.max();
    let floor_scale = 1.0 - MEM_FLOOR_CLOCK_SENSITIVITY * (1.0 - s);
    let mem_activity = mf * floor_scale + (1.0 - mf) * timing.mem_activity * occ_mix * s;
    let mem_w = spec.mem_power_w * mem_activity;

    // Static/idle power rises with the pinned voltage and clock (leakage ∝
    // V, global clock distribution ∝ V²f): a V100 idling at its top
    // application clocks draws roughly twice its minimum-clock idle power.
    let idle_w = spec.idle_power_w * (0.55 + 0.45 * dyn_scale);

    let total_w = idle_w + core_w + mem_w;
    PowerBreakdown {
        total_w,
        idle_w,
        core_w,
        mem_w,
    }
}

/// Energy (J) for a launch, split into its two phases: the kernel *body*
/// runs at [`kernel_power`], while the launch-overhead window (host
/// submission + pipeline fill) leaves the chip near its clock-dependent
/// idle floor. Charging body power across the overhead would grossly
/// inflate tiny launches — which are precisely the workloads whose energy
/// behaviour the paper's small-input experiments probe.
pub fn kernel_energy(
    spec: &DeviceSpec,
    timing: &TimingBreakdown,
    core_mhz: f64,
    mem_mhz: f64,
) -> f64 {
    let p = kernel_power(spec, timing, core_mhz, mem_mhz);
    energy_from_parts(spec, timing, &p)
}

/// The phase-split energy integral for an already-computed power breakdown.
/// Factored out so the cap resolver can price a launch without evaluating
/// the power model twice.
pub fn energy_from_parts(spec: &DeviceSpec, timing: &TimingBreakdown, p: &PowerBreakdown) -> f64 {
    let body_s = (timing.total_s - timing.overhead_s).max(0.0);
    let overhead_power = p.idle_w + spec.mem_power_floor * spec.mem_power_w;
    p.total_w * body_s + overhead_power * timing.overhead_s
}

/// A launch configuration after firmware power-cap enforcement: the
/// effective core clock, its timing and power, and whether the cap bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapResolution {
    /// Effective core clock the kernel body runs at (MHz).
    pub core_mhz: f64,
    /// Timing at the effective clock — a binding cap *stretches* the body.
    pub timing: TimingBreakdown,
    /// Power at the effective clock.
    pub power: PowerBreakdown,
    /// True when the cap forced the effective clock below the request.
    pub throttled: bool,
}

/// Resolves the effective core clock under the board power limit, the way
/// GPU firmware does: if the power demand at the requested clock exceeds
/// the cap, step down the supported-frequency table until demand fits (or
/// the bottom of the table is reached — at the minimum clock the cap can
/// physically be exceeded, matching real boards whose floor power is above
/// an aggressive `nvidia-smi -pl` setting). Work is conserved: the body
/// runs longer at the lower clock instead of getting free energy.
///
/// The enforced limit is `min(spec.tdp_w, cap_w)` — the TDP is always on;
/// `cap_w` models an operator-set limit below it. When the cap does not
/// bind, the resolution is exactly the requested (snapped) clock with
/// untouched timing/power, so uncapped sweeps stay bit-identical.
pub fn resolve_power_cap(
    spec: &DeviceSpec,
    kernel: &KernelProfile,
    core_mhz: f64,
    mem_mhz: f64,
    cap_w: Option<f64>,
) -> CapResolution {
    let limit = match cap_w {
        Some(c) => c.min(spec.tdp_w),
        None => spec.tdp_w,
    };
    let mut idx = spec.core_freqs.snap_index(core_mhz);
    let requested = spec.core_freqs.as_slice()[idx];
    loop {
        let f = spec.core_freqs.as_slice()[idx];
        let timing = kernel_timing(spec, kernel, f, mem_mhz);
        let power = kernel_power(spec, &timing, f, mem_mhz);
        if power.total_w <= limit || idx == 0 {
            return CapResolution {
                core_mhz: f,
                timing,
                power,
                throttled: f < requested,
            };
        }
        idx -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelProfile;
    use crate::spec::DeviceSpec;
    use crate::timing::kernel_timing;

    fn run(spec: &DeviceSpec, k: &KernelProfile, f: f64) -> (TimingBreakdown, PowerBreakdown) {
        let m = spec.mem_freqs.max();
        let t = kernel_timing(spec, k, f, m);
        let p = kernel_power(spec, &t, f, m);
        (t, p)
    }

    #[test]
    fn power_within_physical_envelope() {
        // The physical envelope is enforced by the firmware throttle loop,
        // not by the raw demand model: a saturating kernel's *demand* at the
        // top clock may exceed the TDP, but the clock the body actually runs
        // at keeps reported power within the limit (unless pinned at the
        // minimum clock, which these kernels are not).
        let spec = DeviceSpec::v100();
        let tdp = spec.tdp_w;
        let mem = spec.mem_freqs.max();
        for k in [
            KernelProfile::compute_bound("cb", 50_000_000, 100.0),
            KernelProfile::memory_bound("mb", 50_000_000, 64.0),
        ] {
            for f in spec.core_freqs.strided(20) {
                let r = resolve_power_cap(&spec, &k, f, mem, None);
                assert!(r.power.total_w >= spec.idle_power_w, "below idle floor");
                assert!(
                    r.power.total_w <= tdp * 1.001,
                    "exceeds TDP: {}",
                    r.power.total_w
                );
                assert!(r.core_mhz <= spec.core_freqs.snap(f));
            }
        }
    }

    #[test]
    fn raw_demand_can_exceed_tdp_and_throttle_resolves_it() {
        // The demand model is unclamped by design: at the top clock a hot
        // compute-bound V100 kernel asks for more than 300 W. The resolver
        // must report `throttled` and land strictly below the request.
        let spec = DeviceSpec::v100();
        let k = KernelProfile::compute_bound("cb", 100_000_000, 200.0);
        let f_max = spec.max_core_mhz();
        let (_, raw) = run(&spec, &k, f_max);
        assert!(
            raw.total_w > spec.tdp_w,
            "demand should exceed TDP at f_max"
        );
        let r = resolve_power_cap(&spec, &k, f_max, spec.mem_freqs.max(), None);
        assert!(r.throttled);
        assert!(r.core_mhz < f_max);
        assert!(r.power.total_w <= spec.tdp_w);
    }

    #[test]
    fn power_monotone_in_frequency() {
        let spec = DeviceSpec::v100();
        let k = KernelProfile::compute_bound("cb", 50_000_000, 100.0);
        let mut prev = 0.0;
        for f in spec.core_freqs.strided(10) {
            let (_, p) = run(&spec, &k, f);
            assert!(p.total_w >= prev - 1e-9, "power must rise with f");
            prev = p.total_w;
        }
    }

    #[test]
    fn full_load_near_tdp_at_max_clock() {
        let spec = DeviceSpec::v100();
        // A kernel that is simultaneously compute- and memory-saturated.
        let k = KernelProfile::new(
            "burn",
            200_000_000,
            crate::kernel::OpMix {
                float_add: 150.0,
                float_mul: 150.0,
                global_access: 5.0,
                ..Default::default()
            },
        );
        let r = resolve_power_cap(&spec, &k, spec.max_core_mhz(), spec.mem_freqs.max(), None);
        let tdp = spec.tdp_w;
        assert!(
            r.power.total_w > 0.75 * tdp,
            "saturating kernel should be near TDP, got {} of {}",
            r.power.total_w,
            tdp
        );
    }

    #[test]
    fn compute_bound_mem_downclock_saves_energy_at_no_slowdown() {
        // The mem-clock blind spot regression: on a compute-bound kernel,
        // down-clocking *memory* must save energy (floor + residual dynamic
        // memory power both shrink) at essentially no runtime cost, because
        // the body is limited by the compute pipes, not bandwidth.
        let spec = DeviceSpec::v100();
        // High arithmetic intensity (2000 flops per 8 bytes) so the memory
        // pipe is genuinely idle-ish: mem activity is tiny and the runtime
        // barely notices the slower memory clock.
        let k = KernelProfile::compute_bound("cb", 100_000_000, 2000.0);
        let f = spec.default_core_mhz;
        let m_hi = spec.mem_freqs.max();
        let m_lo = spec.mem_freqs.min();
        assert!(m_lo < m_hi, "spec must expose a real memory-clock axis");
        let t_hi = kernel_timing(&spec, &k, f, m_hi);
        let t_lo = kernel_timing(&spec, &k, f, m_lo);
        let e_hi = kernel_energy(&spec, &t_hi, f, m_hi);
        let e_lo = kernel_energy(&spec, &t_lo, f, m_lo);
        assert!(
            e_lo < e_hi,
            "mem down-clock on a compute-bound kernel must save energy \
             (got {e_lo:.3} vs {e_hi:.3})"
        );
        assert!(
            t_lo.total_s < t_hi.total_s * 1.02,
            "with ~no slowdown (got {} vs {})",
            t_lo.total_s,
            t_hi.total_s
        );
    }

    #[test]
    fn mem_power_scales_with_mem_clock() {
        let spec = DeviceSpec::v100();
        let k = KernelProfile::memory_bound("mb", 50_000_000, 64.0);
        let f = spec.default_core_mhz;
        let m_hi = spec.mem_freqs.max();
        let m_lo = spec.mem_freqs.min();
        let t_hi = kernel_timing(&spec, &k, f, m_hi);
        let t_lo = kernel_timing(&spec, &k, f, m_lo);
        let p_hi = kernel_power(&spec, &t_hi, f, m_hi);
        let p_lo = kernel_power(&spec, &t_lo, f, m_lo);
        assert!(
            p_lo.mem_w < p_hi.mem_w,
            "memory power must fall with the memory clock ({} vs {})",
            p_lo.mem_w,
            p_hi.mem_w
        );
        // Floor survives: power does not collapse to zero.
        assert!(p_lo.mem_w > 0.25 * p_hi.mem_w);
    }

    fn capped_cost(
        spec: &DeviceSpec,
        k: &KernelProfile,
        f: f64,
        cap: Option<f64>,
    ) -> (f64, f64, CapResolution) {
        let r = resolve_power_cap(spec, k, f, spec.mem_freqs.max(), cap);
        let e = energy_from_parts(spec, &r.timing, &r.power);
        (r.timing.total_s, e, r)
    }

    #[test]
    fn binding_cap_stretches_runtime_and_respects_limit() {
        let spec = DeviceSpec::v100();
        let k = KernelProfile::compute_bound("cb", 100_000_000, 200.0);
        let f = spec.max_core_mhz();
        let (t_unc, _, r_unc) = capped_cost(&spec, &k, f, None);
        let (t_cap, _, r_cap) = capped_cost(&spec, &k, f, Some(180.0));
        assert!(r_cap.throttled, "a 180 W cap must bind on a hot kernel");
        assert!(
            t_cap > t_unc,
            "a binding cap must stretch runtime ({t_cap} vs {t_unc}); no free lunch"
        );
        assert!(r_cap.power.total_w <= 180.0 + 1e-9);
        assert!(r_cap.core_mhz < r_unc.core_mhz);
    }

    #[test]
    fn cap_energy_and_runtime_bounds() {
        // Property sweep over a grid of caps: capped runtime is monotone
        // non-increasing in the cap, capped runtime ≥ uncapped runtime,
        // reported body power ≤ cap unless pinned at the minimum clock, and
        // a non-binding cap is bit-identical to no cap at all.
        let spec = DeviceSpec::v100();
        for k in [
            KernelProfile::compute_bound("cb", 100_000_000, 200.0),
            KernelProfile::memory_bound("mb", 100_000_000, 64.0),
        ] {
            let f = spec.max_core_mhz();
            let (t_unc, e_unc, _) = capped_cost(&spec, &k, f, None);
            let mut prev_t = f64::INFINITY;
            for cap in [60.0, 90.0, 120.0, 150.0, 180.0, 210.0, 240.0, 270.0, 300.0] {
                let (t_cap, e_cap, r) = capped_cost(&spec, &k, f, Some(cap));
                assert!(
                    t_cap >= t_unc - 1e-15,
                    "capped runtime can never beat uncapped ({t_cap} vs {t_unc})"
                );
                assert!(
                    t_cap <= prev_t + 1e-15,
                    "runtime must be monotone non-increasing in the cap"
                );
                prev_t = t_cap;
                let at_floor = r.core_mhz == spec.min_core_mhz();
                assert!(
                    r.power.total_w <= cap.min(spec.tdp_w) + 1e-9 || at_floor,
                    "power {} exceeds cap {} away from the clock floor",
                    r.power.total_w,
                    cap
                );
                if !r.throttled {
                    // Non-binding cap: bit-identical to the uncapped launch.
                    assert_eq!(t_cap.to_bits(), t_unc.to_bits());
                    assert_eq!(e_cap.to_bits(), e_unc.to_bits());
                }
            }
            // Generous cap at exactly TDP equals the uncapped resolution.
            let (t_tdp, e_tdp, _) = capped_cost(&spec, &k, f, Some(spec.tdp_w));
            assert_eq!(t_tdp.to_bits(), t_unc.to_bits());
            assert_eq!(e_tdp.to_bits(), e_unc.to_bits());
        }
    }

    #[test]
    fn impossible_cap_pins_minimum_clock() {
        let spec = DeviceSpec::v100();
        let k = KernelProfile::compute_bound("cb", 100_000_000, 200.0);
        // 10 W is below the idle floor: the resolver must pin the minimum
        // supported clock rather than spin or panic; power may exceed the
        // cap there (physical floor).
        let r = resolve_power_cap(
            &spec,
            &k,
            spec.max_core_mhz(),
            spec.mem_freqs.max(),
            Some(10.0),
        );
        assert_eq!(r.core_mhz, spec.min_core_mhz());
        assert!(r.throttled);
        assert!(r.power.total_w > 10.0);
    }

    #[test]
    fn memory_bound_downclock_saves_energy() {
        let spec = DeviceSpec::v100();
        let k = KernelProfile::memory_bound("mb", 100_000_000, 64.0);
        let mem = spec.mem_freqs.max();
        let (t_def, _) = run(&spec, &k, spec.default_core_mhz);
        let (t_lo, _) = run(&spec, &k, 900.0);
        let e_def = kernel_energy(&spec, &t_def, spec.default_core_mhz, mem);
        let e_lo = kernel_energy(&spec, &t_lo, 900.0, mem);
        assert!(
            e_lo < e_def * 0.9,
            "down-clocking a memory-bound kernel must save >10% energy \
             (got {e_lo:.3} vs {e_def:.3})"
        );
        assert!(t_lo.total_s < t_def.total_s * 1.05, "with minimal slowdown");
    }

    #[test]
    fn compute_bound_has_interior_energy_minimum() {
        // For a compute-bound kernel, energy falls as V² while above the
        // voltage knee, then rises as static energy dominates — so the
        // minimum must be strictly inside the frequency range.
        let spec = DeviceSpec::v100();
        let k = KernelProfile::compute_bound("cb", 100_000_000, 200.0);
        let energies: Vec<(f64, f64)> = spec
            .core_freqs
            .iter()
            .map(|f| {
                let (t, _) = run(&spec, &k, f);
                (f, kernel_energy(&spec, &t, f, spec.mem_freqs.max()))
            })
            .collect();
        let (f_min, _) = energies
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert!(f_min > spec.min_core_mhz() + 1.0, "minimum not at bottom");
        assert!(f_min < spec.max_core_mhz() - 1.0, "minimum not at top");
    }

    #[test]
    fn low_occupancy_draws_less_power() {
        let spec = DeviceSpec::v100();
        let big = KernelProfile::compute_bound("b", 50_000_000, 100.0);
        let tiny = KernelProfile::compute_bound("t", 5_000, 100.0);
        let (_, p_big) = run(&spec, &big, spec.default_core_mhz);
        let (_, p_tiny) = run(&spec, &tiny, spec.default_core_mhz);
        assert!(p_tiny.total_w < p_big.total_w);
    }
}
