//! CMOS power model.
//!
//! Average power during a kernel body is modelled as
//!
//! ```text
//! P = P_idle
//!   + P_core_max · dyn_scale(f) · (gating_floor + (1-gating_floor) · act_c · occ_mix)
//!   + P_mem_max  · (mem_floor  + (1-mem_floor)  · act_m · bw_util)
//! ```
//!
//! `dyn_scale(f) = (V(f)/V_max)² · f/f_max` is the classic CMOS dynamic-power
//! factor ([`crate::voltage::dynamic_scale`]). The gating floor models
//! imperfect clock gating: even when the compute pipes stall on memory, the
//! clock tree and issue logic keep switching, so core power still falls with
//! `V²·f` — this is precisely why down-clocking a *memory-bound* kernel saves
//! energy (Cronos, §3.1 of the paper) while barely affecting runtime.

use serde::{Deserialize, Serialize};

use crate::spec::DeviceSpec;
use crate::timing::TimingBreakdown;
use crate::voltage::dynamic_scale;

/// Average-power breakdown for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Total average power over the kernel body (W).
    pub total_w: f64,
    /// Idle/static component (W).
    pub idle_w: f64,
    /// Core dynamic component (W).
    pub core_w: f64,
    /// Memory subsystem component (W).
    pub mem_w: f64,
}

/// Average power drawn while executing a kernel with the given timing
/// breakdown at core frequency `core_mhz`.
pub fn kernel_power(spec: &DeviceSpec, timing: &TimingBreakdown, core_mhz: f64) -> PowerBreakdown {
    assert!(core_mhz > 0.0, "core frequency must be positive");
    let dyn_scale = dynamic_scale(spec, core_mhz);

    // Occupancy gates how many SMs actually switch: idle SMs are
    // clock-gated, so an almost-empty launch only lights up a fraction of
    // the chip ([`crate::timing::occupancy`] already encodes the
    // logarithmic rise of chip activity with launch size); the gating
    // floor then applies *within* the active SMs.
    let lam = spec.occ_amplitude;
    let occ_mix = (1.0 - lam) + lam * timing.occupancy;
    let gf = spec.clock_gating_floor;
    let core_activity = occ_mix * (gf + (1.0 - gf) * timing.comp_activity);
    let core_w = spec.core_power_w * dyn_scale * core_activity;

    let mf = spec.mem_power_floor;
    // Memory power follows achieved bandwidth; activity already encodes how
    // much of the body the memory system is busy.
    let mem_activity = mf + (1.0 - mf) * timing.mem_activity * occ_mix;
    let mem_w = spec.mem_power_w * mem_activity;

    // Static/idle power rises with the pinned voltage and clock (leakage ∝
    // V, global clock distribution ∝ V²f): a V100 idling at its top
    // application clocks draws roughly twice its minimum-clock idle power.
    let idle_w = spec.idle_power_w * (0.55 + 0.45 * dyn_scale);

    // The board firmware enforces the power limit (TDP clamp).
    let total_w = (idle_w + core_w + mem_w).min(spec.tdp_w);
    PowerBreakdown {
        total_w,
        idle_w,
        core_w,
        mem_w,
    }
}

/// Energy (J) for a launch, split into its two phases: the kernel *body*
/// runs at [`kernel_power`], while the launch-overhead window (host
/// submission + pipeline fill) leaves the chip near its clock-dependent
/// idle floor. Charging body power across the overhead would grossly
/// inflate tiny launches — which are precisely the workloads whose energy
/// behaviour the paper's small-input experiments probe.
pub fn kernel_energy(spec: &DeviceSpec, timing: &TimingBreakdown, core_mhz: f64) -> f64 {
    let p = kernel_power(spec, timing, core_mhz);
    let body_s = (timing.total_s - timing.overhead_s).max(0.0);
    let overhead_power = p.idle_w + spec.mem_power_floor * spec.mem_power_w;
    p.total_w * body_s + overhead_power * timing.overhead_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelProfile;
    use crate::spec::DeviceSpec;
    use crate::timing::kernel_timing;

    fn run(spec: &DeviceSpec, k: &KernelProfile, f: f64) -> (TimingBreakdown, PowerBreakdown) {
        let t = kernel_timing(spec, k, f, spec.mem_freqs.max());
        let p = kernel_power(spec, &t, f);
        (t, p)
    }

    #[test]
    fn power_within_physical_envelope() {
        let spec = DeviceSpec::v100();
        let tdp = spec.tdp_w;
        for k in [
            KernelProfile::compute_bound("cb", 50_000_000, 100.0),
            KernelProfile::memory_bound("mb", 50_000_000, 64.0),
        ] {
            for f in spec.core_freqs.strided(20) {
                let (_, p) = run(&spec, &k, f);
                assert!(p.total_w >= spec.idle_power_w, "below idle floor");
                assert!(p.total_w <= tdp * 1.001, "exceeds TDP: {}", p.total_w);
            }
        }
    }

    #[test]
    fn power_monotone_in_frequency() {
        let spec = DeviceSpec::v100();
        let k = KernelProfile::compute_bound("cb", 50_000_000, 100.0);
        let mut prev = 0.0;
        for f in spec.core_freqs.strided(10) {
            let (_, p) = run(&spec, &k, f);
            assert!(p.total_w >= prev - 1e-9, "power must rise with f");
            prev = p.total_w;
        }
    }

    #[test]
    fn full_load_near_tdp_at_max_clock() {
        let spec = DeviceSpec::v100();
        // A kernel that is simultaneously compute- and memory-saturated.
        let k = KernelProfile::new(
            "burn",
            200_000_000,
            crate::kernel::OpMix {
                float_add: 150.0,
                float_mul: 150.0,
                global_access: 5.0,
                ..Default::default()
            },
        );
        let (_, p) = run(&spec, &k, spec.max_core_mhz());
        let tdp = spec.tdp_w;
        assert!(
            p.total_w > 0.75 * tdp,
            "saturating kernel should be near TDP, got {} of {}",
            p.total_w,
            tdp
        );
    }

    #[test]
    fn memory_bound_downclock_saves_energy() {
        let spec = DeviceSpec::v100();
        let k = KernelProfile::memory_bound("mb", 100_000_000, 64.0);
        let (t_def, _) = run(&spec, &k, spec.default_core_mhz);
        let (t_lo, _) = run(&spec, &k, 900.0);
        let e_def = kernel_energy(&spec, &t_def, spec.default_core_mhz);
        let e_lo = kernel_energy(&spec, &t_lo, 900.0);
        assert!(
            e_lo < e_def * 0.9,
            "down-clocking a memory-bound kernel must save >10% energy \
             (got {e_lo:.3} vs {e_def:.3})"
        );
        assert!(t_lo.total_s < t_def.total_s * 1.05, "with minimal slowdown");
    }

    #[test]
    fn compute_bound_has_interior_energy_minimum() {
        // For a compute-bound kernel, energy falls as V² while above the
        // voltage knee, then rises as static energy dominates — so the
        // minimum must be strictly inside the frequency range.
        let spec = DeviceSpec::v100();
        let k = KernelProfile::compute_bound("cb", 100_000_000, 200.0);
        let energies: Vec<(f64, f64)> = spec
            .core_freqs
            .iter()
            .map(|f| {
                let (t, _) = run(&spec, &k, f);
                (f, kernel_energy(&spec, &t, f))
            })
            .collect();
        let (f_min, _) = energies
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert!(f_min > spec.min_core_mhz() + 1.0, "minimum not at bottom");
        assert!(f_min < spec.max_core_mhz() - 1.0, "minimum not at top");
    }

    #[test]
    fn low_occupancy_draws_less_power() {
        let spec = DeviceSpec::v100();
        let big = KernelProfile::compute_bound("b", 50_000_000, 100.0);
        let tiny = KernelProfile::compute_bound("t", 5_000, 100.0);
        let (_, p_big) = run(&spec, &big, spec.default_core_mhz);
        let (_, p_tiny) = run(&spec, &tiny, spec.default_core_mhz);
        assert!(p_tiny.total_w < p_big.total_w);
    }
}
