//! Deterministic fault injection for the simulated management stack.
//!
//! Real DVFS measurement pipelines cannot assume the management APIs they
//! drive are reliable. The fault classes modeled here each mirror a failure
//! mode of the real stack:
//!
//! * **Set-frequency rejection** — `nvmlDeviceSetApplicationsClocks` returns
//!   `NVML_ERROR_NO_PERMISSION` (application clocks locked down) or
//!   `rsmi_dev_gpu_clk_freq_set` returns `RSMI_STATUS_BUSY`; the device
//!   stays at its previous clock.
//! * **Power/thermal throttling** — the requested clock is granted but the
//!   board's power or thermal cap silently holds the *effective* clock
//!   below it for a window of launches (NVML reports this via
//!   `nvmlDeviceGetCurrentClocksThrottleReasons`; nothing fails).
//! * **Energy-counter reset** — `rsmi_dev_energy_count_get` and
//!   `nvmlDeviceGetTotalEnergyConsumption` counters wrap their fixed-width
//!   accumulators or reset on driver reload, so a later reading can be
//!   *smaller* than an earlier one.
//! * **Transient launch failure** — a kernel launch is dropped
//!   (`NVML_ERROR_GPU_IS_LOST`, ECC retirement stalls, Xid-style hiccups)
//!   and must be retried by the caller.
//!
//! A [`FaultPlan`] decides *when* each class fires: either at explicit
//! zero-based operation indices ([`Schedule::At`]) or with a per-operation
//! probability drawn from a seeded, stateless hash stream
//! ([`Schedule::Prob`]) — every decision is a pure function of
//! `(seed, stream, operation index)`, so plans are exactly reproducible and
//! independent of thread scheduling. [`FaultState`] is the per-device
//! cursor: it owns the operation counters and the active throttle window.
//! A default ([`FaultPlan::none`]) plan is inert and leaves every device
//! code path bit-identical to the pre-fault-layer behavior.

use std::collections::BTreeSet;

/// Error produced by a fault-injected device operation.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A clock-change request was denied; the device keeps its previous
    /// clock (`NVML_ERROR_NO_PERMISSION` / `RSMI_STATUS_BUSY` analogue).
    FrequencyRejected {
        /// The clock that was asked for (MHz).
        requested_mhz: f64,
    },
    /// A kernel launch failed transiently and may be retried.
    LaunchFailed {
        /// Name of the kernel whose launch was dropped.
        kernel: String,
    },
    /// The peer-to-peer interconnect link dropped mid-transfer (NVLink
    /// fatal error / xGMI link retrain failure). Unlike a dropped launch
    /// this is *not* transient: the link stays down, so callers must fall
    /// back to fewer devices rather than retry.
    LinkLost,
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::FrequencyRejected { requested_mhz } => {
                write!(f, "set-frequency request for {requested_mhz} MHz rejected")
            }
            FaultError::LaunchFailed { kernel } => {
                write!(f, "transient launch failure of kernel '{kernel}'")
            }
            FaultError::LinkLost => {
                write!(f, "interconnect link lost")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// When a fault stream fires, indexed by a zero-based operation counter.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Schedule {
    /// Never fires (the default).
    #[default]
    Never,
    /// Fires exactly at the listed operation indices.
    At(BTreeSet<u64>),
    /// Fires independently per operation with this probability, drawn from
    /// the plan's seeded stateless stream.
    Prob(f64),
}

impl Schedule {
    /// A schedule firing at exactly the given operation indices.
    pub fn at<I: IntoIterator<Item = u64>>(indices: I) -> Self {
        Schedule::At(indices.into_iter().collect())
    }

    /// A schedule firing once, at operation `index`.
    pub fn once(index: u64) -> Self {
        Schedule::at([index])
    }

    /// Whether this schedule can ever fire.
    pub fn is_never(&self) -> bool {
        match self {
            Schedule::Never => true,
            Schedule::At(s) => s.is_empty(),
            Schedule::Prob(p) => *p <= 0.0,
        }
    }

    fn fires(&self, seed: u64, stream: u64, index: u64) -> bool {
        match self {
            Schedule::Never => false,
            Schedule::At(s) => s.contains(&index),
            Schedule::Prob(p) => unit_draw(seed, stream, index) < *p,
        }
    }
}

/// One throttling episode: the effective core clock is capped at `cap_mhz`
/// for the next `launches` kernel launches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleWindow {
    /// Cap on the effective core clock (MHz); snapped to a supported
    /// frequency by the device.
    pub cap_mhz: f64,
    /// How many launches the cap holds for.
    pub launches: u64,
}

/// A deterministic fault-injection plan.
///
/// Build one from explicit schedules, a seeded probabilistic mix, or both;
/// the default plan injects nothing. The same plan given to two devices
/// produces the same faults at the same operation indices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    freq_rejects: Schedule,
    launch_failures: Schedule,
    counter_resets: Schedule,
    throttle_onsets: Schedule,
    throttle_window: Option<ThrottleWindow>,
    link_degrades: Schedule,
    link_degrade_factor: Option<f64>,
    link_failures: Schedule,
}

/// Stream discriminators keeping the probabilistic draws of the fault
/// classes independent of each other.
const STREAM_FREQ_REJECT: u64 = 1;
const STREAM_LAUNCH_FAIL: u64 = 2;
const STREAM_COUNTER_RESET: u64 = 3;
const STREAM_THROTTLE: u64 = 4;
const STREAM_LINK_DEGRADE: u64 = 5;
const STREAM_LINK_FAIL: u64 = 6;

impl FaultPlan {
    /// The inert plan: no fault ever fires.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan whose probabilistic schedules draw from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Replaces the seed of the probabilistic streams (explicit `At`
    /// schedules are unaffected). Sweep drivers use this to re-draw faults
    /// when re-measuring a sample.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The seed of the probabilistic streams.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rejects set-frequency requests per `schedule` (indexed by
    /// set-frequency operation).
    pub fn reject_set_frequency(mut self, schedule: Schedule) -> Self {
        self.freq_rejects = schedule;
        self
    }

    /// Fails kernel launches per `schedule` (indexed by launch attempt).
    pub fn fail_launches(mut self, schedule: Schedule) -> Self {
        self.launch_failures = schedule;
        self
    }

    /// Resets the device energy counter to zero per `schedule` (indexed by
    /// completed launch).
    pub fn reset_energy_counter(mut self, schedule: Schedule) -> Self {
        self.counter_resets = schedule;
        self
    }

    /// Starts a throttle `window` per `schedule` (indexed by launch
    /// attempt; a new window only starts when none is active).
    pub fn throttle(mut self, schedule: Schedule, window: ThrottleWindow) -> Self {
        self.throttle_onsets = schedule;
        self.throttle_window = Some(window);
        self
    }

    /// Degrades interconnect transfers per `schedule` (indexed by transfer
    /// operation): an affected transfer still completes, but its effective
    /// link bandwidth is multiplied by `factor` (0 < factor ≤ 1) — the
    /// lane-retrain / width-downgrade failure mode of NVLink and xGMI.
    pub fn degrade_link(mut self, schedule: Schedule, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "link degrade factor must be in (0, 1], got {factor}"
        );
        self.link_degrades = schedule;
        self.link_degrade_factor = Some(factor);
        self
    }

    /// Drops the interconnect link per `schedule` (indexed by transfer
    /// operation). A fired transfer returns [`FaultError::LinkLost`] — a
    /// non-transient error the caller must answer by shrinking the gang.
    pub fn fail_link(mut self, schedule: Schedule) -> Self {
        self.link_failures = schedule;
        self
    }

    /// Whether this plan can never inject anything.
    pub fn is_inert(&self) -> bool {
        self.freq_rejects.is_never()
            && self.launch_failures.is_never()
            && self.counter_resets.is_never()
            && (self.throttle_onsets.is_never() || self.throttle_window.is_none())
            && (self.link_degrades.is_never() || self.link_degrade_factor.is_none())
            && self.link_failures.is_never()
    }

    /// Splits this plan into a per-device sub-plan whose probabilistic
    /// streams are statistically independent of every other device's.
    ///
    /// The sub-seed is [`substream_seed`]`(seed, device_id, purpose)` —
    /// never `seed + device_id`: a sequential splitmix64 generator seeded
    /// at `s` and `s + γ` (γ the splitmix64 increment) emits the *same*
    /// stream shifted by one, and any small additive offset leaves the
    /// per-device states on one orbit of the underlying counter. Hash
    /// mixing keeps device 0 / purpose 0 on the parent seed (a lone
    /// device sees exactly the un-split plan) while giving every other
    /// `(device, purpose)` pair its own decorrelated stream.
    ///
    /// Explicit [`Schedule::At`] indices are deliberately *not* split:
    /// they are stated facts ("launch 3 fails"), not draws.
    pub fn split_for_device(&self, device_id: u64, purpose: u64) -> FaultPlan {
        self.clone()
            .with_seed(substream_seed(self.seed, device_id, purpose))
    }
}

/// Derives an independent sub-stream seed from `(seed, device_id,
/// purpose)` by odd-constant multiply-XOR mixing — the same construction
/// as the campaign layer's slot-keyed fault streams. Identity at
/// `(device 0, purpose 0)`, so splitting is transparent for a
/// single-device fleet; full avalanche across adjacent device ids is
/// supplied by the splitmix64 finalizer every stateless draw applies on
/// top (regression-tested: adjacent ids share < 1% of fault ticks).
pub fn substream_seed(seed: u64, device_id: u64, purpose: u64) -> u64 {
    seed ^ device_id.wrapping_mul(0xA24B_AED4_963E_E407)
        ^ purpose.wrapping_mul(0x9FB2_1C65_1E98_DF25)
}

/// Per-device fault cursor: the plan plus the operation counters and the
/// active throttle window.
#[derive(Debug, Clone)]
pub struct FaultState {
    plan: FaultPlan,
    set_freq_ops: u64,
    launch_attempts: u64,
    launches_done: u64,
    transfer_ops: u64,
    throttle_remaining: u64,
    throttle_cap_mhz: f64,
}

impl FaultState {
    /// A cursor at the start of `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            set_freq_ops: 0,
            launch_attempts: 0,
            launches_done: 0,
            transfer_ops: 0,
            throttle_remaining: 0,
            throttle_cap_mhz: f64::INFINITY,
        }
    }

    /// A cursor over the inert plan.
    pub fn inert() -> Self {
        FaultState::new(FaultPlan::none())
    }

    /// The plan this cursor walks.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when no fault can fire now or later: the plan is inert and no
    /// throttle window is in flight. Fast paths key off this.
    pub fn is_inert(&self) -> bool {
        self.plan.is_inert() && self.throttle_remaining == 0
    }

    /// Consumes one set-frequency operation; `Err` means the request is
    /// rejected and the device must keep its previous clock.
    pub fn on_set_frequency(&mut self, requested_mhz: f64) -> Result<(), FaultError> {
        let idx = self.set_freq_ops;
        self.set_freq_ops += 1;
        if self
            .plan
            .freq_rejects
            .fires(self.plan.seed, STREAM_FREQ_REJECT, idx)
        {
            return Err(FaultError::FrequencyRejected { requested_mhz });
        }
        Ok(())
    }

    /// Consumes one launch attempt. `Err` is a transient launch failure;
    /// `Ok(Some(cap))` means a throttle window is active and the effective
    /// clock must not exceed `cap` MHz; `Ok(None)` is a clean launch.
    pub fn on_launch_attempt(&mut self, kernel: &str) -> Result<Option<f64>, FaultError> {
        let idx = self.launch_attempts;
        self.launch_attempts += 1;
        if self
            .plan
            .launch_failures
            .fires(self.plan.seed, STREAM_LAUNCH_FAIL, idx)
        {
            return Err(FaultError::LaunchFailed {
                kernel: kernel.to_string(),
            });
        }
        if self.throttle_remaining == 0 {
            if let Some(w) = self.plan.throttle_window {
                if self
                    .plan
                    .throttle_onsets
                    .fires(self.plan.seed, STREAM_THROTTLE, idx)
                {
                    self.throttle_remaining = w.launches;
                    self.throttle_cap_mhz = w.cap_mhz;
                }
            }
        }
        if self.throttle_remaining > 0 {
            self.throttle_remaining -= 1;
            Ok(Some(self.throttle_cap_mhz))
        } else {
            Ok(None)
        }
    }

    /// Consumes one completed launch; `true` means the energy counter
    /// resets (wraps) at this point.
    pub fn on_launch_complete(&mut self) -> bool {
        let idx = self.launches_done;
        self.launches_done += 1;
        self.plan
            .counter_resets
            .fires(self.plan.seed, STREAM_COUNTER_RESET, idx)
    }

    /// Consumes one interconnect transfer operation. `Err(LinkLost)` means
    /// the link dropped and the transfer never completed;
    /// `Ok(Some(factor))` means the transfer completes but at `factor` of
    /// the link's nominal bandwidth; `Ok(None)` is a clean transfer.
    pub fn on_transfer(&mut self) -> Result<Option<f64>, FaultError> {
        let idx = self.transfer_ops;
        self.transfer_ops += 1;
        if self
            .plan
            .link_failures
            .fires(self.plan.seed, STREAM_LINK_FAIL, idx)
        {
            return Err(FaultError::LinkLost);
        }
        if let Some(factor) = self.plan.link_degrade_factor {
            if self
                .plan
                .link_degrades
                .fires(self.plan.seed, STREAM_LINK_DEGRADE, idx)
            {
                return Ok(Some(factor));
            }
        }
        Ok(None)
    }

    /// Launch attempts consumed so far (including failed ones).
    pub fn launch_attempts(&self) -> u64 {
        self.launch_attempts
    }

    /// Interconnect transfer operations consumed so far (including lost
    /// ones).
    pub fn transfer_ops(&self) -> u64 {
        self.transfer_ops
    }

    /// Set-frequency operations consumed so far (including rejected ones).
    pub fn set_frequency_ops(&self) -> u64 {
        self.set_freq_ops
    }
}

impl Default for FaultState {
    fn default() -> Self {
        FaultState::inert()
    }
}

/// Stateless uniform draw in `[0, 1)` from `(seed, stream, index)` — a
/// splitmix64 finalizer over the mixed key, so fault decisions are pure
/// functions of the operation index.
fn unit_draw(seed: u64, stream: u64, index: u64) -> f64 {
    let mut z = seed
        ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        assert!(FaultPlan::none().is_inert());
        assert!(FaultState::inert().is_inert());
        let mut s = FaultState::inert();
        for i in 0..100 {
            assert!(s.on_set_frequency(800.0).is_ok());
            assert_eq!(s.on_launch_attempt("k").unwrap(), None);
            assert!(!s.on_launch_complete());
            assert_eq!(s.launch_attempts(), i + 1);
        }
    }

    #[test]
    fn explicit_schedule_fires_at_exact_indices() {
        let plan = FaultPlan::none().reject_set_frequency(Schedule::at([1, 3]));
        assert!(!plan.is_inert());
        let mut s = FaultState::new(plan);
        let results: Vec<bool> = (0..5).map(|_| s.on_set_frequency(500.0).is_err()).collect();
        assert_eq!(results, vec![false, true, false, true, false]);
    }

    #[test]
    fn throttle_window_caps_for_its_duration() {
        let plan = FaultPlan::none().throttle(
            Schedule::once(1),
            ThrottleWindow {
                cap_mhz: 700.0,
                launches: 3,
            },
        );
        let mut s = FaultState::new(plan);
        assert_eq!(s.on_launch_attempt("k").unwrap(), None);
        for _ in 0..3 {
            assert_eq!(s.on_launch_attempt("k").unwrap(), Some(700.0));
        }
        assert_eq!(s.on_launch_attempt("k").unwrap(), None);
    }

    #[test]
    fn probabilistic_streams_are_deterministic_and_seed_sensitive() {
        let draw = |seed: u64| -> Vec<bool> {
            let mut s = FaultState::new(FaultPlan::seeded(seed).fail_launches(Schedule::Prob(0.3)));
            (0..64).map(|_| s.on_launch_attempt("k").is_err()).collect()
        };
        assert_eq!(draw(7), draw(7), "same seed, same faults");
        assert_ne!(draw(7), draw(8), "different seed, different faults");
        let fails = draw(7).iter().filter(|&&f| f).count();
        assert!((5..30).contains(&fails), "rate ~0.3 of 64, got {fails}");
    }

    #[test]
    fn probability_bounds_behave() {
        let mut never = FaultState::new(FaultPlan::seeded(1).fail_launches(Schedule::Prob(0.0)));
        let mut always = FaultState::new(FaultPlan::seeded(1).fail_launches(Schedule::Prob(1.0)));
        for _ in 0..32 {
            assert!(never.on_launch_attempt("k").is_ok());
            assert!(always.on_launch_attempt("k").is_err());
        }
    }

    #[test]
    fn link_schedules_fire_on_the_transfer_stream() {
        let plan = FaultPlan::none()
            .degrade_link(Schedule::at([1]), 0.5)
            .fail_link(Schedule::at([3]));
        assert!(!plan.is_inert());
        let mut s = FaultState::new(plan);
        assert_eq!(s.on_transfer().unwrap(), None);
        assert_eq!(s.on_transfer().unwrap(), Some(0.5));
        assert_eq!(s.on_transfer().unwrap(), None);
        assert_eq!(s.on_transfer().unwrap_err(), FaultError::LinkLost);
        assert_eq!(s.transfer_ops(), 4);
        // Transfers share no stream with launches: the launch cursor is
        // untouched.
        assert_eq!(s.on_launch_attempt("k").unwrap(), None);
    }

    #[test]
    fn counter_reset_stream_indexes_completed_launches() {
        let plan = FaultPlan::none().reset_energy_counter(Schedule::at([2]));
        let mut s = FaultState::new(plan);
        assert!(!s.on_launch_complete());
        assert!(!s.on_launch_complete());
        assert!(s.on_launch_complete());
        assert!(!s.on_launch_complete());
    }

    #[test]
    fn streams_are_independent() {
        // A plan failing every launch must not perturb set-frequency ops.
        let mut s = FaultState::new(FaultPlan::seeded(3).fail_launches(Schedule::Prob(1.0)));
        for _ in 0..16 {
            assert!(s.on_set_frequency(1000.0).is_ok());
        }
    }

    /// Which launch ticks fail for one device's split of `plan`.
    fn fault_ticks(plan: &FaultPlan, device_id: u64, ticks: u64) -> BTreeSet<u64> {
        let mut s = FaultState::new(plan.split_for_device(device_id, 0));
        (0..ticks)
            .filter(|_| s.on_launch_attempt("k").is_err())
            .collect()
    }

    #[test]
    fn adjacent_device_streams_share_under_one_percent_of_fault_ticks() {
        // The regression this pins: deriving per-device seeds by adding
        // small indices to one splitmix64 seed leaves the streams
        // correlated (an offset of the generator increment reproduces the
        // whole neighbor stream shifted by one). Hash-split streams must
        // be statistically independent: with p = 0.0005 over 400k ticks,
        // independent streams coincide on ~p·|A| ≈ 0.05% of A's fault
        // ticks, so requiring < 1% leaves a 20× margin over the
        // expectation — while additively-derived streams share nearly
        // all of them. The draw is a pure function of (seed, device,
        // index) — this is a fixed computation, not a flaky statistical
        // bound.
        for base_seed in [1u64, 7, 20230521, 20231112] {
            let plan = FaultPlan::seeded(base_seed).fail_launches(Schedule::Prob(0.0005));
            for device in 0..4u64 {
                let a = fault_ticks(&plan, device, 400_000);
                let b = fault_ticks(&plan, device + 1, 400_000);
                assert!(
                    a.len() > 100,
                    "seed {base_seed}: stream too sparse to be meaningful"
                );
                let shared = a.intersection(&b).count();
                assert!(
                    (shared as f64) < 0.01 * a.len() as f64,
                    "seed {base_seed}, devices {device}/{}: {shared} of {} fault \
                     ticks shared (≥1%)",
                    device + 1,
                    a.len()
                );
            }
        }
    }

    #[test]
    fn substream_split_is_identity_for_device_zero_and_purpose_separated() {
        let plan = FaultPlan::seeded(42).fail_launches(Schedule::Prob(0.2));
        // A lone device sees the un-split plan bit-for-bit.
        assert_eq!(plan.split_for_device(0, 0), plan);
        assert_eq!(substream_seed(42, 0, 0), 42);
        // Distinct devices and distinct purposes get distinct seeds.
        assert_ne!(substream_seed(42, 1, 0), 42);
        assert_ne!(substream_seed(42, 1, 0), substream_seed(42, 2, 0));
        assert_ne!(substream_seed(42, 1, 0), substream_seed(42, 1, 1));
        // And the derivation is deterministic.
        assert_eq!(substream_seed(42, 3, 2), substream_seed(42, 3, 2));
    }
}
