//! Property-based tests of the simulator's physical invariants: for *any*
//! kernel shape and frequency, the model must behave like hardware.

use gpu_sim::kernel::{KernelProfile, OpMix};
use gpu_sim::noise::NoiseModel;
use gpu_sim::power::{energy_from_parts, kernel_power, resolve_power_cap};
use gpu_sim::sampling::{integrate_samples, sample_power};
use gpu_sim::timing::kernel_timing;
use gpu_sim::{Device, DeviceSpec, FaultPlan, Schedule, ThrottleWindow};
use proptest::prelude::*;

fn arb_mix() -> impl Strategy<Value = OpMix> {
    (
        0.0..200.0f64,
        0.0..200.0f64,
        0.0..20.0f64,
        0.0..50.0f64,
        0.0..500.0f64,
        0.0..500.0f64,
        0.0..20.0f64,
        0.0..40.0f64,
        0.1..200.0f64,
        0.0..100.0f64,
    )
        .prop_map(|(ia, im, id, ib, fa, fm, fd, sf, ga, la)| OpMix {
            int_add: ia,
            int_mul: im,
            int_div: id,
            int_bw: ib,
            float_add: fa,
            float_mul: fm,
            float_div: fd,
            special: sf,
            global_access: ga,
            local_access: la,
        })
}

fn arb_kernel() -> impl Strategy<Value = KernelProfile> {
    (arb_mix(), 1u64..100_000_000, 0.5..1.0f64)
        .prop_map(|(mix, n, ilp)| KernelProfile::new("prop", n, mix).with_ilp_efficiency(ilp))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Raising the core clock never slows a kernel down.
    #[test]
    fn time_monotone_in_frequency(k in arb_kernel(), lo in 0usize..195, hi in 0usize..195) {
        let spec = DeviceSpec::v100();
        let fs = spec.core_freqs.as_slice();
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let t_lo = kernel_timing(&spec, &k, fs[lo], 1107.0).total_s;
        let t_hi = kernel_timing(&spec, &k, fs[hi], 1107.0).total_s;
        prop_assert!(t_hi <= t_lo * (1.0 + 1e-12));
    }

    /// Resolved (firmware-throttled) power stays inside [0, TDP] at any
    /// requested frequency — the raw demand model may exceed TDP at the top
    /// clocks, but the throttle loop brings the effective clock down (the
    /// minimum clock is a physical floor, which no V100-class kernel pushes
    /// past TDP).
    #[test]
    fn power_within_envelope(k in arb_kernel(), fi in 0usize..195) {
        let spec = DeviceSpec::v100();
        let f = spec.core_freqs.as_slice()[fi];
        let r = resolve_power_cap(&spec, &k, f, 1107.0, None);
        prop_assert!(r.power.total_w > 0.0);
        prop_assert!(
            r.power.total_w <= spec.tdp_w * (1.0 + 1e-12)
                || r.core_mhz == spec.min_core_mhz()
        );
        prop_assert!(r.core_mhz <= f * (1.0 + 1e-12));
    }

    /// Energy of a resolved launch is positive and at most TDP × duration.
    #[test]
    fn energy_bounded_by_tdp(k in arb_kernel(), fi in 0usize..195) {
        let spec = DeviceSpec::v100();
        let f = spec.core_freqs.as_slice()[fi];
        let r = resolve_power_cap(&spec, &k, f, 1107.0, None);
        let e = energy_from_parts(&spec, &r.timing, &r.power);
        prop_assert!(e > 0.0);
        prop_assert!(
            e <= spec.tdp_w * r.timing.total_s * (1.0 + 1e-12)
                || r.core_mhz == spec.min_core_mhz()
        );
    }

    /// A binding operator cap never speeds a kernel up, and a cap at TDP is
    /// bit-identical to no cap.
    #[test]
    fn caps_conserve_work(k in arb_kernel(), fi in 0usize..195, cap in 50.0..350.0f64) {
        let spec = DeviceSpec::v100();
        let f = spec.core_freqs.as_slice()[fi];
        let unc = resolve_power_cap(&spec, &k, f, 1107.0, None);
        let capped = resolve_power_cap(&spec, &k, f, 1107.0, Some(cap));
        prop_assert!(capped.timing.total_s >= unc.timing.total_s * (1.0 - 1e-12));
        prop_assert!(capped.core_mhz <= unc.core_mhz * (1.0 + 1e-12));
        let e_unc = energy_from_parts(&spec, &unc.timing, &unc.power);
        let e_cap = energy_from_parts(&spec, &capped.timing, &capped.power);
        // No free lunch: capped energy is bounded below by the uncapped
        // energy scaled by how little average power the cap can remove —
        // in particular it can never drop below idle × capped runtime.
        prop_assert!(e_cap >= spec.idle_power_w * 0.55 * capped.timing.total_s * (1.0 - 1e-12));
        prop_assert!(e_cap > 0.0 && e_unc > 0.0);
        let at_tdp = resolve_power_cap(&spec, &k, f, 1107.0, Some(spec.tdp_w));
        prop_assert_eq!(at_tdp.timing.total_s.to_bits(), unc.timing.total_s.to_bits());
        prop_assert_eq!(at_tdp.power.total_w.to_bits(), unc.power.total_w.to_bits());
    }

    /// Memory power (and with it total power) is monotone non-decreasing in
    /// the memory clock at fixed timing activity inputs.
    #[test]
    fn mem_power_monotone_in_mem_clock(k in arb_kernel(), fi in 0usize..195) {
        let spec = DeviceSpec::v100();
        let f = spec.core_freqs.as_slice()[fi];
        let mut prev = -1.0f64;
        for m in spec.mem_freqs.as_slice() {
            let t = kernel_timing(&spec, &k, f, *m);
            let p = kernel_power(&spec, &t, f, *m);
            prop_assert!(p.mem_w > 0.0);
            // Timing activity can shift with the mem clock, so compare the
            // floor component's scale via a fixed-activity probe instead:
            // recompute power at this mem clock with the *top-clock* timing.
            let t_top = kernel_timing(&spec, &k, f, spec.mem_freqs.max());
            let p_fixed = kernel_power(&spec, &t_top, f, *m);
            prop_assert!(p_fixed.mem_w >= prev - 1e-12);
            prev = p_fixed.mem_w;
        }
    }

    /// More work items never reduce wall-clock time.
    #[test]
    fn time_monotone_in_work(mix in arb_mix(), n in 1u64..10_000_000, k_factor in 2u64..16) {
        let spec = DeviceSpec::v100();
        let small = KernelProfile::new("s", n, mix);
        let big = KernelProfile::new("b", n.saturating_mul(k_factor), mix);
        let ts = kernel_timing(&spec, &small, 1000.0, 1107.0).total_s;
        let tb = kernel_timing(&spec, &big, 1000.0, 1107.0).total_s;
        prop_assert!(tb >= ts * (1.0 - 1e-12));
    }

    /// Frequency snapping always lands on a supported frequency and is
    /// idempotent.
    #[test]
    fn snap_is_idempotent(mhz in 0.0..3000.0f64) {
        let spec = DeviceSpec::v100();
        let s1 = spec.core_freqs.snap(mhz);
        prop_assert!(spec.core_freqs.contains(s1));
        prop_assert_eq!(spec.core_freqs.snap(s1), s1);
    }

    /// The device's cumulative counters are consistent with the per-launch
    /// records under any launch sequence.
    #[test]
    fn device_counters_are_sums(seq in proptest::collection::vec((arb_kernel(), 0usize..195), 1..8)) {
        let spec = DeviceSpec::v100();
        let fs: Vec<f64> = spec.core_freqs.as_slice().to_vec();
        let mut dev = Device::new(spec);
        let mut t_sum = 0.0;
        let mut e_sum = 0.0;
        for (k, fi) in &seq {
            let rec = dev.launch_at(k, fs[*fi]).unwrap();
            t_sum += rec.time_s;
            e_sum += rec.energy_j;
        }
        prop_assert!((dev.clock_s() - t_sum).abs() < 1e-9 * t_sum.max(1.0));
        prop_assert!((dev.energy_counter_j() - e_sum).abs() < 1e-9 * e_sum.max(1.0));
    }

    /// A throttled launch never reports a core clock above the requested
    /// one, and `throttled` is set exactly when the clock was capped.
    #[test]
    fn throttled_clock_never_exceeds_request(
        seed in 0u64..10_000,
        p in 0.0..1.0f64,
        cap_i in 0usize..195,
        window in 1u64..6,
        seq in proptest::collection::vec((arb_kernel(), 0usize..195), 1..10),
    ) {
        let spec = DeviceSpec::v100();
        let fs: Vec<f64> = spec.core_freqs.as_slice().to_vec();
        let cap = fs[cap_i];
        let plan = FaultPlan::seeded(seed).throttle(
            Schedule::Prob(p),
            ThrottleWindow { cap_mhz: cap, launches: window },
        );
        let mut dev = Device::with_faults(spec, plan);
        for (k, fi) in &seq {
            let requested = fs[*fi];
            let rec = dev.launch_at(k, requested).unwrap();
            prop_assert!(rec.core_mhz <= requested * (1.0 + 1e-12));
            prop_assert_eq!(rec.throttled, rec.core_mhz < requested);
        }
    }

    /// Trapezoidal re-integration of the sampled power timeline converges
    /// to the exact energy of the trace's piecewise-constant timeline as
    /// the sampling period shrinks: for a piecewise-constant integrand the
    /// trapezoid rule is exact away from discontinuities, so the total
    /// error is bounded by (discontinuities + tail) · period · max power —
    /// linear in the period, for *any* randomized launch/idle sequence.
    #[test]
    fn sampled_energy_converges_to_trace_energy(
        seq in proptest::collection::vec(
            (arb_kernel(), 0usize..195, 0.0..0.02f64),
            1..6,
        ),
    ) {
        let spec = DeviceSpec::v100();
        let fs: Vec<f64> = spec.core_freqs.as_slice().to_vec();
        let idle_w = spec.idle_power_w;
        let mut dev = Device::new(spec);
        for (k, fi, gap) in &seq {
            dev.launch_at(k, fs[*fi]).unwrap();
            if *gap > 0.0 {
                dev.idle_advance(*gap);
            }
        }
        let trace = dev.trace();
        let end = trace
            .events()
            .iter()
            .map(|e| e.start_s + e.duration_s)
            .fold(0.0f64, f64::max);
        prop_assume!(end > 0.0);
        let busy: f64 = trace.events().iter().map(|e| e.duration_s).sum();
        let exact: f64 = trace
            .events()
            .iter()
            .map(|e| e.avg_power_w * e.duration_s)
            .sum::<f64>()
            + idle_w * (end - busy);
        let p_max = trace
            .events()
            .iter()
            .map(|e| e.avg_power_w)
            .fold(idle_w, f64::max);
        let n_disc = (2 * trace.events().len() + 2) as f64;
        for n in [64u64, 512, 4096] {
            let period = end / n as f64;
            let sampled = integrate_samples(&sample_power(trace, period, idle_w));
            let bound = period * p_max * (2.0 * n_disc + 2.0);
            prop_assert!(
                (sampled - exact).abs() <= bound + 1e-9,
                "period {}: sampled {} vs exact {} exceeds bound {}",
                period, sampled, exact, bound
            );
        }
        // And the densest grid is genuinely close in relative terms.
        let period = end / 4096.0;
        let sampled = integrate_samples(&sample_power(trace, period, idle_w));
        prop_assert!((sampled - exact).abs() <= 0.1 * exact + 1e-9);
    }

    /// Noise factors stay within ±20 % at realistic σ and are reproducible.
    #[test]
    fn noise_bounded_and_deterministic(seed in 0u64..1_000_000) {
        let mut a = NoiseModel::realistic(seed);
        let mut b = NoiseModel::realistic(seed);
        for _ in 0..20 {
            let fa = a.time_factor();
            prop_assert!((0.8..1.2).contains(&fa));
            prop_assert_eq!(fa, b.time_factor());
        }
    }
}
