//! Property-based tests of the Pareto machinery and the model layer's
//! structural invariants.

use energy_model::ds_model::{DomainSpecificModel, DsSample};
use energy_model::pareto::{compare_pareto_sets, dominates, pareto_front_indices};
use proptest::prelude::*;

fn arb_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.1..2.0f64, 0.1..2.0f64), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No point on the front is dominated by any other point; every point
    /// off the front is dominated by someone.
    #[test]
    fn pareto_front_is_exactly_the_nondominated_set(pts in arb_points()) {
        let front = pareto_front_indices(&pts);
        for &i in &front {
            prop_assert!(!pts.iter().any(|&q| dominates(q, pts[i])));
        }
        for i in 0..pts.len() {
            if !front.contains(&i) {
                prop_assert!(pts.iter().any(|&q| dominates(q, pts[i])));
            }
        }
    }

    /// The front is never empty for non-empty input, and adding a
    /// dominated point never changes the front's member values.
    #[test]
    fn front_stable_under_dominated_insertions(pts in arb_points()) {
        let front_a: Vec<(f64, f64)> = pareto_front_indices(&pts)
            .into_iter()
            .map(|i| pts[i])
            .collect();
        prop_assert!(!front_a.is_empty());
        // Insert a point dominated by the first front member.
        let (s, e) = front_a[0];
        let mut extended = pts.clone();
        extended.push((s - 0.05, e + 0.05));
        let front_b: Vec<(f64, f64)> = pareto_front_indices(&extended)
            .into_iter()
            .map(|i| extended[i])
            .collect();
        for p in &front_a {
            prop_assert!(front_b.contains(p));
        }
        prop_assert!(!front_b.contains(&(s - 0.05, e + 0.05)));
    }

    /// Self-comparison of any Pareto set is perfect.
    #[test]
    fn self_comparison_is_perfect(pts in arb_points()) {
        let front_idx = pareto_front_indices(&pts);
        let freqs: Vec<f64> = front_idx.iter().map(|&i| 500.0 + i as f64).collect();
        let points: Vec<(f64, f64)> = front_idx.iter().map(|&i| pts[i]).collect();
        let cmp = compare_pareto_sets(&freqs, &points, &freqs, &points);
        prop_assert_eq!(cmp.exact_matches, freqs.len());
        prop_assert!(cmp.mean_distance < 1e-12);
        prop_assert_eq!(cmp.precision(), 1.0);
        prop_assert_eq!(cmp.recall(), 1.0);
    }

    /// The DS model is scale-consistent: scaling every training time by a
    /// constant leaves the predicted *speedup* curve unchanged (the
    /// normalization of Fig. 12 cancels units). Exact in real arithmetic —
    /// in floating point, split-score rounding can flip tie-close tree
    /// splits, so we assert it to 2 %.
    #[test]
    fn ds_speedup_invariant_to_time_units(scale in 0.01..100.0f64) {
        let freqs: Vec<f64> = (0..12).map(|i| 500.0 + 100.0 * i as f64).collect();
        let mk = |unit: f64| -> Vec<DsSample> {
            let mut out = Vec::new();
            for &(a, b) in &[(2.0, 3.0), (4.0, 1.0), (8.0, 5.0)] {
                for &f in &freqs {
                    let t = unit * a * b / f;
                    out.push(DsSample {
                        features: std::sync::Arc::new(vec![a, b]),
                        freq_mhz: f,
                        time_s: t,
                        energy_j: t * (40.0 + 0.1 * f),
                    });
                }
            }
            out
        };
        let m1 = DomainSpecificModel::train(&mk(1.0), 1000.0, 7);
        let m2 = DomainSpecificModel::train(&mk(scale), 1000.0, 7);
        let c1 = m1.predict_curve(&[4.0, 1.0], &freqs);
        let c2 = m2.predict_curve(&[4.0, 1.0], &freqs);
        for (p, q) in c1.iter().zip(&c2) {
            prop_assert!((p.speedup - q.speedup).abs() / q.speedup < 0.02, "{} vs {}", p.speedup, q.speedup);
        }
    }
}
