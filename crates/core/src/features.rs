//! Feature spaces: static code features vs domain-specific input features.
//!
//! The general-purpose model sees only **static code features** (Table 1):
//! the instruction-mix composition of the application's kernels. These are
//! properties of the *code*, so they are (by construction) independent of
//! the input — which is exactly the limitation the paper exploits: a model
//! keyed on static features predicts one curve per application, while the
//! true curves move with the workload.
//!
//! The domain-specific models see **input features** (Table 2): Cronos's
//! grid extents and LiGen's (#ligands, #fragments, #atoms).

use gpu_sim::kernel::KernelProfile;
use serde::{Deserialize, Serialize};

/// Number of static code features (Table 1).
pub const N_STATIC_FEATURES: usize = 10;

/// Aggregates kernels into the Table-1 static feature vector.
///
/// Per-category op counts are summed over all launches (weighted by work
/// items) and normalized to *fractions of total operations*, making the
/// vector a property of the code's instruction mix rather than of the
/// input size — static analysis cannot know the runtime workload.
///
/// # Panics
/// Panics on an empty kernel list or an all-zero mix.
pub fn static_features(kernels: &[KernelProfile]) -> [f64; N_STATIC_FEATURES] {
    assert!(!kernels.is_empty(), "need at least one kernel");
    let mut totals = [0.0; N_STATIC_FEATURES];
    for k in kernels {
        let v = k.mix.as_feature_vector();
        let w = k.work_items as f64;
        for (t, x) in totals.iter_mut().zip(v) {
            *t += x * w;
        }
    }
    let sum: f64 = totals.iter().sum();
    assert!(sum > 0.0, "kernels have an empty op mix");
    totals.map(|t| t / sum)
}

/// A Cronos input configuration — Table 2 row 1:
/// features `f_grid_x`, `f_grid_y`, `f_grid_z`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CronosInput {
    /// Grid cells along x.
    pub grid_x: usize,
    /// Grid cells along y.
    pub grid_y: usize,
    /// Grid cells along z.
    pub grid_z: usize,
}

impl CronosInput {
    /// Builds the input descriptor.
    pub fn new(grid_x: usize, grid_y: usize, grid_z: usize) -> Self {
        CronosInput {
            grid_x,
            grid_y,
            grid_z,
        }
    }

    /// The paper's five grid configurations (§5.1): 10×4×4 … 160×64×64.
    pub fn paper_configs() -> Vec<CronosInput> {
        vec![
            CronosInput::new(10, 4, 4),
            CronosInput::new(20, 8, 8),
            CronosInput::new(40, 16, 16),
            CronosInput::new(80, 32, 32),
            CronosInput::new(160, 64, 64),
        ]
    }

    /// The feature vector `[grid_x, grid_y, grid_z]`.
    pub fn features(&self) -> Vec<f64> {
        vec![self.grid_x as f64, self.grid_y as f64, self.grid_z as f64]
    }

    /// Display label matching the paper's figures, e.g. `"160x64x64"`.
    pub fn label(&self) -> String {
        format!("{}x{}x{}", self.grid_x, self.grid_y, self.grid_z)
    }

    /// Total cell count.
    pub fn n_cells(&self) -> usize {
        self.grid_x * self.grid_y * self.grid_z
    }
}

/// A LiGen input configuration — Table 2 row 2:
/// features `f_ligands`, `f_fragments`, `f_atoms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LigenInput {
    /// Number of ligands (`l`).
    pub ligands: usize,
    /// Atoms per ligand (`a`).
    pub atoms: usize,
    /// Fragments per ligand (`f`).
    pub fragments: usize,
}

impl LigenInput {
    /// Builds the input descriptor.
    pub fn new(ligands: usize, atoms: usize, fragments: usize) -> Self {
        LigenInput {
            ligands,
            atoms,
            fragments,
        }
    }

    /// The paper's full experiment grid (§5.1):
    /// `(l, a, f) ∈ {2, 16, 1024, 4096, 10000} × {31, 63, 71, 89} × {4, 8, 16, 20}`.
    pub fn paper_configs() -> Vec<LigenInput> {
        let ligands = [2usize, 16, 1024, 4096, 10000];
        let atoms = [31usize, 63, 71, 89];
        let fragments = [4usize, 8, 16, 20];
        let mut out = Vec::with_capacity(ligands.len() * atoms.len() * fragments.len());
        for &l in &ligands {
            for &a in &atoms {
                for &f in &fragments {
                    out.push(LigenInput::new(l, a, f));
                }
            }
        }
        out
    }

    /// The twelve configurations Figure 13c/d reports:
    /// atoms × fragments × ligands ∈ {31, 89} × {4, 20} × {256, 4096, 10000}.
    ///
    /// (The figure labels use 256; it is the smallest "batch-sized" count.)
    pub fn figure13_configs() -> Vec<LigenInput> {
        let mut out = Vec::new();
        for &a in &[31usize, 89] {
            for &f in &[4usize, 20] {
                for &l in &[256usize, 4096, 10000] {
                    out.push(LigenInput::new(l, a, f));
                }
            }
        }
        out
    }

    /// The feature vector `[ligands, fragments, atoms]` (Table 2 order).
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.ligands as f64,
            self.fragments as f64,
            self.atoms as f64,
        ]
    }

    /// Display label matching Figure 13's x-axis, `atoms x frags x ligands`,
    /// e.g. `"89x20x10000"`.
    pub fn label(&self) -> String {
        format!("{}x{}x{}", self.atoms, self.fragments, self.ligands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::OpMix;

    #[test]
    fn static_features_are_fractions() {
        let k = KernelProfile::new(
            "k",
            1000,
            OpMix {
                float_add: 3.0,
                float_mul: 1.0,
                ..Default::default()
            },
        );
        let f = static_features(&[k]);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[4] - 0.75).abs() < 1e-12);
        assert!((f[5] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn static_features_input_invariant_for_scaled_workloads() {
        // Same code, 100× the work items → identical static features.
        let mix = OpMix {
            float_add: 10.0,
            global_access: 4.0,
            ..Default::default()
        };
        let small = KernelProfile::new("k", 1_000, mix);
        let big = KernelProfile::new("k", 100_000, mix);
        assert_eq!(static_features(&[small]), static_features(&[big]));
    }

    #[test]
    fn static_features_weight_kernels_by_work() {
        let a = KernelProfile::new(
            "a",
            1000,
            OpMix {
                float_add: 1.0,
                ..Default::default()
            },
        );
        let b = KernelProfile::new(
            "b",
            3000,
            OpMix {
                int_add: 1.0,
                ..Default::default()
            },
        );
        let f = static_features(&[a, b]);
        assert!((f[0] - 0.75).abs() < 1e-12, "int_add share");
        assert!((f[4] - 0.25).abs() < 1e-12, "float_add share");
    }

    #[test]
    fn paper_config_counts() {
        assert_eq!(CronosInput::paper_configs().len(), 5);
        assert_eq!(LigenInput::paper_configs().len(), 80);
        assert_eq!(LigenInput::figure13_configs().len(), 12);
    }

    #[test]
    fn labels_match_paper_format() {
        assert_eq!(CronosInput::new(160, 64, 64).label(), "160x64x64");
        assert_eq!(LigenInput::new(10000, 89, 20).label(), "89x20x10000");
    }

    #[test]
    fn cronos_grids_grow_monotonically() {
        let configs = CronosInput::paper_configs();
        for w in configs.windows(2) {
            assert!(w[1].n_cells() > w[0].n_cells());
        }
    }
}
