//! Per-kernel domain-specific modeling and frequency planning — the
//! paper's future work (§7): *"using SYnergy's support for per-kernel
//! frequency scaling, we can use the domain-specific model to select a
//! different frequency configuration for each kernel of the application by
//! focusing on each kernel's input rather than the input for the entire
//! program."*
//!
//! The pipeline: characterize each kernel of the application separately
//! over the frequency sweep ([`characterize_kernels`]), train one
//! time/energy model pair per kernel over the input features
//! ([`PerKernelModel::train_cronos`]), then plan a per-kernel frequency
//! assignment optimizing an energy target under a slowdown bound
//! ([`PerKernelModel::plan`]), which drops straight into a
//! [`synergy::FrequencyPolicy`].

use std::collections::HashMap;
use std::sync::Arc;

use gpu_sim::noise::NoiseModel;
use gpu_sim::{Device, DeviceSpec, KernelProfile};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use synergy::{FrequencyPolicy, SynergyQueue};

use crate::ds_model::{DomainSpecificModel, DsSample};
use crate::features::CronosInput;

/// One kernel's measured frequency sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCharacterization {
    /// Kernel name (the policy key).
    pub kernel: String,
    /// `(freq_mhz, time_s, energy_j)` per swept frequency, ascending.
    pub points: Vec<(f64, f64, f64)>,
}

/// Sweeps every kernel individually through a SYnergy queue (per-kernel
/// events are exactly what SYnergy's profiling exposes).
///
/// # Panics
/// Panics on an empty kernel or frequency list.
pub fn characterize_kernels(
    spec: &DeviceSpec,
    kernels: &[KernelProfile],
    freqs: &[f64],
    noise_seed: Option<u64>,
) -> Vec<KernelCharacterization> {
    assert!(!kernels.is_empty(), "need at least one kernel");
    assert!(!freqs.is_empty(), "need at least one frequency");
    // One device per kernel, so the per-kernel sweeps are independent and
    // fan out across threads (output stays in kernel order).
    kernels
        .par_iter()
        .map(|k| {
            let dev = match noise_seed {
                Some(s) => Device::with_noise(spec.clone(), NoiseModel::realistic(s)),
                None => Device::new(spec.clone()),
            };
            let mut q = SynergyQueue::for_device(dev);
            let points = freqs
                .iter()
                .map(|&f| {
                    let ev = q.submit_at(k, Some(f));
                    (f, ev.time_s, ev.energy_j)
                })
                .collect();
            KernelCharacterization {
                kernel: k.name.clone(),
                points,
            }
        })
        .collect()
}

/// A set of per-kernel domain-specific model pairs for one application.
#[derive(Debug, Clone)]
pub struct PerKernelModel {
    models: HashMap<String, DomainSpecificModel>,
    default_freq_mhz: f64,
}

impl PerKernelModel {
    /// Trains one model pair per Cronos kernel: for every input grid, every
    /// kernel is swept individually and its `(grid features, freq) →
    /// (time, energy)` samples train that kernel's models.
    pub fn train_cronos(
        spec: &DeviceSpec,
        configs: &[CronosInput],
        freqs: &[f64],
        seed: u64,
    ) -> Self {
        assert!(!configs.is_empty(), "need at least one input configuration");
        let mut samples_by_kernel: HashMap<String, Vec<DsSample>> = HashMap::new();
        for cfg in configs {
            let grid = cronos::Grid::cubic(cfg.grid_x, cfg.grid_y, cfg.grid_z);
            let kernels = cronos::kernelize::substep_kernels(&grid);
            let features = Arc::new(cfg.features());
            for ch in characterize_kernels(spec, &kernels, freqs, None) {
                let entry = samples_by_kernel.entry(ch.kernel.clone()).or_default();
                for (f, t, e) in ch.points {
                    entry.push(DsSample {
                        features: Arc::clone(&features),
                        freq_mhz: f,
                        time_s: t,
                        energy_j: e,
                    });
                }
            }
        }
        let models = samples_by_kernel
            .into_iter()
            .map(|(name, samples)| {
                (
                    name,
                    DomainSpecificModel::train(&samples, spec.default_core_mhz, seed),
                )
            })
            .collect();
        PerKernelModel {
            models,
            default_freq_mhz: spec.default_core_mhz,
        }
    }

    /// Kernel names this model covers.
    pub fn kernels(&self) -> Vec<&str> {
        self.models.keys().map(String::as_str).collect()
    }

    /// The model pair for one kernel.
    pub fn model_for(&self, kernel: &str) -> Option<&DomainSpecificModel> {
        self.models.get(kernel)
    }

    /// Plans a per-kernel frequency assignment for `features`: for each
    /// kernel, the predicted-minimum-energy frequency whose predicted
    /// slowdown vs the default clock stays within `max_slowdown`.
    ///
    /// # Panics
    /// Panics on a negative slowdown bound or empty frequency list.
    pub fn plan(&self, features: &[f64], freqs: &[f64], max_slowdown: f64) -> PerKernelPlan {
        assert!(max_slowdown >= 0.0, "slowdown bound must be ≥ 0");
        assert!(!freqs.is_empty(), "need at least one candidate frequency");
        let mut assignments = Vec::with_capacity(self.models.len());
        for (name, model) in &self.models {
            let (t_def, _) = model.predict_time_energy(features, self.default_freq_mhz);
            let best = freqs
                .iter()
                .map(|&f| {
                    let (t, e) = model.predict_time_energy(features, f);
                    (f, t, e)
                })
                .filter(|(_, t, _)| *t <= t_def * (1.0 + max_slowdown))
                .min_by(|a, b| a.2.total_cmp(&b.2));
            // The default clock always satisfies the bound in the model's
            // own prediction space; fall back to it defensively.
            let freq = best.map(|(f, _, _)| f).unwrap_or(self.default_freq_mhz);
            assignments.push((name.clone(), freq));
        }
        assignments.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic order
        PerKernelPlan { assignments }
    }
}

/// A per-kernel frequency assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerKernelPlan {
    /// `(kernel name, frequency MHz)` pairs, name-sorted.
    pub assignments: Vec<(String, f64)>,
}

impl PerKernelPlan {
    /// Converts into a SYnergy per-kernel policy (unlisted kernels run at
    /// the device default).
    pub fn policy(&self) -> FrequencyPolicy {
        FrequencyPolicy::per_kernel(self.assignments.iter().map(|(k, f)| (k.clone(), *f)), None)
    }

    /// The frequency assigned to `kernel`, if any.
    pub fn frequency_for(&self, kernel: &str) -> Option<f64> {
        self.assignments
            .iter()
            .find(|(k, _)| k == kernel)
            .map(|(_, f)| *f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::experiment_frequencies;
    use cronos::kernelize::names;

    fn setup() -> (DeviceSpec, Vec<f64>) {
        let spec = DeviceSpec::v100();
        let freqs = experiment_frequencies(&spec, 8);
        (spec, freqs)
    }

    #[test]
    fn characterize_kernels_sweeps_each_kernel() {
        let (spec, freqs) = setup();
        let grid = cronos::Grid::cubic(40, 16, 16);
        let kernels = cronos::kernelize::substep_kernels(&grid);
        let chars = characterize_kernels(&spec, &kernels, &freqs, None);
        assert_eq!(chars.len(), 4);
        for ch in &chars {
            assert_eq!(ch.points.len(), freqs.len());
            for (f, t, e) in &ch.points {
                assert!(freqs.contains(f));
                assert!(*t > 0.0 && *e > 0.0);
            }
        }
    }

    #[test]
    fn per_kernel_model_covers_all_kernels() {
        let (spec, freqs) = setup();
        let configs = [
            CronosInput::new(20, 8, 8),
            CronosInput::new(40, 16, 16),
            CronosInput::new(160, 64, 64),
        ];
        let model = PerKernelModel::train_cronos(&spec, &configs, &freqs, 0);
        let mut names: Vec<&str> = model.kernels();
        names.sort_unstable();
        assert_eq!(
            names,
            vec![
                names::APPLY_BOUNDARY,
                names::COMPUTE_CHANGES,
                names::INTEGRATE_TIME,
                names::REDUCE_CFL,
            ]
        );
    }

    #[test]
    fn plan_respects_slowdown_bound_in_truth() {
        let (spec, freqs) = setup();
        let configs = [
            CronosInput::new(20, 8, 8),
            CronosInput::new(40, 16, 16),
            CronosInput::new(160, 64, 64),
        ];
        let model = PerKernelModel::train_cronos(&spec, &configs, &freqs, 0);
        let target = CronosInput::new(160, 64, 64);
        let plan = model.plan(&target.features(), &freqs, 0.05);
        assert_eq!(plan.assignments.len(), 4);

        // Apply the plan and compare against the default run: ≤ ~6 % slower
        // (5 % bound + model error), with real energy savings.
        let workload = cronos::GpuCronos::new(cronos::Grid::cubic(160, 64, 64), 3);
        let mut q_def = SynergyQueue::for_spec(spec.clone());
        let base = workload.run(&mut q_def);
        let mut q = SynergyQueue::for_spec(spec.clone());
        q.set_policy(plan.policy());
        let tuned = workload.run(&mut q);
        assert!(
            tuned.time_s <= base.time_s * 1.07,
            "slowdown {}",
            tuned.time_s / base.time_s
        );
        assert!(
            tuned.energy_j < base.energy_j * 0.90,
            "energy ratio {}",
            tuned.energy_j / base.energy_j
        );
    }

    #[test]
    fn plan_is_heterogeneous_by_kernel_intensity() {
        // The per-kernel plan exploits kernel heterogeneity: the stencil's
        // arithmetic intensity (≈5 cycles/byte) puts its compute crossover
        // near 850 MHz, while the pure-streaming integrate and boundary
        // kernels tolerate the bottom of the sweep — so the plan assigns
        // them *different* clocks, with the stencil highest.
        let (spec, freqs) = setup();
        let configs = [
            CronosInput::new(20, 8, 8),
            CronosInput::new(40, 16, 16),
            CronosInput::new(160, 64, 64),
        ];
        let model = PerKernelModel::train_cronos(&spec, &configs, &freqs, 0);
        let plan = model.plan(&CronosInput::new(160, 64, 64).features(), &freqs, 0.05);
        let stencil = plan.frequency_for(names::COMPUTE_CHANGES).unwrap();
        let integrate = plan.frequency_for(names::INTEGRATE_TIME).unwrap();
        let boundary = plan.frequency_for(names::APPLY_BOUNDARY).unwrap();
        assert!(
            stencil > integrate && stencil > boundary,
            "stencil {stencil} MHz vs integrate {integrate} / boundary {boundary} MHz"
        );
    }

    #[test]
    fn plan_policy_round_trips() {
        let plan = PerKernelPlan {
            assignments: vec![("a".into(), 800.0), ("b".into(), 1200.0)],
        };
        let policy = plan.policy();
        assert_eq!(policy.frequency_for("a"), Some(800.0));
        assert_eq!(policy.frequency_for("b"), Some(1200.0));
        assert_eq!(policy.frequency_for("c"), None);
        assert_eq!(plan.frequency_for("a"), Some(800.0));
        assert_eq!(plan.frequency_for("zzz"), None);
    }

    #[test]
    #[should_panic(expected = "at least one input configuration")]
    fn empty_configs_rejected() {
        let (spec, freqs) = setup();
        let _ = PerKernelModel::train_cronos(&spec, &[], &freqs, 0);
    }
}
