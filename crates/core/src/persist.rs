//! Crash-consistent persistence primitives.
//!
//! Two building blocks, shared by the campaign journal and every
//! `results/` writer in the workspace:
//!
//! * [`atomic_write`] — full-file replacement via write-temp + fsync +
//!   rename. A reader (or a resumed process) sees either the old complete
//!   file or the new complete file, never a torn intermediate.
//! * [`Journal`] / [`read_journal`] — an append-only JSONL log where each
//!   record is one line of JSON, fsynced before `append` returns. A crash
//!   can tear at most the *trailing* line (an append that never committed);
//!   [`read_journal`] drops such a tail and reports it, while a malformed
//!   line anywhere else is surfaced as corruption instead of being
//!   silently skipped. A record only counts as committed once its
//!   trailing newline is durable — a final line without one is an
//!   uncommitted tail even when it happens to parse.
//!
//! The serde/serde_json shims round-trip `f64` bit-exactly (shortest
//! `Display` form, exact re-parse), which is what lets a resumed campaign
//! reproduce an uninterrupted run bit for bit from its journal.

// Persistence code must degrade with typed errors, never panic: a full
// disk or read-only results directory is an expected condition here.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// A persistence failure, with the path it happened on.
#[derive(Debug)]
pub enum PersistError {
    /// An I/O operation failed.
    Io {
        /// File the operation was acting on.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A committed record failed to parse — the file is damaged beyond the
    /// tolerated torn tail, or was written by something else entirely.
    Corrupt {
        /// File the record was read from.
        path: PathBuf,
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "{}: {}", path.display(), source)
            }
            PersistError::Corrupt {
                path,
                line,
                message,
            } => write!(
                f,
                "{}:{}: corrupt record: {}",
                path.display(),
                line,
                message
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            PersistError::Corrupt { .. } => None,
        }
    }
}

fn io_err(path: &Path, source: io::Error) -> PersistError {
    PersistError::Io {
        path: path.to_path_buf(),
        source,
    }
}

/// The sibling temp path a pending [`atomic_write`] stages into.
fn temp_sibling(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Flushes the rename itself: fsync the directory entry so the swap
/// survives power loss, best-effort (directory fsync is not portable).
fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

/// Replaces `path` atomically with `bytes`: write a temp sibling, fsync
/// it, rename over the target. Creates missing parent directories. No
/// reader can ever observe a partially written file, and a crash leaves
/// either the old content or the new — at worst plus a stale `.tmp`
/// sibling the next write overwrites.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    }
    let tmp = temp_sibling(path);
    {
        let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    sync_parent_dir(path);
    Ok(())
}

/// [`atomic_write`] of UTF-8 text.
pub fn atomic_write_str(path: &Path, text: &str) -> Result<(), PersistError> {
    atomic_write(path, text.as_bytes())
}

/// An append-only JSONL log open for writing. Each [`Journal::append`]
/// serializes one record onto its own line and fsyncs before returning:
/// once `append` comes back `Ok`, the record survives any subsequent
/// crash. Records must be re-read with [`read_journal`], which tolerates
/// a torn (uncommitted) trailing line.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: File,
}

impl Journal {
    /// Opens `path` for appending, creating the file (and missing parent
    /// directories) if needed. Existing records are untouched.
    pub fn open(path: &Path) -> Result<Journal, PersistError> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok(Journal {
            path: path.to_path_buf(),
            file,
        })
    }

    /// Appends one record as a single JSON line and fsyncs it durable.
    /// The record and its terminating newline go down in one `write_all`:
    /// the newline is the commit mark, so it must never be able to land
    /// in a later syscall than the record it commits.
    pub fn append<T: Serialize>(&mut self, record: &T) -> Result<(), PersistError> {
        let mut line = serde_json::to_string(record).map_err(|e| PersistError::Corrupt {
            path: self.path.clone(),
            line: 0,
            message: format!("unserializable record: {e}"),
        })?;
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err(&self.path, e))
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// What [`read_journal`] found.
#[derive(Debug)]
pub struct JournalContents<T> {
    /// Every committed record, in append order.
    pub records: Vec<T>,
    /// True when the file ended in a torn line — an append a crash cut
    /// short of its newline. The torn bytes are not in `records`, even
    /// when they happen to form complete JSON.
    pub torn_tail: bool,
}

/// Reads every committed record of a JSONL journal. A missing file is an
/// empty journal. *Any* final line without a trailing newline is the
/// remnant of an uncommitted append — [`Journal::append`] only returns
/// once the newline is durable, so a newline-less tail was never acked,
/// even if it parses (a crash can tear between writeback of the record
/// bytes and the newline). Such a tail is dropped and reported via
/// [`JournalContents::torn_tail`]; an unparsable committed line means
/// the journal is damaged and is returned as [`PersistError::Corrupt`].
pub fn read_journal<T: Deserialize>(path: &Path) -> Result<JournalContents<T>, PersistError> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Ok(JournalContents {
                records: Vec::new(),
                torn_tail: false,
            })
        }
        Err(e) => return Err(io_err(path, e)),
    };
    let mut lines: Vec<&str> = text.lines().collect();
    let torn_tail = if text.ends_with('\n') {
        false
    } else {
        lines.pop().is_some()
    };
    let mut records = Vec::with_capacity(lines.len());
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str::<T>(line) {
            Ok(r) => records.push(r),
            Err(e) => {
                return Err(PersistError::Corrupt {
                    path: path.to_path_buf(),
                    line: i + 1,
                    message: e.to_string(),
                });
            }
        }
    }
    Ok(JournalContents { records, torn_tail })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "energy-model-persist-{}-{}",
            std::process::id(),
            name
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Rec {
        seq: u64,
        value: f64,
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = scratch("atomic");
        let path = dir.join("out.txt");
        atomic_write_str(&path, "first").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "first");
        atomic_write_str(&path, "second").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "second");
        assert!(!temp_sibling(&path).exists(), "temp sibling must be gone");
    }

    #[test]
    fn atomic_write_creates_parent_directories() {
        let dir = scratch("mkdirs");
        let path = dir.join("a/b/c.txt");
        atomic_write_str(&path, "deep").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "deep");
    }

    #[test]
    fn journal_round_trips_records_bit_exactly() {
        let dir = scratch("roundtrip");
        let path = dir.join("j.jsonl");
        let recs: Vec<Rec> = (0..5)
            .map(|i| Rec {
                seq: i,
                value: 0.1 + i as f64 * 1.000000000003,
            })
            .collect();
        {
            let mut j = Journal::open(&path).unwrap();
            for r in &recs {
                j.append(r).unwrap();
            }
        }
        let got = read_journal::<Rec>(&path).unwrap();
        assert!(!got.torn_tail);
        assert_eq!(got.records, recs);
        // f64 payloads must survive bit-for-bit.
        for (a, b) in got.records.iter().zip(&recs) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
        }
    }

    #[test]
    fn missing_journal_reads_empty() {
        let dir = scratch("missing");
        let got = read_journal::<Rec>(&dir.join("nope.jsonl")).unwrap();
        assert!(got.records.is_empty());
        assert!(!got.torn_tail);
    }

    #[test]
    fn torn_trailing_line_is_dropped_and_reported() {
        let dir = scratch("torn");
        let path = dir.join("j.jsonl");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(&Rec { seq: 0, value: 1.0 }).unwrap();
            j.append(&Rec { seq: 1, value: 2.0 }).unwrap();
        }
        // Simulate a crash mid-append: half a record, no newline.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(br#"{"seq":2,"va"#);
        fs::write(&path, &bytes).unwrap();

        let got = read_journal::<Rec>(&path).unwrap();
        assert!(got.torn_tail);
        assert_eq!(got.records.len(), 2);
        assert_eq!(got.records[1].seq, 1);
    }

    #[test]
    fn parseable_final_line_without_newline_is_still_a_torn_tail() {
        let dir = scratch("torn-parseable");
        let path = dir.join("j.jsonl");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(&Rec { seq: 0, value: 1.0 }).unwrap();
            j.append(&Rec { seq: 1, value: 2.0 }).unwrap();
        }
        // A crash (or partial writeback) can persist the record bytes but
        // not the newline that commits them: the JSON is complete, yet the
        // append was never acked. It must be dropped, not trusted — a
        // later append would otherwise land on the same line.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(br#"{"seq":2,"value":3.0}"#);
        fs::write(&path, &bytes).unwrap();

        let got = read_journal::<Rec>(&path).unwrap();
        assert!(got.torn_tail, "newline-less tail was never committed");
        assert_eq!(got.records.len(), 2);
        assert_eq!(got.records[1].seq, 1);
    }

    #[test]
    fn mid_file_damage_is_corruption_not_a_torn_tail() {
        let dir = scratch("corrupt");
        let path = dir.join("j.jsonl");
        fs::write(&path, "{\"broken\n{\"seq\":1,\"value\":2.0}\n").unwrap();
        let err = read_journal::<Rec>(&path).expect_err("damage is not skippable");
        match err {
            PersistError::Corrupt { line, .. } => assert_eq!(line, 1),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn reopened_journal_appends_after_existing_records() {
        let dir = scratch("reopen");
        let path = dir.join("j.jsonl");
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(&Rec { seq: 0, value: 1.0 }).unwrap();
        }
        {
            let mut j = Journal::open(&path).unwrap();
            j.append(&Rec { seq: 1, value: 2.0 }).unwrap();
        }
        let got = read_journal::<Rec>(&path).unwrap();
        assert_eq!(got.records.len(), 2);
        assert_eq!(got.records[0].seq, 0);
        assert_eq!(got.records[1].seq, 1);
    }
}
