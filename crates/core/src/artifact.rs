//! Versioned, checksummed model artifacts.
//!
//! [`DomainSpecificModel::from_json`] trusts arbitrary JSON — fine for a
//! unit test, unacceptable for a model that a *governor* loads at run time
//! and then uses to set hardware clocks. An [`ModelArtifact`] wraps the
//! serialized model in an envelope carrying everything a loader needs to
//! refuse bad input with a typed error instead of predicting garbage:
//!
//! * a **schema version** — artifacts written by a future incompatible
//!   format are rejected as [`ArtifactError::Version`], mirroring the
//!   campaign journal's `ConfigMismatch` behaviour;
//! * a **content digest** (FNV-1a over the payload bytes) — bit rot,
//!   truncation, or a hand-edited payload is [`ArtifactError::Digest`];
//! * a **training fingerprint** — a caller-supplied digest of the training
//!   conditions (device, frequency set, seed). A loader that knows what it
//!   expects can reject a stale or foreign model as
//!   [`ArtifactError::Fingerprint`] even though the file itself is intact.
//!
//! Artifacts are written through [`crate::persist::atomic_write`], so a
//! reader never observes a torn envelope: either the old artifact or the
//! new one, never half of each.

// Artifact handling must degrade with typed errors, never panic: a
// corrupt registry entry is an expected runtime condition.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::ds_model::DomainSpecificModel;
use crate::persist::{atomic_write_str, PersistError};

/// The artifact schema this build writes and accepts.
pub const ARTIFACT_SCHEMA_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over raw bytes — the digest used for artifact payloads and
/// training fingerprints. Not cryptographic; the threat model is bit rot
/// and operator error, not an adversary.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest of the conditions a model was trained under: device name,
/// default clock, the exact frequency set, and the training seed. Folding
/// the frequency bits in means a model trained on a thinned sweep cannot
/// silently serve a loader that expects the full-resolution one.
pub fn training_fingerprint(device: &str, default_mhz: f64, freqs: &[f64], seed: u64) -> u64 {
    let mut h = fnv1a_64(device.as_bytes());
    h = (h ^ default_mhz.to_bits()).wrapping_mul(FNV_PRIME);
    h = (h ^ freqs.len() as u64).wrapping_mul(FNV_PRIME);
    for f in freqs {
        h = (h ^ f.to_bits()).wrapping_mul(FNV_PRIME);
    }
    (h ^ seed).wrapping_mul(FNV_PRIME)
}

/// A typed artifact failure. Every variant names what was expected and
/// what was found — the loader's decision (refuse, fall back, re-train)
/// depends on which it is.
#[derive(Debug)]
pub enum ArtifactError {
    /// The envelope declares a schema this build does not speak.
    Version {
        /// Version found in the envelope.
        found: u32,
        /// Version this build writes and accepts.
        expected: u32,
    },
    /// The payload does not hash to the digest the envelope committed to.
    Digest {
        /// Digest recorded in the envelope.
        recorded: u64,
        /// Digest of the payload as read.
        computed: u64,
    },
    /// The artifact is intact but was trained under different conditions
    /// than the loader expects.
    Fingerprint {
        /// Fingerprint the loader expects.
        expected: u64,
        /// Fingerprint recorded in the envelope.
        found: u64,
    },
    /// The file (or its payload) is not a parseable artifact at all.
    Malformed(String),
    /// The underlying read/write failed.
    Persist(PersistError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Version { found, expected } => {
                write!(
                    f,
                    "artifact schema v{found}, this build accepts v{expected}"
                )
            }
            ArtifactError::Digest { recorded, computed } => write!(
                f,
                "artifact payload digest {computed:#018x} does not match recorded {recorded:#018x}"
            ),
            ArtifactError::Fingerprint { expected, found } => write!(
                f,
                "artifact training fingerprint {found:#018x}, loader expects {expected:#018x}"
            ),
            ArtifactError::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
            ArtifactError::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for ArtifactError {
    fn from(e: PersistError) -> Self {
        ArtifactError::Persist(e)
    }
}

/// The on-disk envelope around one serialized [`DomainSpecificModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Envelope schema version ([`ARTIFACT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The model's name in the registry (e.g. `"ligen"`).
    pub name: String,
    /// FNV-1a digest of `payload`'s bytes.
    pub content_digest: u64,
    /// Caller-supplied digest of the training conditions
    /// ([`training_fingerprint`]).
    pub training_fingerprint: u64,
    /// The serialized model ([`DomainSpecificModel::to_json`]).
    pub payload: String,
}

impl ModelArtifact {
    /// Seals a trained model into an envelope.
    pub fn seal(name: &str, model: &DomainSpecificModel, training_fingerprint: u64) -> Self {
        let payload = model.to_json();
        ModelArtifact {
            schema_version: ARTIFACT_SCHEMA_VERSION,
            name: name.to_string(),
            content_digest: fnv1a_64(payload.as_bytes()),
            training_fingerprint,
            payload,
        }
    }

    /// Verifies the envelope and deserializes the model: schema version,
    /// then content digest, then payload parse. Does *not* check the
    /// training fingerprint — use [`ModelArtifact::open_expecting`] when
    /// the loader knows what it was trained for.
    pub fn open(&self) -> Result<DomainSpecificModel, ArtifactError> {
        if self.schema_version != ARTIFACT_SCHEMA_VERSION {
            return Err(ArtifactError::Version {
                found: self.schema_version,
                expected: ARTIFACT_SCHEMA_VERSION,
            });
        }
        let computed = fnv1a_64(self.payload.as_bytes());
        if computed != self.content_digest {
            return Err(ArtifactError::Digest {
                recorded: self.content_digest,
                computed,
            });
        }
        DomainSpecificModel::from_json(&self.payload)
            .map_err(|e| ArtifactError::Malformed(format!("payload: {e}")))
    }

    /// [`ModelArtifact::open`] plus a training-fingerprint check: a model
    /// trained under other conditions is rejected as
    /// [`ArtifactError::Fingerprint`] before its payload is even parsed.
    pub fn open_expecting(&self, fingerprint: u64) -> Result<DomainSpecificModel, ArtifactError> {
        if self.schema_version == ARTIFACT_SCHEMA_VERSION
            && self.training_fingerprint != fingerprint
        {
            return Err(ArtifactError::Fingerprint {
                expected: fingerprint,
                found: self.training_fingerprint,
            });
        }
        self.open()
    }

    /// Writes the envelope atomically (temp + fsync + rename).
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| ArtifactError::Malformed(format!("unserializable envelope: {e}")))?;
        atomic_write_str(path, &json)?;
        Ok(())
    }

    /// Reads an envelope back. Parse failures are
    /// [`ArtifactError::Malformed`]; verification happens in
    /// [`ModelArtifact::open`], not here, so a caller can still inspect a
    /// quarantined envelope's metadata.
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let text = std::fs::read_to_string(path).map_err(|e| {
            ArtifactError::Persist(PersistError::Io {
                path: path.to_path_buf(),
                source: e,
            })
        })?;
        serde_json::from_str(&text).map_err(|e| ArtifactError::Malformed(e.to_string()))
    }
}

impl DomainSpecificModel {
    /// Seals this model into an envelope and writes it atomically — the
    /// safe counterpart of persisting [`DomainSpecificModel::to_json`]
    /// yourself.
    pub fn save_artifact(
        &self,
        path: &Path,
        name: &str,
        training_fingerprint: u64,
    ) -> Result<ModelArtifact, ArtifactError> {
        let artifact = ModelArtifact::seal(name, self, training_fingerprint);
        artifact.save(path)?;
        Ok(artifact)
    }

    /// Loads a model from an artifact file, verifying schema version and
    /// content digest — the safe counterpart of
    /// [`DomainSpecificModel::from_json`] on untrusted bytes.
    pub fn load_artifact(path: &Path) -> Result<(Self, ModelArtifact), ArtifactError> {
        let artifact = ModelArtifact::load(path)?;
        let model = artifact.open()?;
        Ok((model, artifact))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::ds_model::DsSample;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "energy-model-artifact-{}-{}",
            std::process::id(),
            name
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_model() -> DomainSpecificModel {
        let freqs: Vec<f64> = (0..8).map(|i| 600.0 + i as f64 * 100.0).collect();
        let mut samples = Vec::new();
        for &(a, b) in &[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0)] {
            for &f in &freqs {
                let t = a * b * 1e3 / f + 1e-4;
                samples.push(DsSample {
                    features: Arc::new(vec![a, b]),
                    freq_mhz: f,
                    time_s: t,
                    energy_j: t * (40.0 + 0.1 * f),
                });
            }
        }
        DomainSpecificModel::train(&samples, 1000.0, 7)
    }

    #[test]
    fn seal_open_round_trip_is_lossless() {
        let model = tiny_model();
        let art = ModelArtifact::seal("toy", &model, 42);
        let back = art.open().unwrap();
        for f in [600.0, 900.0, 1300.0] {
            assert_eq!(
                model.predict_time_energy(&[4.0, 5.0], f),
                back.predict_time_energy(&[4.0, 5.0], f),
                "predictions must round-trip bit-exactly"
            );
        }
    }

    #[test]
    fn save_load_round_trip_through_disk() {
        let dir = scratch("roundtrip");
        let path = dir.join("toy.json");
        let model = tiny_model();
        let sealed = model.save_artifact(&path, "toy", 99).unwrap();
        let (back, envelope) = DomainSpecificModel::load_artifact(&path).unwrap();
        assert_eq!(envelope, sealed);
        assert_eq!(
            model.predict_time_energy(&[2.0, 3.0], 800.0),
            back.predict_time_energy(&[2.0, 3.0], 800.0)
        );
    }

    /// FNV-1a over the little-endian bits of the flat-path predictions on a
    /// fixed grid — a stable fingerprint of model behaviour.
    fn prediction_fingerprint(model: &DomainSpecificModel) -> u64 {
        let mut bytes = Vec::new();
        for &(a, b) in &[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0), (5.0, 5.0)] {
            for f in [600.0, 750.0, 900.0, 1100.0, 1300.0] {
                let (t, e) = model.predict_time_energy(&[a, b], f);
                bytes.extend_from_slice(&t.to_bits().to_le_bytes());
                bytes.extend_from_slice(&e.to_bits().to_le_bytes());
            }
        }
        fnv1a_64(&bytes)
    }

    #[test]
    fn flatten_round_trip_is_fingerprint_stable() {
        // serialize → load → (implicit) re-flatten must reproduce the exact
        // prediction fingerprint: the recompiled SoA arena serves the same
        // bits as the arena compiled at training time, across repeated
        // round trips.
        let dir = scratch("flat-fingerprint");
        let model = tiny_model();
        assert!(model.has_flat(), "forest pair must carry a flat layout");
        let original = prediction_fingerprint(&model);

        let path = dir.join("toy.json");
        model.save_artifact(&path, "toy", 7).unwrap();
        let (back, _) = DomainSpecificModel::load_artifact(&path).unwrap();
        assert!(back.has_flat(), "load must recompile the flat layout");
        assert_eq!(prediction_fingerprint(&back), original);

        // Second generation: re-seal the reloaded model and load again.
        let path2 = dir.join("toy2.json");
        back.save_artifact(&path2, "toy", 7).unwrap();
        let (back2, _) = DomainSpecificModel::load_artifact(&path2).unwrap();
        assert_eq!(prediction_fingerprint(&back2), original);
    }

    #[test]
    fn version_skew_is_a_typed_error() {
        let mut art = ModelArtifact::seal("toy", &tiny_model(), 0);
        art.schema_version = ARTIFACT_SCHEMA_VERSION + 1;
        match art.open() {
            Err(ArtifactError::Version { found, expected }) => {
                assert_eq!(found, ARTIFACT_SCHEMA_VERSION + 1);
                assert_eq!(expected, ARTIFACT_SCHEMA_VERSION);
            }
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_is_a_digest_error() {
        let mut art = ModelArtifact::seal("toy", &tiny_model(), 0);
        art.payload.push(' '); // one flipped byte of "bit rot"
        match art.open() {
            Err(ArtifactError::Digest { recorded, computed }) => {
                assert_ne!(recorded, computed);
            }
            other => panic!("expected Digest error, got {other:?}"),
        }
    }

    #[test]
    fn stale_fingerprint_is_rejected_before_parse() {
        let art = ModelArtifact::seal("toy", &tiny_model(), 0xAB);
        assert!(art.open_expecting(0xAB).is_ok());
        match art.open_expecting(0xCD) {
            Err(ArtifactError::Fingerprint { expected, found }) => {
                assert_eq!(expected, 0xCD);
                assert_eq!(found, 0xAB);
            }
            other => panic!("expected Fingerprint error, got {other:?}"),
        }
    }

    #[test]
    fn malformed_file_is_a_typed_error_not_a_panic() {
        let dir = scratch("malformed");
        let path = dir.join("bad.json");
        std::fs::write(&path, "{definitely not an artifact").unwrap();
        assert!(matches!(
            ModelArtifact::load(&path),
            Err(ArtifactError::Malformed(_))
        ));
    }

    #[test]
    fn missing_file_is_a_persist_error() {
        let dir = scratch("missing");
        assert!(matches!(
            ModelArtifact::load(&dir.join("nope.json")),
            Err(ArtifactError::Persist(PersistError::Io { .. }))
        ));
    }

    #[test]
    fn fingerprint_tracks_every_training_condition() {
        let freqs = [600.0, 800.0, 1000.0];
        let base = training_fingerprint("V100", 1312.0, &freqs, 1);
        assert_ne!(base, training_fingerprint("MI100", 1312.0, &freqs, 1));
        assert_ne!(base, training_fingerprint("V100", 1450.0, &freqs, 1));
        assert_ne!(base, training_fingerprint("V100", 1312.0, &freqs[..2], 1));
        assert_ne!(base, training_fingerprint("V100", 1312.0, &freqs, 2));
        assert_eq!(base, training_fingerprint("V100", 1312.0, &freqs, 1));
    }
}
