//! Strong-scaling characterization over the **`num_devices` axis**: the
//! distributed sibling of [`crate::characterize::characterize_lattice`].
//!
//! Where the lattice sweep walks one device through its
//! (core × mem × cap) configuration space, this sweep walks a *gang* of
//! identical devices through (gang size × core clock): every point builds
//! `num_devices` fresh simulated devices, decomposes the Cronos grid into
//! slabs via [`cronos::DistributedGpuCronos`], and measures the lockstep
//! run — makespan across the gang, energy summed over it, and the share
//! of both spent on the exchange machinery (halo pack/unpack kernels,
//! link transfers, barrier idle waits).
//!
//! The baseline anchor is **one device at its default configuration** —
//! the exact submission stream [`cronos::GpuCronos`] produces — so
//! distributed points and single-device lattice points normalize against
//! the same reference and their `speedup` / `norm_energy` columns are
//! directly comparable. That comparability is what lets the governor's
//! gang placement ([`choose_gang`][gang]) trade a bigger gang at a cheap
//! clock against one device at an expensive one.
//!
//! Telemetry is **inert by default**: an armed [`Telemetry`] sink only
//! observes (spans plus the `synergy.exchange.*` counters via
//! [`Telemetry::record_exchange`]) and leaves every measurement
//! bit-identical — the tests below pin this.
//!
//! [gang]: https://docs.rs/governor

use std::sync::Arc;

use cronos::{DistributedGpuCronos, DistributedRunReport};
use gpu_sim::noise::NoiseModel;
use gpu_sim::pricing::PriceTable;
use gpu_sim::{Device, DeviceSpec};
use serde::{Deserialize, Serialize};
use synergy::{FrequencyPolicy, SynergyQueue};

use crate::telemetry::{SpanLevel, Telemetry};

/// The two swept axes of a distributed characterization.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedAxes {
    /// Gang sizes to sweep; each must be ≥ 1 and must not oversubscribe
    /// the workload's grid ([`DistributedGpuCronos::max_devices`]).
    pub device_counts: Vec<usize>,
    /// Core clocks (MHz) applied uniformly to every device in the gang.
    /// Empty sweeps the default clock only.
    pub core_mhz: Vec<f64>,
}

impl DistributedAxes {
    /// Device-count-only axes: every gang runs at the default clock.
    pub fn device_counts(device_counts: Vec<usize>) -> Self {
        DistributedAxes {
            device_counts,
            core_mhz: Vec::new(),
        }
    }
}

/// One measured (gang size, core clock) point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedPoint {
    /// Devices in the gang.
    pub num_devices: usize,
    /// Core clock every gang member ran at (the device default when the
    /// core axis was empty).
    pub core_mhz: f64,
    /// Makespan: the slowest device's wall time.
    pub time_s: f64,
    /// Energy summed over the gang, barrier idle waits included.
    pub energy_j: f64,
    /// `baseline_time_s / time_s` against the 1-device default anchor.
    pub speedup: f64,
    /// `energy_j / baseline_energy_j` against the 1-device default anchor.
    pub norm_energy: f64,
    /// Time spent in exchange machinery, summed over devices.
    pub exchange_time_s: f64,
    /// Energy spent in exchange machinery, summed over devices.
    pub exchange_energy_j: f64,
    /// Simulated seconds spent waiting at lockstep barriers.
    pub barrier_wait_s: f64,
    /// Bytes that crossed device links.
    pub halo_bytes: u64,
}

impl DistributedPoint {
    /// Fraction of the point's energy spent on the exchange machinery.
    /// As slabs shrink the stencil work per device falls while the halo
    /// planes stay the same size, so this share must grow with gang size.
    pub fn exchange_energy_share(&self) -> f64 {
        if self.energy_j > 0.0 {
            self.exchange_energy_j / self.energy_j
        } else {
            0.0
        }
    }
}

/// A full strong-scaling characterization of one workload on gangs of one
/// device model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedCharacterization {
    /// Device model the gangs were built from.
    pub device: String,
    /// Workload identifier (grid shape and step count).
    pub workload: String,
    /// Anchor: one device, default configuration — the monolithic
    /// [`cronos::GpuCronos`] stream.
    pub baseline_time_s: f64,
    /// Anchor energy of the same run.
    pub baseline_energy_j: f64,
    /// Measured points in axes order (device counts outer, clocks inner).
    pub points: Vec<DistributedPoint>,
}

/// Options for [`characterize_distributed`].
#[derive(Debug, Clone)]
pub struct DistributedSweepOptions {
    /// Repetitions per point, median-aggregated by energy.
    pub reps: usize,
    /// Measurement-noise seed; `None` runs noiseless.
    pub noise_seed: Option<u64>,
    /// Observability sink. Purely observational: armed telemetry leaves
    /// every measurement bit-identical.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl Default for DistributedSweepOptions {
    fn default() -> Self {
        DistributedSweepOptions {
            reps: 1,
            noise_seed: None,
            telemetry: None,
        }
    }
}

/// Builds the gang of measurement queues for one sweep point: fresh
/// devices with per-(point, device) noise streams, per-batch trace events
/// disabled, pricing routed through the sweep's shared memo table, and
/// the point's fixed-clock policy installed on every member.
fn gang_queues(
    spec: &DeviceSpec,
    num_devices: usize,
    core_mhz: Option<f64>,
    noise_seed: Option<u64>,
    point_off: u64,
    prices: &Arc<PriceTable>,
) -> Vec<SynergyQueue> {
    (0..num_devices)
        .map(|d| {
            let mut dev = match noise_seed {
                Some(seed) => {
                    // Decorrelate noise across both points and gang
                    // members while keeping the stream a pure function of
                    // (seed, point, device).
                    let off = point_off
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(d as u64);
                    Device::with_noise(spec.clone(), NoiseModel::realistic(seed.wrapping_add(off)))
                }
                None => Device::new(spec.clone()),
            };
            dev.set_trace_capacity(Some(0));
            dev.set_price_table(Arc::clone(prices));
            let mut q = SynergyQueue::for_device(dev);
            if let Some(f) = core_mhz {
                q.set_policy(FrequencyPolicy::Fixed(f));
            }
            q
        })
        .collect()
}

/// Measures one (gang size, clock) point: `reps` lockstep runs on one
/// gang (each [`DistributedGpuCronos::run`] report is already a per-run
/// delta), aggregated to the median report by total energy.
fn measure_point(
    workload: &DistributedGpuCronos,
    spec: &DeviceSpec,
    num_devices: usize,
    core_mhz: Option<f64>,
    opts: &DistributedSweepOptions,
    point_off: u64,
    prices: &Arc<PriceTable>,
) -> DistributedRunReport {
    let mut queues = gang_queues(
        spec,
        num_devices,
        core_mhz,
        opts.noise_seed,
        point_off,
        prices,
    );
    let mut reports: Vec<DistributedRunReport> =
        (0..opts.reps).map(|_| workload.run(&mut queues)).collect();
    reports.sort_by(|a, b| a.total.energy_j.total_cmp(&b.total.energy_j));
    reports[reports.len() / 2]
}

/// Sweeps the (device count × core clock) gang lattice of `axes` and
/// returns the strong-scaling characterization, anchored at one device on
/// the default configuration.
///
/// # Panics
/// Panics on empty device counts, `reps == 0`, a zero gang size, or a
/// gang that oversubscribes the workload's grid.
pub fn characterize_distributed(
    spec: &DeviceSpec,
    workload: &DistributedGpuCronos,
    axes: &DistributedAxes,
    opts: &DistributedSweepOptions,
) -> DistributedCharacterization {
    assert!(
        !axes.device_counts.is_empty(),
        "need at least one device count"
    );
    assert!(opts.reps > 0, "need at least one repetition");
    let max = workload.max_devices();
    for &d in &axes.device_counts {
        assert!(d >= 1, "gangs need at least one device");
        assert!(d <= max, "{d} devices oversubscribe the grid (max {max})");
    }

    let name = format!(
        "cronos-dist-{}x{}x{}-s{}",
        workload.grid.nx, workload.grid.ny, workload.grid.nz, workload.steps
    );
    let tel = opts.telemetry.as_deref();
    let _sweep_span = tel.map(|t| {
        t.registry().counter("sweep.runs").inc();
        t.span(
            SpanLevel::Sweep,
            "distributed-sweep",
            vec![
                ("device", spec.name.clone()),
                ("workload", name.clone()),
                ("device_counts", axes.device_counts.len().to_string()),
                ("core_clocks", axes.core_mhz.len().to_string()),
                ("reps", opts.reps.to_string()),
            ],
        )
    });

    let prices = Arc::new(PriceTable::new());

    // Anchor: one device, default configuration (no policy installed), the
    // exact stream GpuCronos submits — so distributed points normalize
    // against the same reference as single-device lattice points.
    let baseline = {
        let _span = tel.map(|t| {
            t.span(
                SpanLevel::Point,
                "point",
                vec![("devices", "1".into()), ("freq", "baseline".into())],
            )
        });
        measure_point(workload, spec, 1, None, opts, 0, &prices).total
    };

    let clocks: Vec<Option<f64>> = if axes.core_mhz.is_empty() {
        vec![None]
    } else {
        axes.core_mhz.iter().copied().map(Some).collect()
    };

    let mut points = Vec::with_capacity(axes.device_counts.len() * clocks.len());
    for (i, &d) in axes.device_counts.iter().enumerate() {
        for (j, &clock) in clocks.iter().enumerate() {
            let point_off = 1 + (i * clocks.len() + j) as u64;
            let _span = tel.map(|t| {
                t.span(
                    SpanLevel::Point,
                    "point",
                    vec![
                        ("devices", d.to_string()),
                        (
                            "freq",
                            clock.map_or_else(|| "default".into(), |f| format!("{f}")),
                        ),
                    ],
                )
            });
            let r = measure_point(workload, spec, d, clock, opts, point_off, &prices);
            if let Some(t) = tel {
                t.record_exchange(
                    r.halo_bytes,
                    r.exchange.time_s,
                    r.exchange.energy_j,
                    r.barrier_wait_s,
                );
            }
            points.push(DistributedPoint {
                num_devices: d,
                core_mhz: clock.unwrap_or(spec.default_core_mhz),
                time_s: r.total.time_s,
                energy_j: r.total.energy_j,
                speedup: baseline.time_s / r.total.time_s,
                norm_energy: r.total.energy_j / baseline.energy_j,
                exchange_time_s: r.exchange.time_s,
                exchange_energy_j: r.exchange.energy_j,
                barrier_wait_s: r.barrier_wait_s,
                halo_bytes: r.halo_bytes,
            });
        }
    }
    if let Some(t) = tel {
        t.record_pricing(prices.stats(), prices.len());
    }

    DistributedCharacterization {
        device: spec.name.clone(),
        workload: name,
        baseline_time_s: baseline.time_s,
        baseline_energy_j: baseline.energy_j,
        points,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use cronos::Grid;

    fn wl() -> DistributedGpuCronos {
        // Big enough that stencil work dominates the halo planes and
        // strong scaling actually pays; small enough to stay fast.
        DistributedGpuCronos::new(Grid::cubic(96, 32, 32), 2)
    }

    #[test]
    fn single_device_default_point_is_the_anchor() {
        let spec = DeviceSpec::v100();
        let c = characterize_distributed(
            &spec,
            &wl(),
            &DistributedAxes::device_counts(vec![1]),
            &DistributedSweepOptions::default(),
        );
        assert_eq!(c.points.len(), 1);
        let p = &c.points[0];
        // Noiseless, the 1-device default point replays the anchor stream
        // bit-identically.
        assert_eq!(p.time_s.to_bits(), c.baseline_time_s.to_bits());
        assert_eq!(p.energy_j.to_bits(), c.baseline_energy_j.to_bits());
        assert_eq!(p.speedup.to_bits(), 1.0f64.to_bits());
        assert_eq!(p.norm_energy.to_bits(), 1.0f64.to_bits());
        assert_eq!(p.halo_bytes, 0);
        assert_eq!(p.exchange_time_s, 0.0);
        assert_eq!(p.core_mhz, spec.default_core_mhz);
    }

    #[test]
    fn strong_scaling_shrinks_makespan_and_grows_exchange_share() {
        let spec = DeviceSpec::v100();
        let c = characterize_distributed(
            &spec,
            &wl(),
            &DistributedAxes::device_counts(vec![1, 2, 4]),
            &DistributedSweepOptions::default(),
        );
        assert_eq!(c.points.len(), 3);
        for w in c.points.windows(2) {
            assert!(
                w[1].speedup > w[0].speedup,
                "speedup must grow with gang size: {} !> {}",
                w[1].speedup,
                w[0].speedup
            );
            assert!(
                w[1].exchange_energy_share() > w[0].exchange_energy_share(),
                "exchange share must grow as slabs shrink: {} !> {}",
                w[1].exchange_energy_share(),
                w[0].exchange_energy_share()
            );
            assert!(w[1].halo_bytes > w[0].halo_bytes);
        }
    }

    #[test]
    fn core_axis_trades_time_for_energy() {
        // Cronos is memory-bound: a lower core clock costs little time and
        // saves real energy, exactly the trade the gang scheduler exploits.
        let spec = DeviceSpec::v100();
        let c = characterize_distributed(
            &spec,
            &wl(),
            &DistributedAxes {
                device_counts: vec![2],
                core_mhz: vec![900.0, spec.default_core_mhz],
            },
            &DistributedSweepOptions::default(),
        );
        assert_eq!(c.points.len(), 2);
        let (low, def) = (&c.points[0], &c.points[1]);
        assert!(low.energy_j < def.energy_j);
        assert!(low.time_s > def.time_s);
    }

    #[test]
    fn noise_seed_is_reproducible_and_decorrelated() {
        let spec = DeviceSpec::v100();
        let axes = DistributedAxes::device_counts(vec![2]);
        let opts = |seed| DistributedSweepOptions {
            reps: 2,
            noise_seed: Some(seed),
            telemetry: None,
        };
        let a = characterize_distributed(&spec, &wl(), &axes, &opts(7));
        let b = characterize_distributed(&spec, &wl(), &axes, &opts(7));
        assert_eq!(a, b, "same seed must reproduce bit-identically");
        let c = characterize_distributed(&spec, &wl(), &axes, &opts(8));
        assert_ne!(
            a.points[0].energy_j, c.points[0].energy_j,
            "different seeds must draw different noise"
        );
    }

    #[test]
    fn armed_telemetry_is_inert_and_audits_the_exchange() {
        let spec = DeviceSpec::v100();
        let axes = DistributedAxes::device_counts(vec![1, 2]);
        let plain =
            characterize_distributed(&spec, &wl(), &axes, &DistributedSweepOptions::default());
        let tel = Telemetry::new();
        let armed = characterize_distributed(
            &spec,
            &wl(),
            &axes,
            &DistributedSweepOptions {
                telemetry: Some(Arc::clone(&tel)),
                ..DistributedSweepOptions::default()
            },
        );
        assert_eq!(plain, armed, "armed telemetry changed a measurement");
        let bytes = tel.registry().counter("synergy.exchange.halo_bytes").get();
        let expected: u64 = armed.points.iter().map(|p| p.halo_bytes).sum();
        assert_eq!(bytes, expected, "halo-byte audit must match the points");
        assert!(bytes > 0);
        assert_eq!(tel.registry().counter("sweep.runs").get(), 1);
    }

    #[test]
    #[should_panic(expected = "oversubscribe")]
    fn oversubscribed_gang_panics() {
        let spec = DeviceSpec::v100();
        characterize_distributed(
            &spec,
            &wl(),
            &DistributedAxes::device_counts(vec![64]),
            &DistributedSweepOptions::default(),
        );
    }
}
