//! The §5.2 evaluation protocol.
//!
//! * [`evaluate_loocv`] — leave-one-input-out cross-validation: for each
//!   input configuration `f⃗`, the domain-specific model trains on
//!   `D \ D_v` and predicts the held-out input's speedup and normalized
//!   energy across all frequencies; the general-purpose model predicts
//!   from the application's static code features. Accuracy is MAPE over
//!   the frequency configurations (Figure 13).
//! * [`evaluate_pareto`] — the §5.2.2 Pareto-set analysis: both models'
//!   predicted Pareto-optimal frequency sets are *realized* (looked up in
//!   the measured characterization) and compared against the true front
//!   (Figure 14).
//!
//! Both evaluations score whole curves through `predict_curve`, which
//! batches every frequency point through the flattened-forest layout
//! (`ml::flat`) — the same inference path the governor serves from, so
//! LOOCV exercises exactly the code that ships.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::characterize::Characterization;
use crate::ds_model::{DomainSpecificModel, PredictedPoint};
use crate::features::N_STATIC_FEATURES;
use crate::gp_model::GeneralPurposeModel;
use crate::pareto::{compare_pareto_sets, pareto_front_indices, ParetoComparison};
use crate::workflow::{predicted_pareto_frequencies, training_set_excluding, CharacterizedInput};

/// Per-input MAPE of both models on both targets — one group of bars in
/// Figure 13.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapeRow {
    /// Input label (paper-figure format).
    pub label: String,
    /// General-purpose model speedup MAPE.
    pub gp_speedup: f64,
    /// Domain-specific model speedup MAPE.
    pub ds_speedup: f64,
    /// General-purpose model normalized-energy MAPE.
    pub gp_energy: f64,
    /// Domain-specific model normalized-energy MAPE.
    pub ds_energy: f64,
}

impl MapeRow {
    /// GP-to-DS error ratio on speedup (the "×10 better" headline).
    pub fn speedup_improvement(&self) -> f64 {
        self.gp_speedup / self.ds_speedup
    }

    /// GP-to-DS error ratio on normalized energy.
    pub fn energy_improvement(&self) -> f64 {
        self.gp_energy / self.ds_energy
    }
}

fn curve_mape(truth: &Characterization, pred: &[PredictedPoint]) -> (f64, f64) {
    assert_eq!(truth.points.len(), pred.len(), "frequency grids must match");
    let true_speedup: Vec<f64> = truth.points.iter().map(|p| p.speedup).collect();
    let true_energy: Vec<f64> = truth.points.iter().map(|p| p.norm_energy).collect();
    let pred_speedup: Vec<f64> = pred.iter().map(|p| p.speedup).collect();
    let pred_energy: Vec<f64> = pred.iter().map(|p| p.norm_energy).collect();
    (
        ml::metrics::mape(&true_speedup, &pred_speedup),
        ml::metrics::mape(&true_energy, &pred_energy),
    )
}

/// Runs the full leave-one-input-out comparison.
///
/// `inputs` are the characterized configurations; `gp_features[i]` is the
/// static feature vector the GP model sees for input `i` (extracted from
/// the application code, §4.1); `default_freq_mhz` anchors DS
/// normalization; `seed` makes forest training reproducible.
///
/// # Panics
/// Panics with fewer than two inputs (LOOCV needs a nonempty training
/// remainder) or mismatched `gp_features` length.
pub fn evaluate_loocv(
    inputs: &[CharacterizedInput],
    gp_model: &GeneralPurposeModel,
    gp_features: &[[f64; N_STATIC_FEATURES]],
    default_freq_mhz: f64,
    seed: u64,
) -> Vec<MapeRow> {
    assert!(inputs.len() >= 2, "LOOCV needs at least two inputs");
    assert_eq!(
        inputs.len(),
        gp_features.len(),
        "one feature vector per input"
    );

    let freqs: Vec<f64> = inputs[0]
        .characterization
        .points
        .iter()
        .map(|p| p.freq_mhz)
        .collect();

    // Each fold trains its own forest on its own D \ D_v — fully
    // independent, so the folds fan out across threads (row order is
    // preserved by the indexed collect).
    inputs
        .par_iter()
        .enumerate()
        .map(|(i, held_out)| {
            // D_t = D \ D_v
            let samples = training_set_excluding(inputs, i);
            let ds = DomainSpecificModel::train(&samples, default_freq_mhz, seed);
            let ds_curve = ds.predict_curve(&held_out.features, &freqs);
            let (ds_speedup, ds_energy) = curve_mape(&held_out.characterization, &ds_curve);

            let gp_curve = gp_model.predict_curve(&gp_features[i], &freqs);
            let (gp_speedup, gp_energy) = curve_mape(&held_out.characterization, &gp_curve);

            MapeRow {
                label: held_out.label.clone(),
                gp_speedup,
                ds_speedup,
                gp_energy,
                ds_energy,
            }
        })
        .collect()
}

/// Outcome of the Pareto-set analysis for one input (Figure 14).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoEval {
    /// Input label.
    pub label: String,
    /// The true Pareto-optimal frequencies.
    pub true_freqs: Vec<f64>,
    /// The true Pareto points `(speedup, norm_energy)`.
    pub true_points: Vec<(f64, f64)>,
    /// GP-predicted set vs truth.
    pub gp: ParetoComparison,
    /// Realized objective points of the GP predictions.
    pub gp_realized: Vec<(f64, f64)>,
    /// DS-predicted set vs truth.
    pub ds: ParetoComparison,
    /// Realized objective points of the DS predictions.
    pub ds_realized: Vec<(f64, f64)>,
}

/// Realizes a predicted frequency set against the measured sweep: the
/// (speedup, energy) actually obtained when running at those frequencies.
fn realize(ch: &Characterization, freqs: &[f64]) -> Vec<(f64, f64)> {
    freqs
        .iter()
        .map(|&f| {
            let p = ch.at_freq(f);
            (p.speedup, p.norm_energy)
        })
        .collect()
}

/// Runs the §5.2.2 Pareto comparison for one held-out input, with the DS
/// model trained on the remaining inputs (same protocol as the MAPE study).
pub fn evaluate_pareto(
    inputs: &[CharacterizedInput],
    held_out_index: usize,
    gp_model: &GeneralPurposeModel,
    gp_features: &[f64; N_STATIC_FEATURES],
    default_freq_mhz: f64,
    seed: u64,
) -> ParetoEval {
    assert!(held_out_index < inputs.len(), "index out of range");
    let held_out = &inputs[held_out_index];
    let freqs: Vec<f64> = held_out
        .characterization
        .points
        .iter()
        .map(|p| p.freq_mhz)
        .collect();

    // True front.
    let objective = held_out.characterization.objective_points();
    let true_idx = pareto_front_indices(&objective);
    let true_freqs: Vec<f64> = true_idx.iter().map(|&i| freqs[i]).collect();
    let true_points: Vec<(f64, f64)> = true_idx.iter().map(|&i| objective[i]).collect();

    // DS prediction (trained without the held-out input).
    let samples = training_set_excluding(inputs, held_out_index);
    let ds_model = DomainSpecificModel::train(&samples, default_freq_mhz, seed);
    let ds_curve = ds_model.predict_curve(&held_out.features, &freqs);
    let ds_freqs = predicted_pareto_frequencies(&ds_curve);
    let ds_realized = realize(&held_out.characterization, &ds_freqs);
    let ds = compare_pareto_sets(&true_freqs, &true_points, &ds_freqs, &ds_realized);

    // GP prediction.
    let gp_curve = gp_model.predict_curve(gp_features, &freqs);
    let gp_freqs = predicted_pareto_frequencies(&gp_curve);
    let gp_realized = realize(&held_out.characterization, &gp_freqs);
    let gp = compare_pareto_sets(&true_freqs, &true_points, &gp_freqs, &gp_realized);

    ParetoEval {
        label: held_out.label.clone(),
        true_freqs,
        true_points,
        gp,
        gp_realized,
        ds,
        ds_realized,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::CronosInput;
    use crate::workflow::{characterize_cronos, cronos_static_features};
    use gpu_sim::DeviceSpec;
    use ml::forest::RandomForestParams;
    use ml::tree::TreeParams;

    fn quick_gp(spec: &DeviceSpec, freqs: &[f64]) -> GeneralPurposeModel {
        GeneralPurposeModel::train_with(
            spec,
            freqs,
            0,
            RandomForestParams {
                n_estimators: 12,
                tree: TreeParams::default(),
                bootstrap: true,
            },
        )
    }

    fn cronos_setup() -> (
        DeviceSpec,
        Vec<f64>,
        Vec<CharacterizedInput>,
        Vec<[f64; N_STATIC_FEATURES]>,
        GeneralPurposeModel,
    ) {
        let spec = DeviceSpec::v100();
        let freqs = crate::workflow::experiment_frequencies(&spec, 4);
        let configs = CronosInput::paper_configs();
        let inputs = characterize_cronos(&spec, &configs, &freqs, 1, None);
        let gp_features: Vec<_> = configs.iter().map(cronos_static_features).collect();
        let gp = quick_gp(&spec, &freqs);
        (spec, freqs, inputs, gp_features, gp)
    }

    #[test]
    fn loocv_produces_row_per_input() {
        let (spec, _freqs, inputs, gp_features, gp) = cronos_setup();
        let rows = evaluate_loocv(&inputs, &gp, &gp_features, spec.default_core_mhz, 0);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.ds_speedup >= 0.0 && r.ds_speedup.is_finite());
            assert!(r.gp_speedup >= 0.0 && r.gp_speedup.is_finite());
        }
    }

    #[test]
    fn domain_specific_beats_general_purpose_on_cronos() {
        // The headline claim on the Cronos side. Speedup: DS beats GP on
        // every input with a large aggregate factor. Energy: DS wins
        // clearly below the device's saturation point; on the largest
        // grids the simulated GP happens to be accurate for energy (both
        // micro-bench and app worlds are fully saturated and memory-bound
        // there), so we assert the win below saturation plus the aggregate
        // factors — the honest state of this reproduction, recorded in
        // EXPERIMENTS.md.
        let (spec, _freqs, inputs, gp_features, gp) = cronos_setup();
        let rows = evaluate_loocv(&inputs, &gp, &gp_features, spec.default_core_mhz, 0);
        for r in &rows {
            assert!(
                r.ds_speedup < r.gp_speedup,
                "{}: DS speedup MAPE {} vs GP {}",
                r.label,
                r.ds_speedup,
                r.gp_speedup
            );
        }
        for r in rows.iter().take(3) {
            assert!(
                r.ds_energy < r.gp_energy,
                "{}: DS energy MAPE {} vs GP {}",
                r.label,
                r.ds_energy,
                r.gp_energy
            );
        }
        let mean_speedup_ratio: f64 =
            rows.iter().map(|r| r.speedup_improvement()).sum::<f64>() / rows.len() as f64;
        assert!(
            mean_speedup_ratio > 5.0,
            "mean speedup improvement {mean_speedup_ratio}"
        );
        let mean_energy_ratio: f64 =
            rows.iter().map(|r| r.energy_improvement()).sum::<f64>() / rows.len() as f64;
        assert!(
            mean_energy_ratio > 2.0,
            "mean energy improvement {mean_energy_ratio}"
        );
    }

    #[test]
    fn ds_errors_are_small_in_absolute_terms() {
        let (spec, _freqs, inputs, gp_features, gp) = cronos_setup();
        let rows = evaluate_loocv(&inputs, &gp, &gp_features, spec.default_core_mhz, 0);
        for r in &rows {
            assert!(
                r.ds_speedup < 0.02,
                "{} DS speedup MAPE too large: {}",
                r.label,
                r.ds_speedup
            );
            assert!(
                r.ds_energy < 0.08,
                "{} DS energy MAPE {}",
                r.label,
                r.ds_energy
            );
        }
    }

    #[test]
    fn pareto_eval_produces_realizable_sets() {
        let (spec, _freqs, inputs, gp_features, gp) = cronos_setup();
        let eval = evaluate_pareto(&inputs, 4, &gp, &gp_features[4], spec.default_core_mhz, 0);
        assert!(!eval.true_freqs.is_empty());
        assert_eq!(eval.ds_realized.len(), eval.ds.predicted_size);
        assert_eq!(eval.gp_realized.len(), eval.gp.predicted_size);
        // The DS realized points must track the true front closely.
        assert!(
            eval.ds.mean_distance < 0.1,
            "DS realized distance {}",
            eval.ds.mean_distance
        );
    }

    #[test]
    fn ds_pareto_at_least_as_close_as_gp() {
        let (spec, _freqs, inputs, gp_features, gp) = cronos_setup();
        let eval = evaluate_pareto(&inputs, 4, &gp, &gp_features[4], spec.default_core_mhz, 0);
        assert!(
            eval.ds.mean_distance <= eval.gp.mean_distance + 1e-9,
            "DS {} vs GP {}",
            eval.ds.mean_distance,
            eval.gp.mean_distance
        );
    }

    #[test]
    #[should_panic(expected = "at least two inputs")]
    fn loocv_rejects_single_input() {
        let (spec, _freqs, inputs, gp_features, gp) = cronos_setup();
        let _ = evaluate_loocv(
            &inputs[..1],
            &gp,
            &gp_features[..1],
            spec.default_core_mhz,
            0,
        );
    }
}
