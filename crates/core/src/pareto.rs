//! Pareto-front computation and set-accuracy metrics (§2.1 and §5.2.2).
//!
//! Points live in the (speedup, normalized-energy) plane: speedup is
//! maximized, normalized energy minimized. A point is Pareto-optimal when
//! no other point weakly dominates it ("no improvement can be made in one
//! objective without sacrificing the other").

use serde::{Deserialize, Serialize};

/// Whether `a` dominates `b`: at least as good in both objectives and
/// strictly better in one. Objective order: `(speedup ↑, energy ↓)`.
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    let ge = a.0 >= b.0 && a.1 <= b.1;
    let strict = a.0 > b.0 || a.1 < b.1;
    ge && strict
}

/// Indices of the Pareto-optimal points, in input order. Duplicate
/// non-dominated points are all kept (they correspond to distinct
/// frequency configurations with identical outcomes).
///
/// Sort-and-sweep, `O(n log n)`: points are visited in descending-speedup
/// groups; within a group only the minimum-energy points survive (an
/// equal-speedup, lower-energy sibling dominates the rest), and a group
/// survives at all only if its minimum energy is *strictly* below the
/// best energy seen at any strictly higher speedup (a faster point with
/// energy ≤ ours dominates us). Points with a NaN coordinate are
/// incomparable under [`dominates`] — they neither dominate nor are
/// dominated — so they are always on the front, exactly as the quadratic
/// all-pairs scan classified them.
pub fn pareto_front_indices(points: &[(f64, f64)]) -> Vec<usize> {
    let n = points.len();
    let mut on_front = vec![true; n];
    let mut order: Vec<usize> = (0..n)
        .filter(|&i| !points[i].0.is_nan() && !points[i].1.is_nan())
        .collect();
    order.sort_by(|&a, &b| {
        points[b]
            .0
            .total_cmp(&points[a].0)
            .then(points[a].1.total_cmp(&points[b].1))
    });
    // Minimum energy among points with strictly greater speedup than the
    // current group (those dominate at energy ≤ ours: speedup is already
    // strictly better). `None` until a group has been seen — a literal
    // +∞ sentinel would wrongly reject a genuine (fastest, energy = +∞)
    // point.
    let mut best_above: Option<f64> = None;
    let mut i = 0;
    while i < order.len() {
        let speedup = points[order[i]].0;
        let mut j = i;
        // Group by numeric equality, so -0.0 and 0.0 share a group just
        // as dominance compares them equal. (That also means the group is
        // not necessarily one sorted run — the minimum is computed below,
        // not taken from the first element.)
        while j < order.len() && points[order[j]].0 == speedup {
            j += 1;
        }
        let group_min = order[i..j]
            .iter()
            .map(|&idx| points[idx].1)
            .fold(f64::INFINITY, f64::min);
        let group_survives = best_above.is_none_or(|b| group_min < b);
        for &idx in &order[i..j] {
            on_front[idx] = group_survives && points[idx].1 == group_min;
        }
        best_above = Some(best_above.map_or(group_min, |b| b.min(group_min)));
        i = j;
    }
    (0..n).filter(|&i| on_front[i]).collect()
}

/// Accuracy of a predicted Pareto frequency set against the true one
/// (§5.2.2's two metrics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoComparison {
    /// Frequencies in the predicted set that exactly match a true
    /// Pareto-optimal frequency.
    pub exact_matches: usize,
    /// Size of the predicted set.
    pub predicted_size: usize,
    /// Size of the true set.
    pub true_size: usize,
    /// Mean distance from each *realized* predicted point (the measured
    /// speedup/energy when running at the predicted frequency) to its
    /// nearest true Pareto point, in objective space.
    pub mean_distance: f64,
}

impl ParetoComparison {
    /// Fraction of predicted frequencies that are truly Pareto-optimal.
    pub fn precision(&self) -> f64 {
        if self.predicted_size == 0 {
            0.0
        } else {
            self.exact_matches as f64 / self.predicted_size as f64
        }
    }

    /// Fraction of the true Pareto set that was predicted.
    pub fn recall(&self) -> f64 {
        if self.true_size == 0 {
            0.0
        } else {
            self.exact_matches as f64 / self.true_size as f64
        }
    }
}

/// Compares a predicted Pareto frequency set against the truth.
///
/// * `true_freqs` / `true_points` — the actual Pareto-optimal frequencies
///   and their (speedup, energy) values;
/// * `predicted_freqs` — the frequencies a model predicted as
///   Pareto-optimal;
/// * `realized_points` — the *measured* (speedup, energy) when the
///   application actually runs at each predicted frequency ("these are the
///   real values that would be obtained if the applications were executed
///   with the predicted Pareto-optimal frequencies", §5.2.2).
///
/// # Panics
/// Panics if `predicted_freqs` and `realized_points` lengths differ.
pub fn compare_pareto_sets(
    true_freqs: &[f64],
    true_points: &[(f64, f64)],
    predicted_freqs: &[f64],
    realized_points: &[(f64, f64)],
) -> ParetoComparison {
    assert_eq!(
        predicted_freqs.len(),
        realized_points.len(),
        "each predicted frequency needs its realized outcome"
    );
    let exact_matches = predicted_freqs
        .iter()
        .filter(|p| true_freqs.iter().any(|t| (*t - **p).abs() < 1e-6))
        .count();
    let mean_distance = if realized_points.is_empty() || true_points.is_empty() {
        f64::INFINITY
    } else {
        realized_points
            .iter()
            .map(|r| {
                true_points
                    .iter()
                    .map(|t| ((r.0 - t.0).powi(2) + (r.1 - t.1).powi(2)).sqrt())
                    .fold(f64::INFINITY, f64::min)
            })
            .sum::<f64>()
            / realized_points.len() as f64
    };
    ParetoComparison {
        exact_matches,
        predicted_size: predicted_freqs.len(),
        true_size: true_freqs.len(),
        mean_distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_cases() {
        assert!(dominates((1.2, 0.9), (1.0, 1.0)));
        assert!(dominates((1.0, 0.9), (1.0, 1.0)));
        assert!(!dominates((1.0, 1.0), (1.0, 1.0)), "no self-domination");
        assert!(!dominates((1.2, 1.1), (1.0, 1.0)), "trade-off ≠ dominance");
    }

    #[test]
    fn front_of_staircase() {
        // Classic trade-off curve: all points non-dominated.
        let pts = vec![(0.8, 0.7), (0.9, 0.8), (1.0, 1.0), (1.2, 1.5)];
        assert_eq!(pareto_front_indices(&pts), vec![0, 1, 2, 3]);
    }

    #[test]
    fn dominated_points_excluded() {
        let pts = vec![
            (1.0, 1.0), // dominated by (1.1, 0.9)
            (1.1, 0.9),
            (0.9, 1.2), // dominated by both
            (1.2, 1.05),
        ];
        assert_eq!(pareto_front_indices(&pts), vec![1, 3]);
    }

    #[test]
    fn duplicates_all_kept() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0)];
        assert_eq!(pareto_front_indices(&pts), vec![0, 1]);
    }

    #[test]
    fn duplicates_of_dominated_points_all_excluded() {
        let pts = vec![(1.0, 1.0), (1.2, 0.9), (1.0, 1.0), (1.2, 0.9)];
        assert_eq!(pareto_front_indices(&pts), vec![1, 3]);
    }

    #[test]
    fn equal_speedup_keeps_only_minimum_energy() {
        let pts = vec![(1.0, 1.2), (1.0, 0.9), (1.0, 0.9), (1.0, 1.5)];
        assert_eq!(pareto_front_indices(&pts), vec![1, 2]);
    }

    #[test]
    fn negative_zero_speedup_groups_with_positive_zero() {
        // -0.0 == 0.0 for dominance, but total_cmp orders them apart: the
        // sweep must still see them as one group.
        let pts = vec![(0.0, 5.0), (-0.0, 1.0)];
        assert_eq!(pareto_front_indices(&pts), vec![1]);
    }

    #[test]
    fn nan_points_are_incomparable_and_kept() {
        let pts = vec![(f64::NAN, 0.1), (1.0, 1.0), (2.0, f64::NAN), (0.5, 2.0)];
        // Index 3 is dominated by index 1; the NaN points dominate nothing
        // and are dominated by nothing.
        assert_eq!(pareto_front_indices(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn empty_input_empty_front() {
        assert!(pareto_front_indices(&[]).is_empty());
    }

    #[test]
    fn comparison_counts_exact_matches() {
        let true_freqs = [800.0, 900.0, 1000.0];
        let true_pts = [(0.8, 0.8), (0.9, 0.85), (1.0, 1.0)];
        let pred_freqs = [900.0, 1100.0];
        let realized = [(0.9, 0.85), (1.02, 1.1)];
        let cmp = compare_pareto_sets(&true_freqs, &true_pts, &pred_freqs, &realized);
        assert_eq!(cmp.exact_matches, 1);
        assert_eq!(cmp.predicted_size, 2);
        assert_eq!(cmp.true_size, 3);
        assert!((cmp.precision() - 0.5).abs() < 1e-12);
        assert!((cmp.recall() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_zero_distance() {
        let freqs = [800.0, 1000.0];
        let pts = [(0.8, 0.8), (1.0, 1.0)];
        let cmp = compare_pareto_sets(&freqs, &pts, &freqs, &pts);
        assert_eq!(cmp.exact_matches, 2);
        assert_eq!(cmp.mean_distance, 0.0);
        assert_eq!(cmp.precision(), 1.0);
        assert_eq!(cmp.recall(), 1.0);
    }

    #[test]
    fn distance_measures_realized_gap() {
        let true_freqs = [1000.0];
        let true_pts = [(1.0, 1.0)];
        let pred = [500.0];
        let realized = [(1.0, 1.5)]; // 0.5 away in energy
        let cmp = compare_pareto_sets(&true_freqs, &true_pts, &pred, &realized);
        assert!((cmp.mean_distance - 0.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// The original all-pairs `O(n²)` scan, retained verbatim as the
    /// property-test oracle for the sort-and-sweep implementation.
    fn pareto_front_indices_naive(points: &[(f64, f64)]) -> Vec<usize> {
        (0..points.len())
            .filter(|&i| !points.iter().any(|&q| dominates(q, points[i])))
            .collect()
    }

    /// Coarsely quantized points: exact ties and duplicates everywhere —
    /// the cases where sweep bookkeeping could diverge from the oracle.
    fn quantized_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
        proptest::collection::vec((0u64..12, 0u64..12), 1..60).prop_map(|v| {
            v.into_iter()
                .map(|(s, e)| (0.5 + s as f64 * 0.125, 0.5 + e as f64 * 0.125))
                .collect()
        })
    }

    /// Full pathological coordinate set: smooth values, both zeros,
    /// infinities, and NaN.
    fn wild_coord() -> impl Strategy<Value = f64> {
        prop_oneof![
            -2.0..2.0f64,
            Just(0.0),
            Just(-0.0),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(f64::NAN),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn sweep_matches_naive_on_quantized_grids(pts in quantized_points()) {
            prop_assert_eq!(pareto_front_indices(&pts), pareto_front_indices_naive(&pts));
        }

        #[test]
        fn sweep_matches_naive_on_wild_floats(
            pts in proptest::collection::vec((wild_coord(), wild_coord()), 1..40)
        ) {
            prop_assert_eq!(pareto_front_indices(&pts), pareto_front_indices_naive(&pts));
        }
    }
}
