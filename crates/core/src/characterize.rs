//! Frequency-sweep characterization (§2–3 of the paper).
//!
//! Runs a workload at every requested core frequency plus the device's
//! default configuration, repeating each measurement and taking the median
//! (the paper repeats five times, §5.1), and normalizes into the
//! speedup / normalized-energy plane of Figures 1–10:
//!
//! * **speedup** `= t_default / t(f)` — higher is better,
//! * **normalized energy** `= e(f) / e_default` — lower is better.
//!
//! The baseline follows vendor semantics automatically: the fixed default
//! application clock on NVIDIA, the auto performance level on AMD
//! (§3.1: "AMD GPUs do not have a default frequency…").
//!
//! ## Sweep engine
//!
//! [`characterize`] is a *trace-once / re-price-everywhere* engine: the
//! workload's kernel sequence is recorded once into a
//! [`synergy::KernelTrace`], every sweep point replays that trace through
//! the batch submission path (one cost-model evaluation per distinct
//! `(kernel, frequency)` pair, shared across the whole sweep via an
//! `Arc<PriceTable>`), and the per-frequency points fan out across threads
//! with rayon. Results are **bit-identical** to the legacy per-submission
//! sweep, kept as [`characterize_serial`]: replay preserves submission
//! order (so floating-point accumulation order is unchanged), noise seeds
//! are keyed by frequency *index* (so thread scheduling cannot reorder
//! random streams), and each launch draws its noise factors in the legacy
//! order. The equivalence tests at the bottom of this module pin the two
//! paths together, noiseless and noisy, on NVIDIA and AMD devices.

use std::sync::Arc;

use gpu_sim::noise::NoiseModel;
use gpu_sim::pricing::PriceTable;
use gpu_sim::{Device, DeviceSpec};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use synergy::energy::{measure_median, Measurement};
use synergy::{KernelTrace, SynergyQueue};

/// A workload that can be executed on a SYnergy queue. Implemented here
/// for the two applications' GPU drivers.
pub trait Workload: Sync {
    /// Submits one complete run and returns its time/energy.
    fn run(&self, queue: &mut SynergyQueue) -> Measurement;
    /// Display name for reports.
    fn name(&self) -> String;
    /// The workload's kernel trace: what one [`Workload::run`] submits, in
    /// order. The default implementation records a run through a
    /// zero-cost recording queue; implementors with known structure
    /// override it to build the trace directly.
    fn record(&self, spec: &DeviceSpec) -> KernelTrace {
        KernelTrace::record(spec, |q| {
            self.run(q);
        })
    }
}

impl Workload for cronos::GpuCronos {
    fn run(&self, queue: &mut SynergyQueue) -> Measurement {
        cronos::GpuCronos::run(self, queue)
    }
    fn name(&self) -> String {
        format!("cronos {}x{}x{}", self.grid.nx, self.grid.ny, self.grid.nz)
    }
    fn record(&self, _spec: &DeviceSpec) -> KernelTrace {
        self.record_trace()
    }
}

impl Workload for ligen::GpuLigen {
    fn run(&self, queue: &mut SynergyQueue) -> Measurement {
        ligen::GpuLigen::run(self, queue)
    }
    fn name(&self) -> String {
        format!(
            "ligen {}x{}x{}",
            self.n_atoms, self.n_fragments, self.n_ligands
        )
    }
    fn record(&self, _spec: &DeviceSpec) -> KernelTrace {
        self.record_trace()
    }
}

/// One characterized operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharPoint {
    /// Core frequency (MHz).
    pub freq_mhz: f64,
    /// Median run time (s).
    pub time_s: f64,
    /// Median run energy (J).
    pub energy_j: f64,
    /// `t_baseline / time_s`.
    pub speedup: f64,
    /// `energy_j / e_baseline`.
    pub norm_energy: f64,
}

/// A full frequency-sweep characterization of one workload on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Device name.
    pub device: String,
    /// Workload name.
    pub workload: String,
    /// Baseline (default-configuration) run time (s).
    pub baseline_time_s: f64,
    /// Baseline run energy (J).
    pub baseline_energy_j: f64,
    /// Points in ascending frequency order.
    pub points: Vec<CharPoint>,
}

impl Characterization {
    /// The `(speedup, norm_energy)` pairs, frequency-ascending.
    pub fn objective_points(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.speedup, p.norm_energy))
            .collect()
    }

    /// Point measured at (or nearest to) the given frequency.
    pub fn at_freq(&self, freq_mhz: f64) -> &CharPoint {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.freq_mhz - freq_mhz)
                    .abs()
                    .total_cmp(&(b.freq_mhz - freq_mhz).abs())
            })
            .expect("non-empty characterization")
    }
}

/// Builds the per-frequency measurement device shared by both sweep paths:
/// seed `0` is the baseline, seed `1 + i` is frequency index `i` — keyed by
/// *index*, not execution order, so the parallel path draws identical noise.
fn sweep_device(spec: &DeviceSpec, noise_seed: Option<u64>, seed_off: u64) -> Device {
    match noise_seed {
        Some(seed) => Device::with_noise(spec.clone(), NoiseModel::realistic(seed + seed_off)),
        None => Device::new(spec.clone()),
    }
}

fn char_point(f: f64, m: Measurement, baseline: Measurement) -> CharPoint {
    CharPoint {
        freq_mhz: f,
        time_s: m.time_s,
        energy_j: m.energy_j,
        speedup: baseline.time_s / m.time_s,
        norm_energy: m.energy_j / baseline.energy_j,
    }
}

/// Sweeps `freqs` with `reps` repetitions per point (median-aggregated).
/// `noise_seed` enables the measurement-noise model; `None` runs noiseless.
///
/// This is the fast path: the workload is recorded once, then every
/// frequency point replays the trace with memoized kernel pricing, fanned
/// out over threads. Output is bit-identical to [`characterize_serial`].
///
/// # Panics
/// Panics on an empty frequency list or `reps == 0`.
pub fn characterize(
    spec: &DeviceSpec,
    workload: &dyn Workload,
    freqs: &[f64],
    reps: usize,
    noise_seed: Option<u64>,
) -> Characterization {
    assert!(!freqs.is_empty(), "need at least one frequency");
    assert!(reps > 0, "need at least one repetition");

    let trace = workload.record(spec);
    let prices = Arc::new(PriceTable::new());
    let make_queue = |seed_off: u64| {
        let mut dev = sweep_device(spec, noise_seed, seed_off);
        // Replay reads only the queue's aggregate counters; skip per-batch
        // trace events and route all pricing through the shared memo table.
        dev.set_trace_capacity(Some(0));
        dev.set_price_table(Arc::clone(&prices));
        SynergyQueue::for_device(dev)
    };

    // Baseline: the device's default configuration.
    let baseline = {
        let mut q = make_queue(0);
        measure_median(&mut q, reps, |q| trace.replay_on(q))
    };

    let points: Vec<CharPoint> = freqs
        .par_iter()
        .enumerate()
        .map(|(i, &f)| {
            let mut q = make_queue(1 + i as u64);
            q.set_policy(synergy::FrequencyPolicy::Fixed(f));
            let m = measure_median(&mut q, reps, |q| trace.replay_on(q));
            char_point(f, m, baseline)
        })
        .collect();

    Characterization {
        device: spec.name.clone(),
        workload: workload.name(),
        baseline_time_s: baseline.time_s,
        baseline_energy_j: baseline.energy_j,
        points,
    }
}

/// The legacy sweep: every repetition re-runs the workload's submission
/// loop kernel by kernel, serially across frequencies. Kept as the
/// reference implementation the trace-replay engine is pinned against (and
/// as the natural driver for workloads whose submission stream is not
/// replayable). Same contract as [`characterize`].
///
/// # Panics
/// Panics on an empty frequency list or `reps == 0`.
pub fn characterize_serial(
    spec: &DeviceSpec,
    workload: &dyn Workload,
    freqs: &[f64],
    reps: usize,
    noise_seed: Option<u64>,
) -> Characterization {
    assert!(!freqs.is_empty(), "need at least one frequency");
    assert!(reps > 0, "need at least one repetition");

    // Baseline: the device's default configuration.
    let mut q = SynergyQueue::for_device(sweep_device(spec, noise_seed, 0));
    let baseline = measure_median(&mut q, reps, |q| workload.run(q));

    let mut points = Vec::with_capacity(freqs.len());
    for (i, &f) in freqs.iter().enumerate() {
        let mut q = SynergyQueue::for_device(sweep_device(spec, noise_seed, 1 + i as u64));
        q.set_policy(synergy::FrequencyPolicy::Fixed(f));
        let m = measure_median(&mut q, reps, |q| workload.run(q));
        points.push(char_point(f, m, baseline));
    }

    Characterization {
        device: spec.name.clone(),
        workload: workload.name(),
        baseline_time_s: baseline.time_s,
        baseline_energy_j: baseline.energy_j,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cronos::Grid;

    fn v100() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn large_cronos() -> cronos::GpuCronos {
        cronos::GpuCronos::new(Grid::cubic(160, 64, 64), 2)
    }

    fn small_cronos() -> cronos::GpuCronos {
        cronos::GpuCronos::new(Grid::cubic(20, 8, 8), 5)
    }

    fn large_ligen() -> ligen::GpuLigen {
        ligen::GpuLigen::new(10_000, 89, 20)
    }

    #[test]
    fn default_frequency_point_is_unity() {
        let spec = v100();
        let c = characterize(&spec, &large_cronos(), &[spec.default_core_mhz], 1, None);
        let p = &c.points[0];
        assert!((p.speedup - 1.0).abs() < 1e-9);
        assert!((p.norm_energy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cronos_large_grid_shape_matches_paper() {
        // Fig. 4b: up-clocking buys ~no speedup but much more energy;
        // down-clocking saves ~20 % energy at near-zero slowdown.
        let spec = v100();
        let c = characterize(
            &spec,
            &large_cronos(),
            &[900.0, spec.default_core_mhz, spec.max_core_mhz()],
            1,
            None,
        );
        let low = c.at_freq(900.0);
        let max = c.at_freq(spec.max_core_mhz());
        assert!(low.speedup > 0.94, "low-clock speedup {}", low.speedup);
        assert!(
            low.norm_energy < 0.85,
            "low-clock energy {}",
            low.norm_energy
        );
        assert!(max.speedup < 1.06, "max-clock speedup {}", max.speedup);
        assert!(
            max.norm_energy > 1.15,
            "max-clock energy {}",
            max.norm_energy
        );
    }

    #[test]
    fn ligen_large_input_shape_matches_paper() {
        // Fig. 10b: up-clocking gains ~20 % speed at a large energy cost.
        let spec = v100();
        let c = characterize(
            &spec,
            &large_ligen(),
            &[1100.0, spec.max_core_mhz()],
            1,
            None,
        );
        let max = c.at_freq(spec.max_core_mhz());
        assert!(
            (1.1..1.35).contains(&max.speedup),
            "speedup {}",
            max.speedup
        );
        assert!(max.norm_energy > 1.3, "energy {}", max.norm_energy);
        let low = c.at_freq(1100.0);
        assert!(low.norm_energy < 1.0, "down-clock should save energy");
    }

    #[test]
    fn speedup_monotone_in_frequency() {
        let spec = v100();
        let freqs: Vec<f64> = spec.core_freqs.strided(20);
        let c = characterize(&spec, &large_ligen(), &freqs, 1, None);
        for w in c.points.windows(2) {
            assert!(
                w[1].speedup >= w[0].speedup * (1.0 - 1e-9),
                "speedup must not decrease with f"
            );
        }
    }

    #[test]
    fn noise_changes_values_but_not_shape() {
        let spec = v100();
        let freqs = [800.0, 1312.0, 1597.0];
        let clean = characterize(&spec, &large_cronos(), &freqs, 1, None);
        let noisy = characterize(&spec, &large_cronos(), &freqs, 5, Some(7));
        for (a, b) in clean.points.iter().zip(&noisy.points) {
            assert!((a.speedup - b.speedup).abs() / a.speedup < 0.05);
            assert!((a.norm_energy - b.norm_energy).abs() / a.norm_energy < 0.05);
        }
    }

    #[test]
    fn amd_baseline_is_auto_configuration() {
        let spec = DeviceSpec::mi100();
        let c = characterize(&spec, &large_cronos(), &[1450.0], 1, None);
        // The auto governor converges to 1450 MHz under load, so the pinned
        // 1450 MHz point must match the auto baseline.
        let p = c.at_freq(1450.0);
        assert!((p.speedup - 1.0).abs() < 1e-9);
        assert!((p.norm_energy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn at_freq_snaps_to_nearest() {
        let spec = v100();
        let c = characterize(&spec, &large_cronos(), &[800.0, 1200.0], 1, None);
        assert_eq!(c.at_freq(810.0).freq_mhz, 800.0);
        assert_eq!(c.at_freq(1100.0).freq_mhz, 1200.0);
    }

    // ---- Golden equivalence: trace-replay sweep ≡ legacy serial sweep ----
    //
    // Exact `==` on every f64 in the result: the fast path must be
    // bit-identical, not merely close.

    fn assert_identical(a: &Characterization, b: &Characterization) {
        assert_eq!(a.baseline_time_s, b.baseline_time_s);
        assert_eq!(a.baseline_energy_j, b.baseline_energy_j);
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa, pb, "point at {} MHz diverged", pa.freq_mhz);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn replay_sweep_is_bit_identical_cronos_noiseless() {
        let spec = v100();
        let freqs = [500.0, 900.0, 1312.1, 1597.0];
        let fast = characterize(&spec, &small_cronos(), &freqs, 2, None);
        let slow = characterize_serial(&spec, &small_cronos(), &freqs, 2, None);
        assert_identical(&fast, &slow);
    }

    #[test]
    fn replay_sweep_is_bit_identical_cronos_noisy() {
        let spec = v100();
        let freqs = [500.0, 900.0, 1312.1, 1597.0];
        let fast = characterize(&spec, &small_cronos(), &freqs, 3, Some(20231112));
        let slow = characterize_serial(&spec, &small_cronos(), &freqs, 3, Some(20231112));
        assert_identical(&fast, &slow);
    }

    #[test]
    fn replay_sweep_is_bit_identical_ligen_noiseless() {
        let spec = v100();
        let freqs = [700.0, 1100.0, 1597.0];
        let wl = ligen::GpuLigen::new(1000, 31, 4);
        let fast = characterize(&spec, &wl, &freqs, 2, None);
        let slow = characterize_serial(&spec, &wl, &freqs, 2, None);
        assert_identical(&fast, &slow);
    }

    #[test]
    fn replay_sweep_is_bit_identical_ligen_noisy() {
        let spec = v100();
        let freqs = [700.0, 1100.0, 1597.0];
        let wl = ligen::GpuLigen::new(1000, 31, 4);
        let fast = characterize(&spec, &wl, &freqs, 5, Some(99));
        let slow = characterize_serial(&spec, &wl, &freqs, 5, Some(99));
        assert_identical(&fast, &slow);
    }

    #[test]
    fn replay_sweep_is_bit_identical_on_amd_auto_baseline() {
        let spec = DeviceSpec::mi100();
        let freqs = [700.0, 1000.0, 1450.0];
        let fast = characterize(&spec, &small_cronos(), &freqs, 2, Some(5));
        let slow = characterize_serial(&spec, &small_cronos(), &freqs, 2, Some(5));
        assert_identical(&fast, &slow);
    }
}
