//! Frequency-sweep characterization (§2–3 of the paper).
//!
//! Runs a workload at every requested core frequency plus the device's
//! default configuration, repeating each measurement and taking the median
//! (the paper repeats five times, §5.1), and normalizes into the
//! speedup / normalized-energy plane of Figures 1–10:
//!
//! * **speedup** `= t_default / t(f)` — higher is better,
//! * **normalized energy** `= e(f) / e_default` — lower is better.
//!
//! The baseline follows vendor semantics automatically: the fixed default
//! application clock on NVIDIA, the auto performance level on AMD
//! (§3.1: "AMD GPUs do not have a default frequency…").
//!
//! ## Sweep engine
//!
//! [`characterize`] is a *trace-once / re-price-everywhere* engine: the
//! workload's kernel sequence is recorded once into a
//! [`synergy::KernelTrace`], every sweep point replays that trace through
//! the batch submission path (one cost-model evaluation per distinct
//! `(kernel, frequency)` pair, shared across the whole sweep via an
//! `Arc<PriceTable>`), and the per-frequency points fan out across threads
//! with rayon. Results are **bit-identical** to the legacy per-submission
//! sweep, kept as [`characterize_serial`]: replay preserves submission
//! order (so floating-point accumulation order is unchanged), noise seeds
//! are keyed by frequency *index* (so thread scheduling cannot reorder
//! random streams), and each launch draws its noise factors in the legacy
//! order. The equivalence tests at the bottom of this module pin the two
//! paths together, noiseless and noisy, on NVIDIA and AMD devices.

use std::sync::Arc;

use gpu_sim::noise::NoiseModel;
use gpu_sim::pricing::PriceTable;
use gpu_sim::{Device, DeviceSpec, FaultPlan};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use synergy::energy::Measurement;
use synergy::metrics::DegradationMetrics;
use synergy::queue::RetryPolicy;
use synergy::{KernelTrace, SynergyQueue};

use crate::telemetry::{Counter, Histogram, SpanLevel, Telemetry, POINT_TIME_BOUNDS};

/// A workload that can be executed on a SYnergy queue. Implemented here
/// for the two applications' GPU drivers.
pub trait Workload: Sync {
    /// Submits one complete run and returns its time/energy.
    fn run(&self, queue: &mut SynergyQueue) -> Measurement;
    /// Display name for reports.
    fn name(&self) -> String;
    /// The workload's kernel trace: what one [`Workload::run`] submits, in
    /// order. The default implementation records a run through a
    /// zero-cost recording queue; implementors with known structure
    /// override it to build the trace directly.
    fn record(&self, spec: &DeviceSpec) -> KernelTrace {
        KernelTrace::record(spec, |q| {
            self.run(q);
        })
    }
}

impl Workload for cronos::GpuCronos {
    fn run(&self, queue: &mut SynergyQueue) -> Measurement {
        cronos::GpuCronos::run(self, queue)
    }
    fn name(&self) -> String {
        format!("cronos {}x{}x{}", self.grid.nx, self.grid.ny, self.grid.nz)
    }
    fn record(&self, _spec: &DeviceSpec) -> KernelTrace {
        self.record_trace()
    }
}

impl Workload for ligen::GpuLigen {
    fn run(&self, queue: &mut SynergyQueue) -> Measurement {
        ligen::GpuLigen::run(self, queue)
    }
    fn name(&self) -> String {
        format!(
            "ligen {}x{}x{}",
            self.n_atoms, self.n_fragments, self.n_ligands
        )
    }
    fn record(&self, _spec: &DeviceSpec) -> KernelTrace {
        self.record_trace()
    }
}

/// One characterized operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CharPoint {
    /// Core frequency (MHz).
    pub freq_mhz: f64,
    /// Median run time (s).
    pub time_s: f64,
    /// Median run energy (J).
    pub energy_j: f64,
    /// `t_baseline / time_s`.
    pub speedup: f64,
    /// `energy_j / e_baseline`.
    pub norm_energy: f64,
}

/// A full frequency-sweep characterization of one workload on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// Device name.
    pub device: String,
    /// Workload name.
    pub workload: String,
    /// Baseline (default-configuration) run time (s).
    pub baseline_time_s: f64,
    /// Baseline run energy (J).
    pub baseline_energy_j: f64,
    /// Points in ascending frequency order.
    pub points: Vec<CharPoint>,
}

impl Characterization {
    /// The `(speedup, norm_energy)` pairs, frequency-ascending.
    pub fn objective_points(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.speedup, p.norm_energy))
            .collect()
    }

    /// Point measured at (or nearest to) the given frequency.
    pub fn at_freq(&self, freq_mhz: f64) -> &CharPoint {
        self.points
            .iter()
            .min_by(|a, b| {
                (a.freq_mhz - freq_mhz)
                    .abs()
                    .total_cmp(&(b.freq_mhz - freq_mhz).abs())
            })
            .expect("non-empty characterization")
    }
}

/// Builds the per-frequency measurement device shared by both sweep paths:
/// seed `0` is the baseline, seed `1 + i` is frequency index `i` — keyed by
/// *index*, not execution order, so the parallel path draws identical noise.
pub(crate) fn sweep_device(spec: &DeviceSpec, noise_seed: Option<u64>, seed_off: u64) -> Device {
    match noise_seed {
        Some(seed) => Device::with_noise(spec.clone(), NoiseModel::realistic(seed + seed_off)),
        None => Device::new(spec.clone()),
    }
}

pub(crate) fn char_point(f: f64, m: Measurement, baseline: Measurement) -> CharPoint {
    CharPoint {
        freq_mhz: f,
        time_s: m.time_s,
        energy_j: m.energy_j,
        speedup: baseline.time_s / m.time_s,
        norm_energy: m.energy_j / baseline.energy_j,
    }
}

/// Knobs for a fault-aware sweep. `..SweepOptions::default()` fills in a
/// fault-free plan, the default retry policy, and up to two re-measurements
/// per dirty point.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Repetitions per point (median-aggregated). Must be ≥ 1.
    pub reps: usize,
    /// Measurement-noise seed; `None` runs noiseless.
    pub noise_seed: Option<u64>,
    /// Fault plan installed on every measurement device. Each sweep point
    /// and re-measurement attempt derives its own fault stream from the
    /// plan's seed, keyed by frequency *index* (not execution order), so
    /// parallel sweeps stay deterministic.
    pub faults: FaultPlan,
    /// How the queue rides out transient failures.
    pub retry: RetryPolicy,
    /// How many times a dirty point (throttled, retried, or failed) is
    /// re-measured on a fresh queue before being flagged as-is.
    pub remeasure_limit: u32,
    /// Observability sink. `None` (the default) is fully disarmed: no
    /// metric, span, or trace work anywhere on the sweep path. An armed
    /// sink only *observes* — sweep results are bit-identical either way
    /// (pinned by the golden tests below). Honored by
    /// [`characterize_with_options`] and the campaign scheduler; the
    /// serial reference path ignores it.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            reps: 1,
            noise_seed: None,
            faults: FaultPlan::none(),
            retry: RetryPolicy::default(),
            remeasure_limit: 2,
            telemetry: None,
        }
    }
}

/// Pre-resolved handles for the sweep's per-point metrics: name lookups
/// happen once per sweep, so the per-point cost is pure atomic updates.
struct SweepMeters {
    points_priced: Arc<Counter>,
    remeasurements: Arc<Counter>,
    points_flagged: Arc<Counter>,
    point_time_s: Arc<Histogram>,
}

impl SweepMeters {
    fn new(tel: &Telemetry) -> Self {
        let r = tel.registry();
        SweepMeters {
            points_priced: r.counter("sweep.points_priced"),
            remeasurements: r.counter("sweep.remeasurements"),
            points_flagged: r.counter("sweep.points_flagged"),
            point_time_s: r.histogram("sweep.point_time_s", &POINT_TIME_BOUNDS),
        }
    }

    /// Folds one accepted point into the registry: the priced-point
    /// counter, re-measurement / flag tallies, the simulated-run-time
    /// histogram (the *median* time — a deterministic function of the
    /// measurement, so metric snapshots stay goldenable), and the queue's
    /// degradation counters.
    fn record(&self, tel: &Telemetry, m: Measurement, diag: &PointDiagnostics) {
        self.points_priced.inc();
        if diag.remeasured > 0 {
            self.remeasurements.add(u64::from(diag.remeasured));
        }
        if diag.flagged {
            self.points_flagged.inc();
        }
        self.point_time_s.observe(m.time_s);
        tel.record_degradation(&diag.degradation);
    }
}

/// What the fault-aware sweep observed while measuring one point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PointDiagnostics {
    /// Pinned frequency of the point; `None` for the baseline.
    pub freq_mhz: Option<f64>,
    /// Re-measurements taken after the first (dirty) attempt.
    pub remeasured: u32,
    /// The *accepted* measurement was still degraded: faults fired during
    /// it (or a rep failed outright) and the re-measure budget ran out.
    pub flagged: bool,
    /// Degradation counters of the accepted measurement's queue.
    pub degradation: DegradationMetrics,
}

/// Per-point diagnostics of one fault-aware sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepDiagnostics {
    /// Baseline (default-configuration) point.
    pub baseline: PointDiagnostics,
    /// Swept points, in the order of the frequency list.
    pub points: Vec<PointDiagnostics>,
}

impl SweepDiagnostics {
    fn all(&self) -> impl Iterator<Item = &PointDiagnostics> {
        std::iter::once(&self.baseline).chain(self.points.iter())
    }

    /// No point saw a fault, retried, or was re-measured — the sweep is
    /// exactly what a fault-free run would have produced.
    pub fn is_clean(&self) -> bool {
        self.all()
            .all(|p| !p.flagged && p.remeasured == 0 && p.degradation.is_clean())
    }

    /// Frequencies whose accepted measurement is still degraded.
    pub fn flagged_freqs(&self) -> Vec<f64> {
        self.points
            .iter()
            .filter(|p| p.flagged)
            .filter_map(|p| p.freq_mhz)
            .collect()
    }

    /// Total retries across every accepted measurement.
    pub fn total_retries(&self) -> u64 {
        self.all().map(|p| p.degradation.retries).sum()
    }

    /// Total simulated backoff time (s) across every accepted measurement.
    pub fn total_backoff_s(&self) -> f64 {
        self.all().map(|p| p.degradation.backoff_s()).sum()
    }
}

/// Derives the fault-stream seed for one `(point, attempt)` cell. Keyed by
/// the point's noise-seed offset — a stable index, not execution order — so
/// the rayon fan-out cannot reorder fault streams; distinct odd multipliers
/// keep point and attempt contributions from colliding.
pub(crate) fn fault_seed(base: u64, seed_off: u64, attempt: u32) -> u64 {
    base.wrapping_add(seed_off.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03))
}

/// Median-of-`reps` measurement with fault detection and re-measurement.
///
/// Each attempt gets a fresh queue (fresh fault stream, fresh degradation
/// counters) from `make_attempt_queue`. A rep is measured exactly like
/// [`measure_median`] — totals-delta per rep, median by energy — so a clean
/// first attempt is bit-identical to the fault-free path. `run_once`
/// returns `true` if the rep failed permanently; the attempt is dirty if
/// any rep failed or the queue's degradation counters moved. Dirty attempts
/// are redone up to `remeasure_limit` times, then accepted flagged.
fn measure_attempts(
    opts: &SweepOptions,
    mut make_attempt_queue: impl FnMut(u32) -> SynergyQueue,
    mut run_once: impl FnMut(&mut SynergyQueue) -> bool,
) -> (Measurement, PointDiagnostics) {
    let mut attempt = 0u32;
    loop {
        let mut q = make_attempt_queue(attempt);
        let mut samples = Vec::with_capacity(opts.reps);
        let mut errored = false;
        for _ in 0..opts.reps {
            let t0 = q.total_time_s();
            let e0 = q.total_energy_j();
            let failed = run_once(&mut q);
            samples.push(Measurement {
                time_s: q.total_time_s() - t0,
                energy_j: q.total_energy_j() - e0,
            });
            if failed {
                errored = true;
                break;
            }
        }
        samples.sort_by(|a, b| a.energy_j.total_cmp(&b.energy_j));
        let m = samples[samples.len() / 2];
        let degradation = q.degradation();
        let dirty = errored || !degradation.is_clean();
        if !dirty || attempt >= opts.remeasure_limit {
            return (
                m,
                PointDiagnostics {
                    freq_mhz: None,
                    remeasured: attempt,
                    flagged: dirty,
                    degradation,
                },
            );
        }
        attempt += 1;
    }
}

/// The fallible twin of [`measure_attempts`], for supervisors that treat a
/// permanent failure as *the device's* problem rather than the point's:
/// the first rep whose `run_once` errors aborts the whole point with that
/// error (no partial median, no re-measure), so the caller can trip a
/// circuit breaker and re-schedule the work elsewhere. On the no-error
/// path the rep loop, median, and dirty/re-measure logic are exactly
/// [`measure_attempts`]'s — bit-identical measurements.
pub(crate) fn try_measure_attempts<E>(
    opts: &SweepOptions,
    mut make_attempt_queue: impl FnMut(u32) -> SynergyQueue,
    mut run_once: impl FnMut(&mut SynergyQueue) -> Result<(), E>,
) -> Result<(Measurement, PointDiagnostics), E> {
    let mut attempt = 0u32;
    loop {
        let mut q = make_attempt_queue(attempt);
        let mut samples = Vec::with_capacity(opts.reps);
        for _ in 0..opts.reps {
            let t0 = q.total_time_s();
            let e0 = q.total_energy_j();
            run_once(&mut q)?;
            samples.push(Measurement {
                time_s: q.total_time_s() - t0,
                energy_j: q.total_energy_j() - e0,
            });
        }
        samples.sort_by(|a, b| a.energy_j.total_cmp(&b.energy_j));
        let m = samples[samples.len() / 2];
        let degradation = q.degradation();
        let dirty = !degradation.is_clean();
        if !dirty || attempt >= opts.remeasure_limit {
            return Ok((
                m,
                PointDiagnostics {
                    freq_mhz: None,
                    remeasured: attempt,
                    flagged: dirty,
                    degradation,
                },
            ));
        }
        attempt += 1;
    }
}

/// Builds the per-attempt replay queue both the options sweep and the
/// campaign scheduler measure through: a fresh [`sweep_device`] with
/// per-batch trace events disabled, pricing routed through the shared memo
/// table, the options' fault plan reseeded for this `(point, attempt)`
/// cell, and the options' retry policy installed. Single-sourcing this
/// construction is what keeps a campaign's measurements bit-identical to
/// [`characterize_with_options`]'s.
pub(crate) fn replay_queue(
    spec: &DeviceSpec,
    opts: &SweepOptions,
    prices: &Arc<PriceTable>,
    seed_off: u64,
    attempt: u32,
) -> SynergyQueue {
    let mut dev = sweep_device(spec, opts.noise_seed, seed_off);
    // Replay reads only the queue's aggregate counters; skip per-batch
    // trace events and route all pricing through the shared memo table.
    dev.set_trace_capacity(Some(0));
    dev.set_price_table(Arc::clone(prices));
    dev.set_fault_plan(opts.faults.clone().with_seed(fault_seed(
        opts.faults.seed(),
        seed_off,
        attempt,
    )));
    let mut q = SynergyQueue::for_device(dev);
    q.set_retry_policy(opts.retry);
    q
}

/// Sweeps `freqs` with `reps` repetitions per point (median-aggregated).
/// `noise_seed` enables the measurement-noise model; `None` runs noiseless.
///
/// This is the fast path: the workload is recorded once, then every
/// frequency point replays the trace with memoized kernel pricing, fanned
/// out over threads. Output is bit-identical to [`characterize_serial`].
///
/// # Panics
/// Panics on an empty frequency list or `reps == 0`.
pub fn characterize(
    spec: &DeviceSpec,
    workload: &dyn Workload,
    freqs: &[f64],
    reps: usize,
    noise_seed: Option<u64>,
) -> Characterization {
    let opts = SweepOptions {
        reps,
        noise_seed,
        ..SweepOptions::default()
    };
    characterize_with_options(spec, workload, freqs, &opts).0
}

/// [`characterize`] with explicit [`SweepOptions`]: fault injection, retry
/// policy, and dirty-point re-measurement.
///
/// Every measurement device carries the options' [`FaultPlan`], reseeded
/// per point and per attempt. After measuring a point the sweep inspects
/// the queue's degradation counters: if any fault fired (throttle, retry,
/// rejection, counter rewind) or a rep failed outright, the point is
/// **re-measured** on a fresh queue with a fresh fault stream, up to
/// `remeasure_limit` times; a point that never comes back clean is accepted
/// as-is and **marked** in the returned [`SweepDiagnostics`]. Under an
/// inert plan no fault can fire, every point is clean on its first attempt,
/// and the result is bit-identical to [`characterize`] — the golden tests
/// below pin this.
///
/// # Panics
/// Panics on an empty frequency list or `reps == 0`.
pub fn characterize_with_options(
    spec: &DeviceSpec,
    workload: &dyn Workload,
    freqs: &[f64],
    opts: &SweepOptions,
) -> (Characterization, SweepDiagnostics) {
    assert!(!freqs.is_empty(), "need at least one frequency");
    assert!(opts.reps > 0, "need at least one repetition");

    let tel = opts.telemetry.as_deref();
    let meters = tel.map(SweepMeters::new);
    let _sweep_span = tel.map(|t| {
        t.registry().counter("sweep.runs").inc();
        t.span(
            SpanLevel::Sweep,
            "sweep",
            vec![
                ("device", spec.name.clone()),
                ("workload", workload.name()),
                ("freqs", freqs.len().to_string()),
                ("reps", opts.reps.to_string()),
            ],
        )
    });

    let trace = workload.record(spec);
    let prices = Arc::new(PriceTable::new());
    let make_queue =
        |seed_off: u64, attempt: u32| replay_queue(spec, opts, &prices, seed_off, attempt);
    // One replayed run = one Launch-level record; the level check comes
    // before the field strings are built, so a sink not tracing down to
    // launch granularity costs one comparison per rep, not allocations.
    let launch_tel = tel.filter(|t| t.traces(SpanLevel::Launch));
    let run_once = |q: &mut SynergyQueue| {
        let failed = trace.try_replay_on(q).is_err();
        if let Some(t) = launch_tel {
            t.instant(
                SpanLevel::Launch,
                "replay",
                vec![("submissions", q.submission_count().to_string())],
            );
        }
        failed
    };

    // Baseline: the device's default configuration.
    let (baseline, base_diag) = {
        let _span =
            tel.map(|t| t.span(SpanLevel::Point, "point", vec![("freq", "baseline".into())]));
        measure_attempts(opts, |attempt| make_queue(0, attempt), run_once)
    };
    if let (Some(t), Some(m)) = (tel, &meters) {
        m.record(t, baseline, &base_diag);
    }

    let results: Vec<(CharPoint, PointDiagnostics)> = freqs
        .par_iter()
        .enumerate()
        .map(|(i, &f)| {
            let _span =
                tel.map(|t| t.span(SpanLevel::Point, "point", vec![("freq", format!("{f}"))]));
            let (m, mut diag) = measure_attempts(
                opts,
                |attempt| {
                    let mut q = make_queue(1 + i as u64, attempt);
                    q.set_policy(synergy::FrequencyPolicy::Fixed(f));
                    q
                },
                run_once,
            );
            diag.freq_mhz = Some(f);
            if let (Some(t), Some(sm)) = (tel, &meters) {
                sm.record(t, m, &diag);
            }
            (char_point(f, m, baseline), diag)
        })
        .collect();
    let (points, diags): (Vec<CharPoint>, Vec<PointDiagnostics>) = results.into_iter().unzip();
    if let Some(t) = tel {
        t.record_pricing(prices.stats(), prices.len());
    }

    (
        Characterization {
            device: spec.name.clone(),
            workload: workload.name(),
            baseline_time_s: baseline.time_s,
            baseline_energy_j: baseline.energy_j,
            points,
        },
        SweepDiagnostics {
            baseline: base_diag,
            points: diags,
        },
    )
}

/// The legacy sweep: every repetition re-runs the workload's submission
/// loop kernel by kernel, serially across frequencies. Kept as the
/// reference implementation the trace-replay engine is pinned against (and
/// as the natural driver for workloads whose submission stream is not
/// replayable). Same contract as [`characterize`].
///
/// # Panics
/// Panics on an empty frequency list or `reps == 0`.
pub fn characterize_serial(
    spec: &DeviceSpec,
    workload: &dyn Workload,
    freqs: &[f64],
    reps: usize,
    noise_seed: Option<u64>,
) -> Characterization {
    let opts = SweepOptions {
        reps,
        noise_seed,
        ..SweepOptions::default()
    };
    characterize_serial_with_options(spec, workload, freqs, &opts).0
}

/// [`characterize_serial`] with explicit [`SweepOptions`] — the serial
/// twin of [`characterize_with_options`], re-running the workload's own
/// submission loop instead of replaying a trace.
///
/// The workload drives the queue's infallible `submit` API, so a failure
/// the retry policy cannot ride out panics instead of flagging; keep
/// launch-failure schedules mild enough for the configured retries (or use
/// the replay path, which degrades gracefully).
///
/// # Panics
/// Panics on an empty frequency list, `reps == 0`, or a permanent launch
/// failure.
pub fn characterize_serial_with_options(
    spec: &DeviceSpec,
    workload: &dyn Workload,
    freqs: &[f64],
    opts: &SweepOptions,
) -> (Characterization, SweepDiagnostics) {
    assert!(!freqs.is_empty(), "need at least one frequency");
    assert!(opts.reps > 0, "need at least one repetition");

    let make_queue = |seed_off: u64, attempt: u32| {
        let mut dev = sweep_device(spec, opts.noise_seed, seed_off);
        dev.set_fault_plan(opts.faults.clone().with_seed(fault_seed(
            opts.faults.seed(),
            seed_off,
            attempt,
        )));
        let mut q = SynergyQueue::for_device(dev);
        q.set_retry_policy(opts.retry);
        q
    };

    // Baseline: the device's default configuration.
    let (baseline, base_diag) = measure_attempts(
        opts,
        |attempt| make_queue(0, attempt),
        |q| {
            workload.run(q);
            false
        },
    );

    let mut points = Vec::with_capacity(freqs.len());
    let mut diags = Vec::with_capacity(freqs.len());
    for (i, &f) in freqs.iter().enumerate() {
        let (m, mut diag) = measure_attempts(
            opts,
            |attempt| {
                let mut q = make_queue(1 + i as u64, attempt);
                q.set_policy(synergy::FrequencyPolicy::Fixed(f));
                q
            },
            |q| {
                workload.run(q);
                false
            },
        );
        diag.freq_mhz = Some(f);
        points.push(char_point(f, m, baseline));
        diags.push(diag);
    }

    (
        Characterization {
            device: spec.name.clone(),
            workload: workload.name(),
            baseline_time_s: baseline.time_s,
            baseline_energy_j: baseline.energy_j,
            points,
        },
        SweepDiagnostics {
            baseline: base_diag,
            points: diags,
        },
    )
}

// ---------------------------------------------------------------------------
// Configuration-lattice characterization: core clock × memory clock × power cap
// ---------------------------------------------------------------------------

/// The axes of a configuration-lattice sweep. The lattice is the cartesian
/// product `core_mhz × mem_mhz × power_caps_w`, enumerated core-outer →
/// memory → cap, so a degenerate memory/cap axis leaves the enumeration
/// order (and every noise/fault seed) identical to the plain frequency
/// sweep's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeAxes {
    /// Core frequencies to sweep (MHz). Must be non-empty.
    pub core_mhz: Vec<f64>,
    /// Memory frequencies to sweep (MHz). Empty means *default only*: the
    /// sweep stays on the device's top memory clock and never issues a
    /// memory-clock management call — which is what keeps a degenerate
    /// lattice bit-identical to [`characterize`].
    pub mem_mhz: Vec<f64>,
    /// Operator power caps to sweep (W); `None` is the uncapped (TDP-only)
    /// configuration. Empty means *uncapped only*, with no cap call issued.
    pub power_caps_w: Vec<Option<f64>>,
}

impl LatticeAxes {
    /// A core-only lattice: one point per core frequency on the default
    /// memory clock with no power cap. Sweeping it is bit-identical to the
    /// plain frequency sweep over the same list.
    pub fn core_only(core_mhz: impl Into<Vec<f64>>) -> Self {
        LatticeAxes {
            core_mhz: core_mhz.into(),
            mem_mhz: Vec::new(),
            power_caps_w: Vec::new(),
        }
    }

    /// A full lattice over explicit axes. `caps_w` are finite positive
    /// watts; the uncapped configuration is always included first.
    pub fn full(
        core_mhz: impl Into<Vec<f64>>,
        mem_mhz: impl Into<Vec<f64>>,
        caps_w: &[f64],
    ) -> Self {
        let mut power_caps_w = vec![None];
        power_caps_w.extend(caps_w.iter().map(|&c| Some(c)));
        LatticeAxes {
            core_mhz: core_mhz.into(),
            mem_mhz: mem_mhz.into(),
            power_caps_w,
        }
    }

    /// Number of lattice points one sweep measures (excluding the baseline).
    pub fn len(&self) -> usize {
        self.core_mhz.len() * self.mem_mhz.len().max(1) * self.power_caps_w.len().max(1)
    }

    /// True when the lattice has no core axis (nothing to sweep).
    pub fn is_empty(&self) -> bool {
        self.core_mhz.is_empty()
    }
}

/// One characterized lattice operating point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatticePoint {
    /// Core frequency (MHz).
    pub core_mhz: f64,
    /// Memory frequency (MHz) the point was *requested* at (a rejected
    /// request degrades to the default clock and is flagged in the
    /// diagnostics).
    pub mem_mhz: f64,
    /// Operator power cap (W); `None` = uncapped.
    pub cap_w: Option<f64>,
    /// Median run time (s).
    pub time_s: f64,
    /// Median run energy (J).
    pub energy_j: f64,
    /// `t_baseline / time_s`.
    pub speedup: f64,
    /// `energy_j / e_baseline`.
    pub norm_energy: f64,
}

/// A full configuration-lattice characterization of one workload on one
/// device: the three-axis generalization of [`Characterization`]. The
/// non-dominated subset of its points is a Pareto *surface* — trading
/// speed against energy across core clock, memory clock, and power cap at
/// once — rather than the frequency sweep's Pareto front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeCharacterization {
    /// Device name.
    pub device: String,
    /// Workload name.
    pub workload: String,
    /// Baseline (default-configuration) run time (s).
    pub baseline_time_s: f64,
    /// Baseline run energy (J).
    pub baseline_energy_j: f64,
    /// Points in lattice-enumeration order (core-outer → memory → cap).
    pub points: Vec<LatticePoint>,
}

impl LatticeCharacterization {
    /// The `(speedup, norm_energy)` pairs in lattice order.
    pub fn objective_points(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.speedup, p.norm_energy))
            .collect()
    }

    /// The non-dominated points — the Pareto surface in the
    /// (speedup, normalized-energy) plane, in lattice order.
    pub fn pareto_surface(&self) -> Vec<&LatticePoint> {
        crate::pareto::pareto_front_indices(&self.objective_points())
            .into_iter()
            .map(|i| &self.points[i])
            .collect()
    }

    /// The minimum-energy point of the lattice.
    pub fn min_energy(&self) -> &LatticePoint {
        self.points
            .iter()
            .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
            .expect("non-empty lattice")
    }

    /// The minimum-energy point whose runtime meets `deadline_s`, if any.
    pub fn min_energy_within(&self, deadline_s: f64) -> Option<&LatticePoint> {
        self.points
            .iter()
            .filter(|p| p.time_s <= deadline_s)
            .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
    }
}

/// Diagnostics of one lattice point: which configuration it was, plus the
/// fault-aware measurement record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatticePointDiagnostics {
    /// Requested core frequency (MHz).
    pub core_mhz: f64,
    /// Requested memory frequency (MHz).
    pub mem_mhz: f64,
    /// Requested power cap (W).
    pub cap_w: Option<f64>,
    /// The measurement diagnostics (re-measurements, flags, degradation
    /// counters — including [`DegradationMetrics::mem_clock_fallbacks`] and
    /// [`DegradationMetrics::power_cap_fallbacks`]).
    pub diag: PointDiagnostics,
}

/// Per-point diagnostics of one lattice sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeDiagnostics {
    /// Baseline (default-configuration) point.
    pub baseline: PointDiagnostics,
    /// Lattice points, in enumeration order.
    pub points: Vec<LatticePointDiagnostics>,
}

impl LatticeDiagnostics {
    /// No point saw a fault, retried, fell back, or was re-measured.
    pub fn is_clean(&self) -> bool {
        (!self.baseline.flagged
            && self.baseline.remeasured == 0
            && self.baseline.degradation.is_clean())
            && self
                .points
                .iter()
                .all(|p| !p.diag.flagged && p.diag.remeasured == 0 && p.diag.degradation.is_clean())
    }

    /// Lattice points whose accepted measurement is still degraded.
    pub fn flagged_points(&self) -> Vec<&LatticePointDiagnostics> {
        self.points.iter().filter(|p| p.diag.flagged).collect()
    }

    /// Folds every point's degradation counters into one audit record.
    pub fn total_degradation(&self) -> DegradationMetrics {
        let mut total = self.baseline.degradation;
        for p in &self.points {
            total.merge(&p.diag.degradation);
        }
        total
    }
}

/// Sweeps the full configuration lattice `core × mem × cap` with the same
/// trace-once / re-price-everywhere engine as [`characterize_with_options`].
///
/// Every lattice point pins its three actuators before replaying the trace:
/// the memory clock (skipped when the point sits on the device's default,
/// so the request sequence of a degenerate lattice is identical to the
/// frequency sweep's), the power cap (skipped when uncapped), and the core
/// clock via the queue policy. Noise and fault seeds are keyed by the
/// point's flat lattice index — baseline `0`, point *i* → `1 + i` — so a
/// single-point memory/cap axis reproduces [`characterize`] **bit for
/// bit**, and thread scheduling cannot reorder random streams.
///
/// A rejected memory-clock or cap request degrades to the default
/// configuration on that axis (recorded in the queue's
/// [`DegradationMetrics`]), which marks the attempt dirty: the point is
/// re-measured up to `opts.remeasure_limit` times and flagged if it never
/// comes back clean — the same quarantine contract as the frequency sweep.
///
/// # Panics
/// Panics on an empty core-frequency axis, `reps == 0`, or a backend
/// without memory-clock/cap control when a non-default axis requests it.
pub fn characterize_lattice(
    spec: &DeviceSpec,
    workload: &dyn Workload,
    axes: &LatticeAxes,
    opts: &SweepOptions,
) -> (LatticeCharacterization, LatticeDiagnostics) {
    assert!(
        !axes.core_mhz.is_empty(),
        "need at least one core frequency"
    );
    assert!(opts.reps > 0, "need at least one repetition");

    let default_mem = spec.mem_freqs.max();
    let mem_axis: Vec<f64> = if axes.mem_mhz.is_empty() {
        vec![default_mem]
    } else {
        axes.mem_mhz.clone()
    };
    let caps: Vec<Option<f64>> = if axes.power_caps_w.is_empty() {
        vec![None]
    } else {
        axes.power_caps_w.clone()
    };

    let tel = opts.telemetry.as_deref();
    let meters = tel.map(SweepMeters::new);
    let _sweep_span = tel.map(|t| {
        t.registry().counter("sweep.runs").inc();
        t.span(
            SpanLevel::Sweep,
            "lattice",
            vec![
                ("device", spec.name.clone()),
                ("workload", workload.name()),
                ("cores", axes.core_mhz.len().to_string()),
                ("mems", mem_axis.len().to_string()),
                ("caps", caps.len().to_string()),
                ("reps", opts.reps.to_string()),
            ],
        )
    });

    let trace = workload.record(spec);
    let prices = Arc::new(PriceTable::new());
    let make_queue =
        |seed_off: u64, attempt: u32| replay_queue(spec, opts, &prices, seed_off, attempt);
    let run_once = |q: &mut SynergyQueue| trace.try_replay_on(q).is_err();

    // Baseline: the device's default configuration — top memory clock,
    // uncapped, default core clock. Seed offset 0, exactly like the
    // frequency sweep's baseline.
    let (baseline, base_diag) = {
        let _span = tel.map(|t| {
            t.span(
                SpanLevel::Point,
                "point",
                vec![("config", "baseline".into())],
            )
        });
        measure_attempts(opts, |attempt| make_queue(0, attempt), run_once)
    };
    if let (Some(t), Some(m)) = (tel, &meters) {
        m.record(t, baseline, &base_diag);
    }

    // Flat enumeration, core-outer → memory → cap.
    let mut grid: Vec<(u64, f64, f64, Option<f64>)> = Vec::with_capacity(axes.len());
    for &f in &axes.core_mhz {
        for &m in &mem_axis {
            for &cap in &caps {
                grid.push((grid.len() as u64, f, m, cap));
            }
        }
    }

    let results: Vec<(LatticePoint, LatticePointDiagnostics)> = grid
        .par_iter()
        .map(|&(i, f, m, cap)| {
            let _span = tel.map(|t| {
                t.span(
                    SpanLevel::Point,
                    "point",
                    vec![("config", format!("{f}MHz/{m}MHz/{cap:?}W"))],
                )
            });
            let (meas, mut diag) = measure_attempts(
                opts,
                |attempt| {
                    let mut q = make_queue(1 + i, attempt);
                    if m != default_mem {
                        match q.set_memory_frequency(Some(m)) {
                            // A fallback or transient rejection is already
                            // recorded in the degradation counters, which
                            // marks this attempt dirty for re-measurement.
                            Ok(_) | Err(synergy::BackendError::FrequencyRejected { .. }) => {}
                            Err(e) => panic!("memory-clock axis unsupported: {e}"),
                        }
                    }
                    if cap.is_some() {
                        match q.set_power_cap(cap) {
                            Ok(_) | Err(synergy::BackendError::FrequencyRejected { .. }) => {}
                            Err(e) => panic!("power-cap axis unsupported: {e}"),
                        }
                    }
                    q.set_policy(synergy::FrequencyPolicy::Fixed(f));
                    q
                },
                run_once,
            );
            diag.freq_mhz = Some(f);
            if let (Some(t), Some(sm)) = (tel, &meters) {
                sm.record(t, meas, &diag);
            }
            let cp = char_point(f, meas, baseline);
            (
                LatticePoint {
                    core_mhz: f,
                    mem_mhz: m,
                    cap_w: cap,
                    time_s: cp.time_s,
                    energy_j: cp.energy_j,
                    speedup: cp.speedup,
                    norm_energy: cp.norm_energy,
                },
                LatticePointDiagnostics {
                    core_mhz: f,
                    mem_mhz: m,
                    cap_w: cap,
                    diag,
                },
            )
        })
        .collect();
    let (points, diags): (Vec<LatticePoint>, Vec<LatticePointDiagnostics>) =
        results.into_iter().unzip();
    if let Some(t) = tel {
        t.record_pricing(prices.stats(), prices.len());
    }

    (
        LatticeCharacterization {
            device: spec.name.clone(),
            workload: workload.name(),
            baseline_time_s: baseline.time_s,
            baseline_energy_j: baseline.energy_j,
            points,
        },
        LatticeDiagnostics {
            baseline: base_diag,
            points: diags,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cronos::Grid;

    fn v100() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn large_cronos() -> cronos::GpuCronos {
        cronos::GpuCronos::new(Grid::cubic(160, 64, 64), 2)
    }

    fn small_cronos() -> cronos::GpuCronos {
        cronos::GpuCronos::new(Grid::cubic(20, 8, 8), 5)
    }

    fn large_ligen() -> ligen::GpuLigen {
        ligen::GpuLigen::new(10_000, 89, 20)
    }

    #[test]
    fn default_frequency_point_is_unity() {
        let spec = v100();
        let c = characterize(&spec, &large_cronos(), &[spec.default_core_mhz], 1, None);
        let p = &c.points[0];
        assert!((p.speedup - 1.0).abs() < 1e-9);
        assert!((p.norm_energy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cronos_large_grid_shape_matches_paper() {
        // Fig. 4b: up-clocking buys ~no speedup but much more energy;
        // down-clocking saves ~20 % energy at near-zero slowdown.
        let spec = v100();
        let c = characterize(
            &spec,
            &large_cronos(),
            &[900.0, spec.default_core_mhz, spec.max_core_mhz()],
            1,
            None,
        );
        let low = c.at_freq(900.0);
        let max = c.at_freq(spec.max_core_mhz());
        assert!(low.speedup > 0.94, "low-clock speedup {}", low.speedup);
        assert!(
            low.norm_energy < 0.85,
            "low-clock energy {}",
            low.norm_energy
        );
        assert!(max.speedup < 1.06, "max-clock speedup {}", max.speedup);
        assert!(
            max.norm_energy > 1.15,
            "max-clock energy {}",
            max.norm_energy
        );
    }

    #[test]
    fn ligen_large_input_shape_matches_paper() {
        // Fig. 10b: up-clocking gains ~20 % speed at a large energy cost.
        let spec = v100();
        let c = characterize(
            &spec,
            &large_ligen(),
            &[1100.0, spec.max_core_mhz()],
            1,
            None,
        );
        let max = c.at_freq(spec.max_core_mhz());
        assert!(
            (1.1..1.35).contains(&max.speedup),
            "speedup {}",
            max.speedup
        );
        assert!(max.norm_energy > 1.3, "energy {}", max.norm_energy);
        let low = c.at_freq(1100.0);
        assert!(low.norm_energy < 1.0, "down-clock should save energy");
    }

    #[test]
    fn speedup_monotone_in_frequency() {
        let spec = v100();
        let freqs: Vec<f64> = spec.core_freqs.strided(20);
        let c = characterize(&spec, &large_ligen(), &freqs, 1, None);
        for w in c.points.windows(2) {
            assert!(
                w[1].speedup >= w[0].speedup * (1.0 - 1e-9),
                "speedup must not decrease with f"
            );
        }
    }

    #[test]
    fn noise_changes_values_but_not_shape() {
        let spec = v100();
        let freqs = [800.0, 1312.0, 1597.0];
        let clean = characterize(&spec, &large_cronos(), &freqs, 1, None);
        let noisy = characterize(&spec, &large_cronos(), &freqs, 5, Some(7));
        for (a, b) in clean.points.iter().zip(&noisy.points) {
            assert!((a.speedup - b.speedup).abs() / a.speedup < 0.05);
            assert!((a.norm_energy - b.norm_energy).abs() / a.norm_energy < 0.05);
        }
    }

    #[test]
    fn amd_baseline_is_auto_configuration() {
        let spec = DeviceSpec::mi100();
        let c = characterize(&spec, &large_cronos(), &[1450.0], 1, None);
        // The auto governor converges to 1450 MHz under load, so the pinned
        // 1450 MHz point must match the auto baseline.
        let p = c.at_freq(1450.0);
        assert!((p.speedup - 1.0).abs() < 1e-9);
        assert!((p.norm_energy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn at_freq_snaps_to_nearest() {
        let spec = v100();
        let c = characterize(&spec, &large_cronos(), &[800.0, 1200.0], 1, None);
        assert_eq!(c.at_freq(810.0).freq_mhz, 800.0);
        assert_eq!(c.at_freq(1100.0).freq_mhz, 1200.0);
    }

    // ---- Golden equivalence: trace-replay sweep ≡ legacy serial sweep ----
    //
    // Exact `==` on every f64 in the result: the fast path must be
    // bit-identical, not merely close.

    fn assert_identical(a: &Characterization, b: &Characterization) {
        assert_eq!(a.baseline_time_s, b.baseline_time_s);
        assert_eq!(a.baseline_energy_j, b.baseline_energy_j);
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa, pb, "point at {} MHz diverged", pa.freq_mhz);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn replay_sweep_is_bit_identical_cronos_noiseless() {
        let spec = v100();
        let freqs = [500.0, 900.0, 1312.1, 1597.0];
        let fast = characterize(&spec, &small_cronos(), &freqs, 2, None);
        let slow = characterize_serial(&spec, &small_cronos(), &freqs, 2, None);
        assert_identical(&fast, &slow);
    }

    #[test]
    fn replay_sweep_is_bit_identical_cronos_noisy() {
        let spec = v100();
        let freqs = [500.0, 900.0, 1312.1, 1597.0];
        let fast = characterize(&spec, &small_cronos(), &freqs, 3, Some(20231112));
        let slow = characterize_serial(&spec, &small_cronos(), &freqs, 3, Some(20231112));
        assert_identical(&fast, &slow);
    }

    #[test]
    fn replay_sweep_is_bit_identical_ligen_noiseless() {
        let spec = v100();
        let freqs = [700.0, 1100.0, 1597.0];
        let wl = ligen::GpuLigen::new(1000, 31, 4);
        let fast = characterize(&spec, &wl, &freqs, 2, None);
        let slow = characterize_serial(&spec, &wl, &freqs, 2, None);
        assert_identical(&fast, &slow);
    }

    #[test]
    fn replay_sweep_is_bit_identical_ligen_noisy() {
        let spec = v100();
        let freqs = [700.0, 1100.0, 1597.0];
        let wl = ligen::GpuLigen::new(1000, 31, 4);
        let fast = characterize(&spec, &wl, &freqs, 5, Some(99));
        let slow = characterize_serial(&spec, &wl, &freqs, 5, Some(99));
        assert_identical(&fast, &slow);
    }

    #[test]
    fn replay_sweep_is_bit_identical_on_amd_auto_baseline() {
        let spec = DeviceSpec::mi100();
        let freqs = [700.0, 1000.0, 1450.0];
        let fast = characterize(&spec, &small_cronos(), &freqs, 2, Some(5));
        let slow = characterize_serial(&spec, &small_cronos(), &freqs, 2, Some(5));
        assert_identical(&fast, &slow);
    }

    // ---- Golden equivalence: fault-free FaultPlan ≡ plain sweep ----
    //
    // A sweep run through the fault-aware machinery with an inert plan
    // must be bit-identical to the plain sweep, with clean diagnostics —
    // both applications, both vendors.

    fn inert_opts(reps: usize, noise_seed: Option<u64>) -> SweepOptions {
        SweepOptions {
            reps,
            noise_seed,
            faults: FaultPlan::none(),
            ..SweepOptions::default()
        }
    }

    #[test]
    fn fault_free_plan_is_bit_identical_cronos_nvidia() {
        let spec = v100();
        let freqs = [500.0, 900.0, 1312.1, 1597.0];
        let plain = characterize(&spec, &small_cronos(), &freqs, 3, Some(20231112));
        let (faulted, diag) = characterize_with_options(
            &spec,
            &small_cronos(),
            &freqs,
            &inert_opts(3, Some(20231112)),
        );
        assert_identical(&plain, &faulted);
        assert!(diag.is_clean(), "inert plan must leave no fault trace");
        assert_eq!(diag.total_retries(), 0);
        assert_eq!(diag.total_backoff_s(), 0.0);
    }

    #[test]
    fn fault_free_plan_is_bit_identical_ligen_nvidia() {
        let spec = v100();
        let freqs = [700.0, 1100.0, 1597.0];
        let wl = ligen::GpuLigen::new(1000, 31, 4);
        let plain = characterize(&spec, &wl, &freqs, 5, Some(99));
        let (faulted, diag) =
            characterize_with_options(&spec, &wl, &freqs, &inert_opts(5, Some(99)));
        assert_identical(&plain, &faulted);
        assert!(diag.is_clean());
    }

    #[test]
    fn fault_free_plan_is_bit_identical_cronos_amd() {
        let spec = DeviceSpec::mi100();
        let freqs = [700.0, 1000.0, 1450.0];
        let plain = characterize(&spec, &small_cronos(), &freqs, 2, Some(5));
        let (faulted, diag) =
            characterize_with_options(&spec, &small_cronos(), &freqs, &inert_opts(2, Some(5)));
        assert_identical(&plain, &faulted);
        assert!(diag.is_clean());
    }

    #[test]
    fn fault_free_plan_is_bit_identical_ligen_amd() {
        let spec = DeviceSpec::mi100();
        let freqs = [800.0, 1200.0, 1450.0];
        let wl = ligen::GpuLigen::new(1000, 31, 4);
        let plain = characterize(&spec, &wl, &freqs, 2, Some(41));
        let (faulted, diag) =
            characterize_with_options(&spec, &wl, &freqs, &inert_opts(2, Some(41)));
        assert_identical(&plain, &faulted);
        assert!(diag.is_clean());
    }

    #[test]
    fn fault_free_plan_is_bit_identical_serial_path() {
        let spec = v100();
        let freqs = [500.0, 1312.1];
        let plain = characterize_serial(&spec, &small_cronos(), &freqs, 2, Some(13));
        let (faulted, diag) = characterize_serial_with_options(
            &spec,
            &small_cronos(),
            &freqs,
            &inert_opts(2, Some(13)),
        );
        assert_identical(&plain, &faulted);
        assert!(diag.is_clean());
    }

    // ---- Telemetry inertness ----

    #[test]
    fn telemetry_armed_sweep_is_bit_identical() {
        // Same discipline as the inert FaultPlan: an armed sink may
        // observe, never perturb. Every f64 must match exactly.
        let spec = v100();
        let freqs = [500.0, 900.0, 1312.1, 1597.0];
        let (plain, plain_diag) =
            characterize_with_options(&spec, &small_cronos(), &freqs, &inert_opts(3, Some(42)));
        let tel = Telemetry::new();
        let opts = SweepOptions {
            telemetry: Some(Arc::clone(&tel)),
            ..inert_opts(3, Some(42))
        };
        let (armed, armed_diag) = characterize_with_options(&spec, &small_cronos(), &freqs, &opts);
        assert_identical(&plain, &armed);
        assert_eq!(plain_diag, armed_diag);

        // And the sink actually observed the sweep: baseline + every
        // frequency point priced, the sweep span opened and closed.
        let snap = tel.registry().snapshot();
        let get = |name: &str| {
            snap.metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        use crate::telemetry::MetricValue;
        assert_eq!(get("sweep.runs"), Some(MetricValue::Counter(1)));
        assert_eq!(
            get("sweep.points_priced"),
            Some(MetricValue::Counter(1 + freqs.len() as u64))
        );
        // Sweep meters are pre-registered (Prometheus style), so a clean
        // sweep reports them as explicit zeros.
        assert_eq!(
            get("sweep.points_flagged"),
            Some(MetricValue::Counter(0)),
            "inert plan: no flags"
        );
        assert_eq!(get("sweep.remeasurements"), Some(MetricValue::Counter(0)));
        match get("sweep.point_time_s") {
            Some(MetricValue::Histogram { count, sum, .. }) => {
                assert_eq!(count, 1 + freqs.len() as u64);
                assert!(sum > 0.0);
            }
            other => panic!("expected the point-time histogram, got {other:?}"),
        }
        let events = tel.events();
        let sweep_begins = events
            .iter()
            .filter(|e| e.span == "sweep" && e.kind == crate::telemetry::EventKind::Begin)
            .count();
        let point_begins = events
            .iter()
            .filter(|e| e.span == "point" && e.kind == crate::telemetry::EventKind::Begin)
            .count();
        assert_eq!(sweep_begins, 1);
        assert_eq!(point_begins, 1 + freqs.len());
        assert_eq!(tel.dropped_events(), 0);
    }

    #[test]
    fn launch_level_tracing_is_also_inert() {
        let spec = v100();
        let freqs = [900.0, 1312.1];
        let (plain, _) =
            characterize_with_options(&spec, &small_cronos(), &freqs, &inert_opts(2, None));
        let tel = Telemetry::with_trace_level(SpanLevel::Launch);
        let opts = SweepOptions {
            telemetry: Some(Arc::clone(&tel)),
            ..inert_opts(2, None)
        };
        let (armed, _) = characterize_with_options(&spec, &small_cronos(), &freqs, &opts);
        assert_identical(&plain, &armed);
        // One replay instant per rep per point: (1 + freqs) × reps.
        let replays = tel.events().iter().filter(|e| e.span == "replay").count();
        assert_eq!(replays, (1 + freqs.len()) * 2);
    }

    // ---- Fault-aware sweep behaviour under a live plan ----

    #[test]
    fn throttled_points_are_remeasured_or_flagged() {
        use gpu_sim::{Schedule, ThrottleWindow};
        let spec = v100();
        let freqs = [900.0, 1312.1];
        let opts = SweepOptions {
            reps: 1,
            noise_seed: None,
            // Throttling fires early in every measurement attempt, so
            // re-measurement can never come back clean: the sweep must
            // accept the degraded points and flag them.
            faults: FaultPlan::seeded(7)
                .throttle(
                    Schedule::Prob(0.9),
                    ThrottleWindow {
                        cap_mhz: 700.0,
                        launches: 50,
                    },
                )
                .reset_energy_counter(Schedule::Prob(0.05)),
            retry: RetryPolicy::default(),
            remeasure_limit: 1,
            telemetry: None,
        };
        let (c, diag) = characterize_with_options(&spec, &small_cronos(), &freqs, &opts);
        assert!(c
            .points
            .iter()
            .all(|p| p.time_s.is_finite() && p.time_s > 0.0));
        assert!(c.points.iter().all(|p| p.energy_j.is_finite()));
        assert!(
            !diag.is_clean(),
            "a 90 % throttle schedule must leave a trace"
        );
        let saw_throttle = diag
            .points
            .iter()
            .chain(std::iter::once(&diag.baseline))
            .any(|p| p.degradation.throttled_launches > 0);
        assert!(saw_throttle, "diagnostics must surface throttled launches");
        // Every dirty point exhausted its re-measure budget and was flagged.
        for p in diag.points.iter() {
            if p.degradation.throttled_launches > 0 {
                assert!(p.flagged);
                assert_eq!(p.remeasured, opts.remeasure_limit);
            }
        }
    }

    #[test]
    fn transient_rejections_are_healed_by_remeasurement_budget() {
        use gpu_sim::Schedule;
        let spec = v100();
        let opts = SweepOptions {
            reps: 2,
            noise_seed: None,
            // One rejection at a fixed fault index: the first attempt is
            // dirty (a retry heals it), and diagnostics record the repair.
            faults: FaultPlan::seeded(3).reject_set_frequency(Schedule::once(0)),
            retry: RetryPolicy::default(),
            remeasure_limit: 2,
            telemetry: None,
        };
        let (c, diag) = characterize_with_options(&spec, &small_cronos(), &[900.0], &opts);
        assert!(c.points[0].time_s > 0.0);
        // The rejection fires at fault index 0 of every fresh stream, so
        // every attempt sees it: the point ends flagged with its retry
        // recorded, never silently clean.
        let p = &diag.points[0];
        assert!(p.degradation.frequency_rejections > 0);
        assert!(p.degradation.retries > 0);
        assert!(p.flagged);
    }

    // ---- Configuration lattice ----

    #[test]
    fn degenerate_lattice_is_bit_identical_to_frequency_sweep() {
        // A core-only lattice (default memory clock, no cap) must reproduce
        // the plain frequency sweep exactly — same seeds, same request
        // sequence, same f64 bits.
        let spec = v100();
        let freqs = [500.0, 900.0, 1312.1, 1597.0];
        let plain = characterize(&spec, &small_cronos(), &freqs, 3, Some(20231112));
        let (lat, diag) = characterize_lattice(
            &spec,
            &small_cronos(),
            &LatticeAxes::core_only(freqs),
            &inert_opts(3, Some(20231112)),
        );
        assert_eq!(lat.baseline_time_s, plain.baseline_time_s);
        assert_eq!(lat.baseline_energy_j, plain.baseline_energy_j);
        assert_eq!(lat.points.len(), plain.points.len());
        for (lp, pp) in lat.points.iter().zip(&plain.points) {
            assert_eq!(lp.core_mhz, pp.freq_mhz);
            assert_eq!(lp.mem_mhz, 1107.0, "degenerate axis sits on default");
            assert_eq!(lp.cap_w, None);
            assert_eq!(lp.time_s, pp.time_s, "at {} MHz", pp.freq_mhz);
            assert_eq!(lp.energy_j, pp.energy_j, "at {} MHz", pp.freq_mhz);
            assert_eq!(lp.speedup, pp.speedup);
            assert_eq!(lp.norm_energy, pp.norm_energy);
        }
        assert!(
            diag.is_clean(),
            "inert plan, default config: no fault trace"
        );
    }

    #[test]
    fn full_lattice_enumerates_in_declared_order_and_caps_cost_time() {
        let spec = v100();
        let axes = LatticeAxes::full([900.0, 1312.1], [810.0, 1107.0], &[200.0]);
        assert_eq!(axes.len(), 8);
        // Noiseless, so the capped/uncapped comparison below is pure
        // physics — each lattice index seeds its own noise stream, which
        // would otherwise jitter the inequality.
        let (lat, diag) = characterize_lattice(&spec, &small_cronos(), &axes, &inert_opts(2, None));
        assert_eq!(lat.points.len(), 8);
        // Core-outer → memory → cap enumeration.
        let mut expect = Vec::new();
        for &f in &[900.0, 1312.1] {
            for &m in &[810.0, 1107.0] {
                for cap in [None, Some(200.0)] {
                    expect.push((f, m, cap));
                }
            }
        }
        let got: Vec<_> = lat
            .points
            .iter()
            .map(|p| (p.core_mhz, p.mem_mhz, p.cap_w))
            .collect();
        assert_eq!(got, expect);
        // A cap can only slow a configuration down, never speed it up.
        for pair in lat.points.chunks(2) {
            let (uncapped, capped) = (&pair[0], &pair[1]);
            assert_eq!(uncapped.core_mhz, capped.core_mhz);
            assert_eq!(uncapped.mem_mhz, capped.mem_mhz);
            assert!(
                capped.time_s >= uncapped.time_s,
                "cap stretched nothing at {} MHz / {} MHz?",
                capped.core_mhz,
                capped.mem_mhz
            );
            assert!(capped.energy_j.is_finite() && capped.energy_j > 0.0);
        }
        // Deterministic actuator work (mem clock, cap) is not degradation.
        assert!(diag.is_clean(), "fault-free lattice must be clean");
        // The surface helpers stay coherent.
        let best = lat.min_energy();
        assert!(lat.points.iter().all(|p| p.energy_j >= best.energy_j));
        let surface = lat.pareto_surface();
        assert!(!surface.is_empty() && surface.len() <= lat.points.len());
        let within = lat.min_energy_within(lat.baseline_time_s * 10.0).unwrap();
        assert!(within.energy_j >= best.energy_j || within == best);
    }

    #[test]
    fn lattice_rejected_mem_clock_degrades_and_is_flagged() {
        use gpu_sim::Schedule;
        // Every memory-clock set is rejected: the queue falls back to the
        // default clock, the fallback is recorded, and the point — measured
        // at the wrong configuration — must be flagged, never silently kept.
        let spec = v100();
        let axes = LatticeAxes {
            core_mhz: vec![1312.1],
            mem_mhz: vec![810.0],
            power_caps_w: Vec::new(),
        };
        let opts = SweepOptions {
            reps: 1,
            noise_seed: None,
            faults: FaultPlan::seeded(11).reject_set_frequency(Schedule::Prob(1.0)),
            retry: RetryPolicy::default(),
            remeasure_limit: 1,
            telemetry: None,
        };
        let (lat, diag) = characterize_lattice(&spec, &small_cronos(), &axes, &opts);
        assert_eq!(lat.points.len(), 1);
        assert!(lat.points[0].time_s > 0.0);
        let p = &diag.points[0];
        assert_eq!(p.mem_mhz, 810.0, "diagnostics keep the *requested* config");
        assert!(
            p.diag.degradation.mem_clock_fallbacks > 0,
            "fallback must be audited"
        );
        assert!(p.diag.flagged, "degraded configuration must be flagged");
        assert!(!diag.is_clean());
    }
}
