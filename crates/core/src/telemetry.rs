//! Unified observability: metrics registry, event tracing, profiling
//! spans, and exporters.
//!
//! Production DVFS controllers are telemetry-driven — they feed live
//! runtime/power counters back into frequency decisions — and this
//! workspace's subsystems each kept their own ad-hoc counters
//! ([`DegradationMetrics`], [`crate::SweepDiagnostics`],
//! [`gpu_sim::pricing::PriceTableStats`]) with no shared way to export or
//! correlate them. This module is the one place they meet:
//!
//! * **Metrics registry** ([`Registry`]) — typed counters, gauges, and
//!   fixed-bucket histograms registered by dotted name
//!   (`sweep.points_priced`, `campaign.breaker.trips`, `queue.retries`).
//!   Handles are `Arc`s over atomics: updating a metric on the hot replay
//!   path is one relaxed atomic op, and snapshots iterate in
//!   deterministic (sorted-name) order so they are goldenable.
//! * **Event tracing** ([`TraceEvent`]) — a bounded ring of structured
//!   records with explicit begin/end **profiling spans** in the hierarchy
//!   sweep → workload → frequency-point → launch ([`SpanLevel`]). Levels
//!   deeper than the telemetry's `max_level` are skipped at the emission
//!   site, so launch-grained tracing is opt-in and the default armed
//!   overhead stays marginal.
//! * **Exporters** — [`Telemetry::export`] writes
//!   `metrics.json`, `metrics.prom` (Prometheus text exposition format),
//!   and `trace.jsonl` (a Chrome `chrome://tracing`-compatible JSON
//!   trace, one event per line) through the crash-consistent
//!   [`crate::persist::atomic_write_str`].
//!
//! ## Inertness contract
//!
//! Telemetry *observes* measurements; it never participates in them. A
//! sweep or campaign run with a telemetry sink armed produces
//! **bit-identical** results to a disarmed run — the same discipline as
//! the inert [`gpu_sim::FaultPlan`], pinned by golden tests in
//! [`mod@crate::characterize`] and `tests/telemetry.rs`. Trace timestamps are
//! host wall-clock (diagnostic, not goldenable); everything in a metrics
//! snapshot is a deterministic function of the observed work.
//!
//! ## Metric naming
//!
//! Dotted lowercase names, one prefix per subsystem: `sweep.*` (the
//! characterization engine), `queue.*` (mirrored [`DegradationMetrics`]),
//! `pricing.*` (the kernel-price memo cache), `campaign.*` (the
//! supervisor). The Prometheus exporter maps dots to underscores.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::Instant;

use gpu_sim::pricing::PriceTableStats;
use serde::{Serialize, Value};
use synergy::metrics::DegradationMetrics;

use crate::persist::{atomic_write_str, PersistError};

// ---- Metric instruments ----

/// A monotonically increasing counter. One relaxed atomic add per update.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a last-write-wins `f64` (stored as IEEE-754 bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: cumulative-style buckets with upper bounds
/// fixed at registration, plus an exact sum and count. Observation is two
/// relaxed adds and one CAS loop (for the `f64` sum).
#[derive(Debug)]
pub struct Histogram {
    /// Ascending bucket upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per bound, plus the overflow bucket at the end.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Bucket upper bounds (the implicit `+Inf` bucket is not listed).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

// ---- Registry ----

/// The value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(f64),
    /// A histogram's buckets (per-bound counts, overflow last), sum, and
    /// total count.
    Histogram {
        /// Bucket upper bounds, ascending (`+Inf` implicit).
        bounds: Vec<f64>,
        /// Per-bucket counts; the final entry is the `+Inf` overflow.
        counts: Vec<u64>,
        /// Sum of all observations.
        sum: f64,
        /// Number of observations.
        count: u64,
    },
}

/// A point-in-time copy of every registered metric, sorted by name —
/// deterministic iteration order makes snapshots directly goldenable.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub metrics: Vec<(String, MetricValue)>,
}

/// Typed metrics registered by dotted name. Registration is idempotent —
/// asking for an existing name returns the same instrument — and
/// re-registering a name as a *different* type panics (a naming bug).
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn unpoisoned<T>(r: Result<T, PoisonError<T>>) -> T {
    // Metric state is atomic; a panic elsewhere cannot leave it torn, so
    // a poisoned lock is still safe to read and write through.
    r.unwrap_or_else(PoisonError::into_inner)
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn assert_free(&self, name: &str, wanted: &str) {
        let taken = if unpoisoned(self.counters.read()).contains_key(name) {
            Some("counter")
        } else if unpoisoned(self.gauges.read()).contains_key(name) {
            Some("gauge")
        } else if unpoisoned(self.histograms.read()).contains_key(name) {
            Some("histogram")
        } else {
            None
        };
        if let Some(kind) = taken {
            assert_eq!(
                kind, wanted,
                "metric `{name}` is already registered as a {kind}"
            );
        }
    }

    /// Gets or registers the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = unpoisoned(self.counters.read()).get(name) {
            return Arc::clone(c);
        }
        self.assert_free(name, "counter");
        Arc::clone(
            unpoisoned(self.counters.write())
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Gets or registers the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = unpoisoned(self.gauges.read()).get(name) {
            return Arc::clone(g);
        }
        self.assert_free(name, "gauge");
        Arc::clone(
            unpoisoned(self.gauges.write())
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Gets or registers the histogram `name` with the given bucket upper
    /// bounds (strictly ascending, finite; `+Inf` is implicit). An
    /// existing histogram keeps its original bounds.
    ///
    /// # Panics
    /// Panics on unsorted or non-finite bounds, or if `name` is already a
    /// counter or gauge.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(h) = unpoisoned(self.histograms.read()).get(name) {
            return Arc::clone(h);
        }
        self.assert_free(name, "histogram");
        Arc::clone(
            unpoisoned(self.histograms.write())
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Snapshots every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut metrics: Vec<(String, MetricValue)> = Vec::new();
        for (name, c) in unpoisoned(self.counters.read()).iter() {
            metrics.push((name.clone(), MetricValue::Counter(c.get())));
        }
        for (name, g) in unpoisoned(self.gauges.read()).iter() {
            metrics.push((name.clone(), MetricValue::Gauge(g.get())));
        }
        for (name, h) in unpoisoned(self.histograms.read()).iter() {
            metrics.push((
                name.clone(),
                MetricValue::Histogram {
                    bounds: h.bounds.clone(),
                    counts: h.bucket_counts(),
                    sum: h.sum(),
                    count: h.count(),
                },
            ));
        }
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { metrics }
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let entries = self
            .metrics
            .iter()
            .map(|(name, v)| {
                let value = match v {
                    MetricValue::Counter(n) => Value::Map(vec![
                        ("type".into(), Value::Str("counter".into())),
                        ("value".into(), Value::U64(*n)),
                    ]),
                    MetricValue::Gauge(x) => Value::Map(vec![
                        ("type".into(), Value::Str("gauge".into())),
                        ("value".into(), Value::F64(*x)),
                    ]),
                    MetricValue::Histogram {
                        bounds,
                        counts,
                        sum,
                        count,
                    } => Value::Map(vec![
                        ("type".into(), Value::Str("histogram".into())),
                        (
                            "bounds".into(),
                            Value::Seq(bounds.iter().map(|b| Value::F64(*b)).collect()),
                        ),
                        (
                            "counts".into(),
                            Value::Seq(counts.iter().map(|c| Value::U64(*c)).collect()),
                        ),
                        ("sum".into(), Value::F64(*sum)),
                        ("count".into(), Value::U64(*count)),
                    ]),
                };
                (name.clone(), value)
            })
            .collect();
        Value::Map(entries)
    }
}

/// Maps a dotted metric name to a Prometheus-legal one.
fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# TYPE` comments, `_bucket{le=...}`/`_sum`/`_count` series for
    /// histograms).
    pub fn to_prometheus_text(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.metrics {
            let p = prom_name(name);
            match v {
                MetricValue::Counter(n) => {
                    let _ = writeln!(out, "# TYPE {p} counter");
                    let _ = writeln!(out, "{p} {n}");
                }
                MetricValue::Gauge(x) => {
                    let _ = writeln!(out, "# TYPE {p} gauge");
                    let _ = writeln!(out, "{p} {x}");
                }
                MetricValue::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let _ = writeln!(out, "# TYPE {p} histogram");
                    let mut cumulative = 0u64;
                    for (b, c) in bounds.iter().zip(counts) {
                        cumulative += c;
                        let _ = writeln!(out, "{p}_bucket{{le=\"{b}\"}} {cumulative}");
                    }
                    cumulative += counts.last().copied().unwrap_or(0);
                    let _ = writeln!(out, "{p}_bucket{{le=\"+Inf\"}} {cumulative}");
                    let _ = writeln!(out, "{p}_sum {sum}");
                    let _ = writeln!(out, "{p}_count {count}");
                }
            }
        }
        out
    }
}

// ---- Event tracing ----

/// Depth of a span in the profiling hierarchy. Emission sites tag their
/// spans; a [`Telemetry`] skips anything deeper than its configured
/// maximum, so launch-grained tracing costs nothing unless asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanLevel {
    /// One whole sweep or campaign.
    Sweep,
    /// One workload within a campaign.
    Workload,
    /// One frequency point (baseline included).
    Point,
    /// One replayed run / launch batch.
    Launch,
}

impl SpanLevel {
    fn depth(self) -> u8 {
        match self {
            SpanLevel::Sweep => 0,
            SpanLevel::Workload => 1,
            SpanLevel::Point => 2,
            SpanLevel::Launch => 3,
        }
    }
}

/// What a trace record marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point event with no duration.
    Instant,
}

/// One structured trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Seconds since the [`Telemetry`] was created (host wall-clock).
    pub t_s: f64,
    /// Span name, e.g. `"sweep"`, `"point"`. Static by design: span
    /// names are schema, field values carry the dynamic data — and the
    /// hot replay path allocates nothing for a name.
    pub span: &'static str,
    /// Span level the record was emitted at.
    pub level: SpanLevel,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Free-form `key=value` annotations. Keys are schema (static);
    /// values are formatted at emission time.
    pub fields: Vec<(&'static str, String)>,
}

/// Bounded ring of trace events (same idiom as `gpu_sim::Trace`): at
/// capacity the oldest record is evicted and counted, so a runaway sweep
/// can never exhaust memory through its own diagnostics.
#[derive(Debug)]
struct TraceBuffer {
    inner: Mutex<TraceRing>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct TraceRing {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceBuffer {
    fn new(capacity: usize) -> Self {
        TraceBuffer {
            inner: Mutex::new(TraceRing::default()),
            capacity,
        }
    }

    /// Appends one event; its timestamp is taken by `stamp` *while the
    /// ring lock is held*, so concurrent emitters (the rayon point
    /// fan-out) can never interleave records out of timestamp order.
    fn push_with(&self, stamp: impl FnOnce() -> f64, make: impl FnOnce(f64) -> TraceEvent) {
        let mut ring = unpoisoned(self.inner.lock());
        if self.capacity == 0 {
            ring.dropped += 1;
            return;
        }
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        let ev = make(stamp());
        ring.events.push_back(ev);
    }
}

/// RAII guard for a profiling span: emits `Begin` on creation (via
/// [`Telemetry::span`]) and `End` on drop. Inert when the span's level is
/// deeper than the telemetry's maximum.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<'a> {
    telemetry: Option<&'a Telemetry>,
    name: &'static str,
    level: SpanLevel,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(t) = self.telemetry {
            t.push_event(self.level, self.name, EventKind::End, Vec::new());
        }
    }
}

// ---- The telemetry sink ----

/// Default ring capacity: enough for a full-resolution sweep at point
/// granularity with room to spare.
const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Histogram bounds for per-point simulated run times (s).
pub const POINT_TIME_BOUNDS: [f64; 7] = [1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0, 1000.0];

/// Histogram bounds for per-point halo-exchange energies (J).
pub const EXCHANGE_ENERGY_BOUNDS: [f64; 7] = [0.1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5];

/// A shareable telemetry sink: one [`Registry`] + one trace ring.
///
/// Create with [`Telemetry::new`], hand the `Arc` to
/// [`crate::SweepOptions::telemetry`] / [`crate::CampaignConfig::telemetry`],
/// and export with [`Telemetry::export`]. `None` (the default everywhere)
/// means fully disarmed: zero work on any path.
pub struct Telemetry {
    registry: Registry,
    tracer: TraceBuffer,
    epoch: Instant,
    max_level: SpanLevel,
}

impl Telemetry {
    /// A telemetry sink tracing down to frequency-point granularity.
    pub fn new() -> Arc<Self> {
        Telemetry::with_trace_level(SpanLevel::Point)
    }

    /// A sink tracing down to `max_level` (deeper emission sites are
    /// skipped). Metrics are always collected regardless of level.
    pub fn with_trace_level(max_level: SpanLevel) -> Arc<Self> {
        Arc::new(Telemetry {
            registry: Registry::new(),
            tracer: TraceBuffer::new(DEFAULT_TRACE_CAPACITY),
            epoch: Instant::now(),
            max_level,
        })
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Seconds since this sink was created.
    pub fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Whether this sink records trace events at `level`. Emission sites
    /// on hot paths check this *before* building event fields, so a
    /// disabled level costs one comparison, not an allocation.
    pub fn traces(&self, level: SpanLevel) -> bool {
        level.depth() <= self.max_level.depth()
    }

    fn push_event(
        &self,
        level: SpanLevel,
        span: &'static str,
        kind: EventKind,
        fields: Vec<(&'static str, String)>,
    ) {
        self.tracer.push_with(
            || self.now_s(),
            |t_s| TraceEvent {
                t_s,
                span,
                level,
                kind,
                fields,
            },
        );
    }

    /// Opens a profiling span; the returned guard closes it on drop.
    pub fn span<'a>(
        &'a self,
        level: SpanLevel,
        name: &'static str,
        fields: Vec<(&'static str, String)>,
    ) -> SpanGuard<'a> {
        if !self.traces(level) {
            return SpanGuard {
                telemetry: None,
                name,
                level,
            };
        }
        self.push_event(level, name, EventKind::Begin, fields);
        SpanGuard {
            telemetry: Some(self),
            name,
            level,
        }
    }

    /// Emits a duration-less event.
    pub fn instant(
        &self,
        level: SpanLevel,
        name: &'static str,
        fields: Vec<(&'static str, String)>,
    ) {
        if self.traces(level) {
            self.push_event(level, name, EventKind::Instant, fields);
        }
    }

    /// Copies out the recorded trace, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        unpoisoned(self.tracer.inner.lock())
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Events evicted by the ring's capacity limit (or a zero capacity).
    pub fn dropped_events(&self) -> u64 {
        unpoisoned(self.tracer.inner.lock()).dropped
    }

    // ---- Folding existing counter structs through the registry ----

    /// Mirrors a queue's [`DegradationMetrics`] into the `queue.*`
    /// counters — the single source of truth the ISSUE asks for. Call
    /// once per *accepted* measurement (the sweep and campaign paths do).
    pub fn record_degradation(&self, d: &DegradationMetrics) {
        let r = &self.registry;
        for (name, v) in [
            ("queue.retries", d.retries),
            ("queue.frequency_rejections", d.frequency_rejections),
            ("queue.launch_failures", d.launch_failures),
            ("queue.throttled_launches", d.throttled_launches),
            ("queue.counter_rewinds_healed", d.counter_rewinds_healed),
            ("queue.default_clock_fallbacks", d.default_clock_fallbacks),
            ("queue.backoff_ns", d.backoff_ns),
            ("queue.watchdog_misses", d.watchdog_misses),
            ("queue.items_rescheduled", d.items_rescheduled),
            ("queue.devices_evicted", d.devices_evicted),
            ("queue.affinity_fallbacks", d.affinity_fallbacks),
            ("queue.lifecycle_fallbacks", d.lifecycle_fallbacks),
        ] {
            if v > 0 {
                r.counter(name).add(v);
            }
        }
    }

    /// Mirrors one accepted distributed measurement's halo-exchange costs
    /// into the `synergy.exchange.*` metrics: bytes moved across links,
    /// time and energy burned by the exchange machinery, and barrier idle
    /// waits. Purely observational — the distributed sweep is bit-identical
    /// with or without an armed sink.
    pub fn record_exchange(
        &self,
        halo_bytes: u64,
        exchange_time_s: f64,
        exchange_energy_j: f64,
        barrier_wait_s: f64,
    ) {
        let r = &self.registry;
        if halo_bytes > 0 {
            r.counter("synergy.exchange.halo_bytes").add(halo_bytes);
        }
        r.histogram("synergy.exchange.time_s", &POINT_TIME_BOUNDS)
            .observe(exchange_time_s);
        r.histogram("synergy.exchange.energy_j", &EXCHANGE_ENERGY_BOUNDS)
            .observe(exchange_energy_j);
        r.histogram("synergy.exchange.barrier_wait_s", &POINT_TIME_BOUNDS)
            .observe(barrier_wait_s);
    }

    /// Mirrors a [`gpu_sim::pricing::PriceTable`]'s lookup statistics into
    /// the `pricing.*` metrics — hits, misses, and hash collisions become
    /// observable instead of invisible.
    pub fn record_pricing(&self, stats: PriceTableStats, entries: usize) {
        let r = &self.registry;
        r.counter("pricing.hits").add(stats.hits);
        r.counter("pricing.misses").add(stats.misses);
        r.counter("pricing.collisions").add(stats.collisions);
        r.gauge("pricing.entries").set(entries as f64);
    }

    // ---- Exporters ----

    /// The metrics snapshot as pretty JSON.
    pub fn metrics_json(&self) -> String {
        // Rendering a Value cannot fail; fall back to the empty object on
        // the unreachable error path rather than panicking in an exporter.
        serde_json::to_string_pretty(&self.registry.snapshot()).unwrap_or_else(|_| "{}".into())
    }

    /// The metrics snapshot in Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        self.registry.snapshot().to_prometheus_text()
    }

    /// The trace as a Chrome `chrome://tracing` / Perfetto-compatible
    /// JSON array with one event object per line (loadable as a whole
    /// file *and* greppable line by line). Span levels map to `tid`s so
    /// the hierarchy reads as one lane per level.
    pub fn chrome_trace_json(&self) -> String {
        use fmt::Write as _;
        let events = self.events();
        let mut out = String::from("[\n");
        for (i, ev) in events.iter().enumerate() {
            let ph = match ev.kind {
                EventKind::Begin => "B",
                EventKind::End => "E",
                EventKind::Instant => "i",
            };
            let mut args: Vec<(String, Value)> = ev
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), Value::Str(v.clone())))
                .collect();
            args.push(("level".into(), Value::U64(u64::from(ev.level.depth()))));
            let mut obj = vec![
                ("name".into(), Value::Str(ev.span.to_string())),
                ("ph".into(), Value::Str(ph.into())),
                ("ts".into(), Value::F64(ev.t_s * 1e6)),
                ("pid".into(), Value::U64(1)),
                ("tid".into(), Value::U64(u64::from(ev.level.depth()))),
                ("args".into(), Value::Map(args)),
            ];
            if ev.kind == EventKind::Instant {
                obj.push(("s".into(), Value::Str("t".into())));
            }
            let line = serde_json::to_string(&Value::Map(obj)).unwrap_or_else(|_| "{}".into());
            let sep = if i + 1 == events.len() { "" } else { "," };
            let _ = writeln!(out, "{line}{sep}");
        }
        out.push_str("]\n");
        out
    }

    /// Writes `metrics.json`, `metrics.prom`, and `trace.jsonl` into
    /// `dir` (created if missing), each via an atomic full-file replace.
    pub fn export(&self, dir: &Path) -> Result<(), PersistError> {
        atomic_write_str(&dir.join("metrics.json"), &self.metrics_json())?;
        atomic_write_str(&dir.join("metrics.prom"), &self.prometheus_text())?;
        atomic_write_str(&dir.join("trace.jsonl"), &self.chrome_trace_json())?;
        Ok(())
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ring = unpoisoned(self.tracer.inner.lock());
        f.debug_struct("Telemetry")
            .field("metrics", &self.registry.snapshot().metrics.len())
            .field("trace_events", &ring.events.len())
            .field("trace_dropped", &ring.dropped)
            .field("max_level", &self.max_level)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_in_name_order() {
        let r = Registry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").inc();
        r.counter("b.second").inc();
        r.gauge("c.third").set(1.5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.first", "b.second", "c.third"]);
        assert_eq!(snap.metrics[0].1, MetricValue::Counter(1));
        assert_eq!(snap.metrics[1].1, MetricValue::Counter(3));
        assert_eq!(snap.metrics[2].1, MetricValue::Gauge(1.5));
    }

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.snapshot().metrics.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn type_confusion_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let r = Registry::new();
        let h = r.histogram("t", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 60.5);
        match &r.snapshot().metrics[0].1 {
            MetricValue::Histogram { counts, .. } => assert_eq!(counts, &[1, 2, 1]),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_histogram_bounds_rejected() {
        Registry::new().histogram("t", &[10.0, 1.0]);
    }

    #[test]
    fn spans_emit_begin_end_pairs_and_levels_gate() {
        let tel = Telemetry::with_trace_level(SpanLevel::Point);
        {
            let _sweep = tel.span(SpanLevel::Sweep, "sweep", vec![]);
            let _point = tel.span(SpanLevel::Point, "point", vec![("freq", "900".into())]);
            // Deeper than max_level: must leave no record.
            let _launch = tel.span(SpanLevel::Launch, "replay", vec![]);
            tel.instant(SpanLevel::Launch, "skipped", vec![]);
        }
        let evs = tel.events();
        let kinds: Vec<(&str, EventKind)> = evs.iter().map(|e| (e.span, e.kind)).collect();
        assert_eq!(
            kinds,
            [
                ("sweep", EventKind::Begin),
                ("point", EventKind::Begin),
                ("point", EventKind::End),
                ("sweep", EventKind::End),
            ]
        );
        assert!(evs.windows(2).all(|w| w[0].t_s <= w[1].t_s));
        assert_eq!(evs[1].fields, [("freq", "900".to_string())]);
    }

    #[test]
    fn trace_ring_is_bounded() {
        let tel = Telemetry::new();
        for i in 0..(DEFAULT_TRACE_CAPACITY + 10) {
            tel.instant(SpanLevel::Sweep, "tick", vec![("i", i.to_string())]);
        }
        assert_eq!(tel.events().len(), DEFAULT_TRACE_CAPACITY);
        assert_eq!(tel.dropped_events(), 10);
    }

    #[test]
    fn prometheus_text_renders_all_series() {
        let r = Registry::new();
        r.counter("sweep.points_priced").add(7);
        r.gauge("pricing.entries").set(3.0);
        r.histogram("sweep.point_time_s", &[0.1, 1.0]).observe(0.5);
        let text = r.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE sweep_points_priced counter"));
        assert!(text.contains("sweep_points_priced 7"));
        assert!(text.contains("# TYPE pricing_entries gauge"));
        assert!(text.contains("pricing_entries 3"));
        assert!(text.contains("# TYPE sweep_point_time_s histogram"));
        assert!(text.contains("sweep_point_time_s_bucket{le=\"0.1\"} 0"));
        assert!(text.contains("sweep_point_time_s_bucket{le=\"1\"} 1"));
        assert!(text.contains("sweep_point_time_s_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("sweep_point_time_s_sum 0.5"));
        assert!(text.contains("sweep_point_time_s_count 1"));
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let tel = Telemetry::new();
        {
            let _s = tel.span(SpanLevel::Sweep, "sweep", vec![]);
            tel.instant(SpanLevel::Point, "mark", vec![("k", "v".into())]);
        }
        let json = tel.chrome_trace_json();
        let v: Value = serde_json::from_str(&json).expect("trace must parse as JSON");
        match v {
            Value::Seq(items) => {
                assert_eq!(items.len(), 3);
                for item in &items {
                    assert!(item.get("name").is_some());
                    assert!(item.get("ph").is_some());
                    assert!(item.get("ts").is_some());
                }
            }
            other => panic!("expected a JSON array, got {other:?}"),
        }
    }

    #[test]
    fn degradation_fold_mirrors_every_counter() {
        let tel = Telemetry::new();
        let d = DegradationMetrics {
            retries: 3,
            throttled_launches: 2,
            backoff_ns: 500,
            ..Default::default()
        };
        tel.record_degradation(&d);
        tel.record_degradation(&d);
        let snap = tel.registry().snapshot();
        let get = |name: &str| {
            snap.metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(get("queue.retries"), Some(MetricValue::Counter(6)));
        assert_eq!(
            get("queue.throttled_launches"),
            Some(MetricValue::Counter(4))
        );
        assert_eq!(get("queue.backoff_ns"), Some(MetricValue::Counter(1000)));
        // Zero-valued counters are not registered — snapshots stay tight.
        assert_eq!(get("queue.launch_failures"), None);
    }

    #[test]
    fn metrics_json_round_trips() {
        let tel = Telemetry::new();
        tel.registry().counter("a.b").add(41);
        let v: Value = serde_json::from_str(&tel.metrics_json()).expect("valid JSON");
        let entry = v.get("a.b").expect("metric present");
        assert_eq!(entry.get("value"), Some(&Value::U64(41)));
    }
}
