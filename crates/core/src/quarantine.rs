//! Data quarantine between sweep diagnostics and model training.
//!
//! The paper's models are fit to characterization sweeps taken on healthy
//! hardware. A campaign that rode out faults — throttled launches, healed
//! energy counters, re-measured points that stayed dirty — still *completes*,
//! but its degraded points describe the fault machinery, not the device's
//! energy behavior, and silently training on them skews every downstream
//! figure. This stage sits between [`crate::SweepDiagnostics`] and
//! `ml::dataset`: it drops points whose accepted measurement is suspect,
//! and records *what* was dropped and *why*, so a training set's provenance
//! is auditable instead of implicit.
//!
//! A degraded **baseline** is special: every point of a sweep is normalized
//! against the baseline measurement, so a suspect baseline poisons the
//! whole sweep and quarantines all of it.

// Quarantine decides what data is trustworthy; it must never panic on the
// untrustworthy data it exists to handle.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use serde::{Deserialize, Serialize};
use synergy::metrics::DegradationMetrics;

use crate::characterize::{CharPoint, Characterization, PointDiagnostics, SweepDiagnostics};

/// Which sweeps points are excluded from training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantinePolicy {
    /// Drop points whose accepted measurement was still degraded after the
    /// re-measure budget ran out.
    pub drop_flagged: bool,
    /// Drop points whose accepted measurement saw throttled launches.
    pub drop_throttled: bool,
    /// Drop points whose accepted measurement healed an energy-counter
    /// rewind (the healed value can under-count).
    pub drop_healed: bool,
    /// Drop points re-measured more than this many times, even if the
    /// final measurement came back clean (`None` = any number is fine).
    pub max_remeasures: Option<u32>,
}

impl Default for QuarantinePolicy {
    /// The strict policy: training data must look like it came from a
    /// healthy device.
    fn default() -> Self {
        QuarantinePolicy {
            drop_flagged: true,
            drop_throttled: true,
            drop_healed: true,
            max_remeasures: Some(1),
        }
    }
}

impl QuarantinePolicy {
    /// A policy that keeps everything (provenance-only mode: the report
    /// still lists non-finite points, which are *always* dropped).
    pub fn keep_all() -> Self {
        QuarantinePolicy {
            drop_flagged: false,
            drop_throttled: false,
            drop_healed: false,
            max_remeasures: None,
        }
    }

    /// Why this point is excluded under the policy (empty = kept).
    /// Non-finite values are rejected unconditionally — no policy can
    /// admit a NaN into a training set.
    fn reasons(&self, finite: bool, diag: &PointDiagnostics) -> Vec<QuarantineReason> {
        let mut reasons = Vec::new();
        if !finite {
            reasons.push(QuarantineReason::NonFinite);
        }
        if self.drop_flagged && diag.flagged {
            reasons.push(QuarantineReason::Flagged);
        }
        if self.drop_throttled && diag.degradation.throttled_launches > 0 {
            reasons.push(QuarantineReason::Throttled);
        }
        if self.drop_healed && diag.degradation.counter_rewinds_healed > 0 {
            reasons.push(QuarantineReason::CounterHealed);
        }
        if let Some(budget) = self.max_remeasures {
            if diag.remeasured > budget {
                reasons.push(QuarantineReason::RetryBudgetExceeded);
            }
        }
        reasons
    }
}

/// Why a point was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// The accepted measurement was still degraded (re-measure budget
    /// exhausted).
    Flagged,
    /// Launches completed below the requested clock.
    Throttled,
    /// An energy-counter rewind was healed during the measurement.
    CounterHealed,
    /// The point was re-measured more times than the policy trusts.
    RetryBudgetExceeded,
    /// The measurement contains a NaN or infinity.
    NonFinite,
    /// The sweep's baseline was quarantined, so this (possibly clean)
    /// point's normalization is untrustworthy.
    DegradedBaseline,
}

/// Provenance of one dropped point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantinedPoint {
    /// Workload the point belongs to.
    pub workload: String,
    /// Device the point was measured on.
    pub device: String,
    /// Pinned frequency; `None` for the baseline.
    pub freq_mhz: Option<f64>,
    /// Every reason that excluded it, in policy order.
    pub reasons: Vec<QuarantineReason>,
    /// Degradation counters of the accepted measurement.
    pub degradation: DegradationMetrics,
}

/// What quarantine kept and what it dropped.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QuarantineReport {
    /// Points admitted to training.
    pub kept: usize,
    /// Provenance of every dropped point (baselines included).
    pub dropped: Vec<QuarantinedPoint>,
}

impl QuarantineReport {
    /// Merges another report into this one.
    pub fn merge(&mut self, other: QuarantineReport) {
        self.kept += other.kept;
        self.dropped.extend(other.dropped);
    }
}

fn point_finite(p: &CharPoint) -> bool {
    p.freq_mhz.is_finite()
        && p.time_s.is_finite()
        && p.energy_j.is_finite()
        && p.speedup.is_finite()
        && p.norm_energy.is_finite()
}

/// Filters one sweep through the policy. Returns the characterization
/// with only the admitted points (baseline values untouched) plus the
/// report of what was dropped. A quarantined baseline drops every point
/// of the sweep with [`QuarantineReason::DegradedBaseline`] appended to
/// any reasons of the point's own.
pub fn quarantine_sweep(
    charac: &Characterization,
    diag: &SweepDiagnostics,
    policy: &QuarantinePolicy,
) -> (Characterization, QuarantineReport) {
    let mut report = QuarantineReport::default();
    let baseline_finite =
        charac.baseline_time_s.is_finite() && charac.baseline_energy_j.is_finite();
    let baseline_reasons = policy.reasons(baseline_finite, &diag.baseline);
    let baseline_bad = !baseline_reasons.is_empty();
    if baseline_bad {
        report.dropped.push(QuarantinedPoint {
            workload: charac.workload.clone(),
            device: charac.device.clone(),
            freq_mhz: None,
            reasons: baseline_reasons,
            degradation: diag.baseline.degradation,
        });
    }

    let mut kept_points = Vec::with_capacity(charac.points.len());
    for (i, p) in charac.points.iter().enumerate() {
        // Diagnostics align with points by index; a sweep without
        // diagnostics for a point (foreign data) is treated as clean.
        let pd = diag.points.get(i).copied().unwrap_or(PointDiagnostics {
            freq_mhz: Some(p.freq_mhz),
            remeasured: 0,
            flagged: false,
            degradation: DegradationMetrics::default(),
        });
        let mut reasons = policy.reasons(point_finite(p), &pd);
        if baseline_bad {
            reasons.push(QuarantineReason::DegradedBaseline);
        }
        if reasons.is_empty() {
            kept_points.push(*p);
            report.kept += 1;
        } else {
            report.dropped.push(QuarantinedPoint {
                workload: charac.workload.clone(),
                device: charac.device.clone(),
                freq_mhz: Some(p.freq_mhz),
                reasons,
                degradation: pd.degradation,
            });
        }
    }

    (
        Characterization {
            device: charac.device.clone(),
            workload: charac.workload.clone(),
            baseline_time_s: charac.baseline_time_s,
            baseline_energy_j: charac.baseline_energy_j,
            points: kept_points,
        },
        report,
    )
}

/// [`quarantine_sweep`] over a whole campaign's results, merging the
/// per-sweep reports. The returned characterizations feed the existing
/// training-set builders unchanged.
pub fn quarantine_results(
    results: &[(Characterization, SweepDiagnostics)],
    policy: &QuarantinePolicy,
) -> (Vec<Characterization>, QuarantineReport) {
    let mut out = Vec::with_capacity(results.len());
    let mut report = QuarantineReport::default();
    for (c, d) in results {
        let (kept, r) = quarantine_sweep(c, d, policy);
        report.merge(r);
        out.push(kept);
    }
    (out, report)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn clean_diag(freq: Option<f64>) -> PointDiagnostics {
        PointDiagnostics {
            freq_mhz: freq,
            remeasured: 0,
            flagged: false,
            degradation: DegradationMetrics::default(),
        }
    }

    fn sweep() -> (Characterization, SweepDiagnostics) {
        let freqs = [800.0, 1000.0, 1200.0];
        let charac = Characterization {
            device: "V100".into(),
            workload: "wl".into(),
            baseline_time_s: 2.0,
            baseline_energy_j: 100.0,
            points: freqs
                .iter()
                .map(|&f| CharPoint {
                    freq_mhz: f,
                    time_s: 2.0 * 1000.0 / f,
                    energy_j: 100.0 * f / 1000.0,
                    speedup: f / 1000.0,
                    norm_energy: f / 1000.0,
                })
                .collect(),
        };
        let diag = SweepDiagnostics {
            baseline: clean_diag(None),
            points: freqs.iter().map(|&f| clean_diag(Some(f))).collect(),
        };
        (charac, diag)
    }

    #[test]
    fn clean_sweep_passes_untouched() {
        let (c, d) = sweep();
        let (kept, report) = quarantine_sweep(&c, &d, &QuarantinePolicy::default());
        assert_eq!(kept, c);
        assert_eq!(report.kept, 3);
        assert!(report.dropped.is_empty());
    }

    #[test]
    fn throttled_and_flagged_points_are_dropped_with_reasons() {
        let (c, mut d) = sweep();
        d.points[0].degradation.throttled_launches = 2;
        d.points[2].flagged = true;
        let (kept, report) = quarantine_sweep(&c, &d, &QuarantinePolicy::default());
        assert_eq!(kept.points.len(), 1);
        assert_eq!(kept.points[0].freq_mhz, 1000.0);
        assert_eq!(report.kept, 1);
        assert_eq!(report.dropped.len(), 2);
        assert_eq!(report.dropped[0].reasons, vec![QuarantineReason::Throttled]);
        assert_eq!(report.dropped[0].freq_mhz, Some(800.0));
        assert_eq!(report.dropped[1].reasons, vec![QuarantineReason::Flagged]);
    }

    #[test]
    fn retry_budget_applies_even_to_clean_final_measurements() {
        let (c, mut d) = sweep();
        d.points[1].remeasured = 2; // ended clean, but took three tries
        let policy = QuarantinePolicy::default();
        let (kept, report) = quarantine_sweep(&c, &d, &policy);
        assert_eq!(kept.points.len(), 2);
        assert_eq!(
            report.dropped[0].reasons,
            vec![QuarantineReason::RetryBudgetExceeded]
        );
    }

    #[test]
    fn degraded_baseline_poisons_the_whole_sweep() {
        let (c, mut d) = sweep();
        d.baseline.flagged = true;
        let (kept, report) = quarantine_sweep(&c, &d, &QuarantinePolicy::default());
        assert!(kept.points.is_empty());
        assert_eq!(report.kept, 0);
        // Baseline + 3 points all carry provenance.
        assert_eq!(report.dropped.len(), 4);
        assert_eq!(report.dropped[0].freq_mhz, None);
        assert_eq!(report.dropped[0].reasons, vec![QuarantineReason::Flagged]);
        for p in &report.dropped[1..] {
            assert_eq!(p.reasons, vec![QuarantineReason::DegradedBaseline]);
        }
    }

    #[test]
    fn non_finite_points_are_dropped_under_any_policy() {
        let (mut c, d) = sweep();
        c.points[1].norm_energy = f64::NAN;
        let (kept, report) = quarantine_sweep(&c, &d, &QuarantinePolicy::keep_all());
        assert_eq!(kept.points.len(), 2);
        assert_eq!(report.dropped.len(), 1);
        assert_eq!(report.dropped[0].reasons, vec![QuarantineReason::NonFinite]);
    }

    #[test]
    fn keep_all_admits_degraded_points() {
        let (c, mut d) = sweep();
        d.points[0].flagged = true;
        d.baseline.degradation.throttled_launches = 1;
        let (kept, report) = quarantine_sweep(&c, &d, &QuarantinePolicy::keep_all());
        assert_eq!(kept.points.len(), 3);
        assert_eq!(report.kept, 3);
        assert!(report.dropped.is_empty());
    }

    #[test]
    fn results_helper_merges_reports() {
        let (c, mut d) = sweep();
        d.points[0].flagged = true;
        let results = vec![(c.clone(), d), (c, sweep().1)];
        let (kept, report) = quarantine_results(&results, &QuarantinePolicy::default());
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].points.len(), 2);
        assert_eq!(kept[1].points.len(), 3);
        assert_eq!(report.kept, 5);
        assert_eq!(report.dropped.len(), 1);
    }
}
