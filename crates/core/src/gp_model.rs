//! The general-purpose energy model (the Fan et al. baseline, §4.1).
//!
//! Two-phase supervised learning. **Training**: every micro-benchmark of
//! [`crate::microbench`] is executed at every frequency configuration; its
//! static code features, the frequency, and the measured normalized
//! energy / speedup form the training set of two Random Forests.
//! **Prediction**: a new application contributes only its *static code
//! features* (extracted without running it), and the model predicts its
//! speedup / normalized-energy curve over frequency.
//!
//! Because static features are input-independent, the model emits one
//! curve per application regardless of workload — the inaccuracy the
//! domain-specific models remove.

use gpu_sim::{Device, DeviceSpec, KernelProfile};
use ml::dataset::{Dataset, Matrix};
use ml::forest::{RandomForest, RandomForestParams};
use ml::Regressor;
use rayon::prelude::*;

use crate::features::{static_features, N_STATIC_FEATURES};
use crate::microbench::microbenchmarks;

/// A trained general-purpose model for one device.
#[derive(Debug, Clone)]
pub struct GeneralPurposeModel {
    speedup_model: RandomForest,
    energy_model: RandomForest,
    default_freq_mhz: f64,
}

/// A predicted operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedPoint {
    /// Core frequency (MHz).
    pub freq_mhz: f64,
    /// Predicted speedup vs the default configuration.
    pub speedup: f64,
    /// Predicted normalized energy vs the default configuration.
    pub norm_energy: f64,
}

/// Builds the micro-benchmark training design: one row per
/// (benchmark, frequency), with speedup and normalized-energy targets.
/// Benchmarks are priced in parallel (each worker gets its own noiseless
/// device; pricing is deterministic) and the per-benchmark blocks are
/// concatenated in suite order, so the matrix is identical to a serial
/// build.
/// One benchmark's design rows plus its speedup / normalized-energy targets.
type DesignBlock = (Vec<Vec<f64>>, Vec<f64>, Vec<f64>);

fn microbench_design(spec: &DeviceSpec, freqs: &[f64]) -> (Matrix, Vec<f64>, Vec<f64>) {
    let suite = microbenchmarks();
    let blocks: Vec<DesignBlock> = suite
        .par_iter()
        .map(|bench| {
            let dev = Device::new(spec.clone());
            let sf = static_features(std::slice::from_ref(bench));
            // Ground truth from the simulator (noiseless peek).
            let (t_def, e_def) = dev.peek_cost(bench, spec.default_core_mhz);
            let mut rows = Vec::with_capacity(freqs.len());
            let mut y_speedup = Vec::with_capacity(freqs.len());
            let mut y_energy = Vec::with_capacity(freqs.len());
            for &f in freqs {
                let (t, e) = dev.peek_cost(bench, f);
                let mut row = sf.to_vec();
                row.push(f);
                rows.push(row);
                y_speedup.push(t_def / t);
                y_energy.push(e / e_def);
            }
            (rows, y_speedup, y_energy)
        })
        .collect();

    let mut x = Matrix::with_cols(N_STATIC_FEATURES + 1);
    let mut y_speedup = Vec::new();
    let mut y_energy = Vec::new();
    for (rows, ys, ye) in blocks {
        for row in &rows {
            x.push_row(row);
        }
        y_speedup.extend(ys);
        y_energy.extend(ye);
    }
    (x, y_speedup, y_energy)
}

impl GeneralPurposeModel {
    /// Trains on the 106 micro-benchmarks swept over `freqs`, with
    /// scikit-learn-default forests (the paper's grid search concludes the
    /// defaults win).
    pub fn train(spec: &DeviceSpec, freqs: &[f64], seed: u64) -> Self {
        GeneralPurposeModel::train_with(spec, freqs, seed, RandomForestParams::default())
    }

    /// Trains with explicit forest hyper-parameters (used by tests and the
    /// ablation benches to trade accuracy for speed).
    ///
    /// # Panics
    /// Panics on an empty frequency list.
    pub fn train_with(
        spec: &DeviceSpec,
        freqs: &[f64],
        seed: u64,
        params: RandomForestParams,
    ) -> Self {
        assert!(!freqs.is_empty(), "need at least one training frequency");
        let (x, y_speedup, y_energy) = microbench_design(spec, freqs);

        let mut speedup_model = RandomForest::new(params, seed);
        speedup_model.fit(&x, &y_speedup);
        let mut energy_model = RandomForest::new(params, seed ^ 0xE);
        energy_model.fit(&x, &y_energy);

        GeneralPurposeModel {
            speedup_model,
            energy_model,
            default_freq_mhz: spec.default_core_mhz,
        }
    }

    /// The training set the model was built from, exposed for diagnostics.
    pub fn training_dataset(spec: &DeviceSpec, freqs: &[f64]) -> (Dataset, Dataset) {
        let (x, y_speedup, y_energy) = microbench_design(spec, freqs);
        (
            Dataset::new(x.clone(), y_speedup),
            Dataset::new(x, y_energy),
        )
    }

    /// Extracts the static feature vector of an application from its
    /// kernel profiles (the "static code features … extracted from a new
    /// input code" of the prediction phase).
    pub fn application_features(kernels: &[KernelProfile]) -> [f64; N_STATIC_FEATURES] {
        static_features(kernels)
    }

    /// Predicts (speedup, normalized energy) at one frequency.
    pub fn predict(&self, app_features: &[f64; N_STATIC_FEATURES], freq_mhz: f64) -> (f64, f64) {
        let mut row = app_features.to_vec();
        row.push(freq_mhz);
        (
            self.speedup_model.predict_row(&row),
            self.energy_model.predict_row(&row),
        )
    }

    /// Predicts the full curve over `freqs` as one batch: a single design
    /// matrix and two tree-major `predict_batch` passes instead of
    /// `2 × freqs` virtual dispatches. Bit-identical to calling
    /// [`GeneralPurposeModel::predict`] per frequency.
    pub fn predict_curve(
        &self,
        app_features: &[f64; N_STATIC_FEATURES],
        freqs: &[f64],
    ) -> Vec<PredictedPoint> {
        let mut x = Matrix::with_cols(N_STATIC_FEATURES + 1);
        let mut row = app_features.to_vec();
        row.push(0.0);
        for &f in freqs {
            if let Some(last) = row.last_mut() {
                *last = f;
            }
            x.push_row(&row);
        }
        let mut speedup = Vec::with_capacity(freqs.len());
        let mut energy = Vec::with_capacity(freqs.len());
        self.speedup_model.predict_batch(&x, &mut speedup);
        self.energy_model.predict_batch(&x, &mut energy);
        freqs
            .iter()
            .zip(speedup.iter().zip(&energy))
            .map(|(&f, (&s, &e))| PredictedPoint {
                freq_mhz: f,
                speedup: s,
                norm_energy: e,
            })
            .collect()
    }

    /// Default frequency of the device this model was trained for.
    pub fn default_freq_mhz(&self) -> f64 {
        self.default_freq_mhz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::tree::TreeParams;

    fn quick_params() -> RandomForestParams {
        RandomForestParams {
            n_estimators: 15,
            tree: TreeParams::default(),
            bootstrap: true,
        }
    }

    fn quick_model(spec: &DeviceSpec) -> GeneralPurposeModel {
        let freqs = spec.core_freqs.strided(12);
        GeneralPurposeModel::train_with(spec, &freqs, 0, quick_params())
    }

    #[test]
    fn predicts_unity_at_default_frequency() {
        let spec = DeviceSpec::v100();
        let model = quick_model(&spec);
        // A compute-heavy mix the suite covers well.
        let k = KernelProfile::compute_bound("app", 4_000_000, 2000.0);
        let sf = GeneralPurposeModel::application_features(&[k]);
        let (s, e) = model.predict(&sf, spec.default_core_mhz);
        assert!((s - 1.0).abs() < 0.05, "speedup at default ≈ 1, got {s}");
        assert!((e - 1.0).abs() < 0.05, "energy at default ≈ 1, got {e}");
    }

    #[test]
    fn compute_bound_app_predicted_to_scale_with_frequency() {
        let spec = DeviceSpec::v100();
        let model = quick_model(&spec);
        let k = KernelProfile::compute_bound("app", 4_000_000, 2000.0);
        let sf = GeneralPurposeModel::application_features(&[k]);
        let (s_low, _) = model.predict(&sf, 700.0);
        let (s_high, _) = model.predict(&sf, spec.max_core_mhz());
        assert!(s_low < 0.75, "700 MHz speedup {s_low}");
        assert!(s_high > 1.1, "max-clock speedup {s_high}");
    }

    #[test]
    fn memory_bound_app_predicted_flat_under_downclock() {
        let spec = DeviceSpec::v100();
        let model = quick_model(&spec);
        let k = KernelProfile::memory_bound("app", 4_000_000, 64.0);
        let sf = GeneralPurposeModel::application_features(&[k]);
        let (s_low, e_low) = model.predict(&sf, 950.0);
        assert!(s_low > 0.9, "memory-bound down-clock speedup {s_low}");
        assert!(e_low < 0.95, "memory-bound down-clock energy {e_low}");
    }

    #[test]
    fn prediction_is_input_size_independent() {
        // The defining limitation: scaling the workload does not change the
        // static features, so the prediction cannot change.
        let spec = DeviceSpec::v100();
        let model = quick_model(&spec);
        let small = KernelProfile::compute_bound("app", 1_000, 2000.0);
        let big = KernelProfile::compute_bound("app", 100_000_000, 2000.0);
        let sf_small = GeneralPurposeModel::application_features(&[small]);
        let sf_big = GeneralPurposeModel::application_features(&[big]);
        assert_eq!(
            model.predict(&sf_small, 800.0),
            model.predict(&sf_big, 800.0)
        );
    }

    #[test]
    fn curve_has_requested_frequencies() {
        let spec = DeviceSpec::v100();
        let model = quick_model(&spec);
        let k = KernelProfile::compute_bound("app", 4_000_000, 2000.0);
        let sf = GeneralPurposeModel::application_features(&[k]);
        let freqs = [500.0, 1000.0, 1500.0];
        let curve = model.predict_curve(&sf, &freqs);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[1].freq_mhz, 1000.0);
    }

    #[test]
    fn batched_curve_matches_per_frequency_predict() {
        let spec = DeviceSpec::v100();
        let model = quick_model(&spec);
        let k = KernelProfile::compute_bound("app", 4_000_000, 2000.0);
        let sf = GeneralPurposeModel::application_features(&[k]);
        let freqs = [500.0, 900.0, 1100.0, 1380.0];
        let curve = model.predict_curve(&sf, &freqs);
        for p in &curve {
            let (s, e) = model.predict(&sf, p.freq_mhz);
            assert_eq!(p.speedup.to_bits(), s.to_bits());
            assert_eq!(p.norm_energy.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn training_dataset_shape() {
        let spec = DeviceSpec::v100();
        let freqs = spec.core_freqs.strided(40);
        let (ds_s, ds_e) = GeneralPurposeModel::training_dataset(&spec, &freqs);
        assert_eq!(ds_s.len(), 106 * freqs.len());
        assert_eq!(ds_s.x.cols(), 11);
        assert_eq!(ds_e.len(), ds_s.len());
    }
}
