//! The domain-specific energy/time models (§4.2 of the paper).
//!
//! Two models per application — one for execution time, one for energy —
//! trained on `(input features, frequency) → (time, energy)` samples
//! gathered by running the application itself (Figure 11). At prediction
//! time the models are evaluated at every frequency plus the default
//! configuration, and speedup / normalized energy are computed from the
//! *predicted* default values (Figure 12) — so any systematic per-input
//! offset cancels in the ratios.
//!
//! Targets are modelled in log space: times and energies span orders of
//! magnitude across the paper's input grid, and the quantities of interest
//! are ratios.
//!
//! [`DomainSpecificModel::train_selecting`] reproduces the paper's model
//! selection (§5.2.1): Linear, Lasso, SVR-RBF, and Random Forest compete
//! under K-fold cross-validation; Random Forest wins.

use std::sync::Arc;

use ml::dataset::Matrix;
use ml::flat::FlatForest;
use ml::forest::{RandomForest, RandomForestParams};
use ml::lasso::Lasso;
use ml::linear::LinearRegression;
use ml::svr::SvrRbf;
use ml::Regressor;
use serde::{Deserialize, Serialize};

pub use crate::gp_model::PredictedPoint;

/// One training sample `s = (f⃗, c, t, e)` (§4.2.2).
///
/// The feature vector is shared (`Arc`) with its sibling samples: a sweep
/// contributes one sample per frequency point but only one distinct input
/// feature vector, so cloning samples — which LOOCV and model selection do
/// per fold — costs a reference count, not an allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DsSample {
    /// Domain-specific input features `f⃗` (Table 2).
    pub features: Arc<Vec<f64>>,
    /// Frequency configuration `c` (MHz).
    pub freq_mhz: f64,
    /// Measured execution time `t` (s).
    pub time_s: f64,
    /// Measured energy `e` (J).
    pub energy_j: f64,
}

/// One lattice training sample: input features plus the full
/// `(core, mem, cap)` operating configuration (the three-axis
/// generalization of [`DsSample`]).
///
/// The cap column is a plain finite wattage: pass the device TDP for
/// uncapped points so the model sees one continuous axis instead of a
/// sentinel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatticeSample {
    /// Domain-specific input features `f⃗` (Table 2).
    pub features: Arc<Vec<f64>>,
    /// Core frequency (MHz).
    pub core_mhz: f64,
    /// Memory frequency (MHz).
    pub mem_mhz: f64,
    /// Effective power cap (W); the device TDP when uncapped.
    pub cap_w: f64,
    /// Measured execution time `t` (s).
    pub time_s: f64,
    /// Measured energy `e` (J).
    pub energy_j: f64,
}

/// One distributed training sample: input features plus the full gang
/// configuration `(core, mem, cap, num_devices)` — the four-column
/// generalization of [`LatticeSample`] produced by
/// [`crate::distributed::characterize_distributed`].
///
/// `num_devices` is carried as `f64` so the design matrix stays one
/// homogeneous float block; it is always an exact small integer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributedSample {
    /// Domain-specific input features `f⃗` (Table 2).
    pub features: Arc<Vec<f64>>,
    /// Core frequency (MHz).
    pub core_mhz: f64,
    /// Memory frequency (MHz).
    pub mem_mhz: f64,
    /// Effective power cap (W); the device TDP when uncapped.
    pub cap_w: f64,
    /// Gang size the sample was measured on.
    pub num_devices: f64,
    /// Measured makespan `t` (s).
    pub time_s: f64,
    /// Measured gang energy `e` (J).
    pub energy_j: f64,
}

/// One predicted lattice operating point, normalized to the model's
/// default configuration (the lattice sibling of
/// [`PredictedPoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatticePredictedPoint {
    /// Core frequency (MHz).
    pub core_mhz: f64,
    /// Memory frequency (MHz).
    pub mem_mhz: f64,
    /// Effective power cap (W); the device TDP when uncapped.
    pub cap_w: f64,
    /// Predicted `t_default / t`.
    pub speedup: f64,
    /// Predicted `e / e_default`.
    pub norm_energy: f64,
}

/// One input's predicted lattice curve: the default-configuration anchors
/// plus the normalized surface points.
#[derive(Debug, Clone, PartialEq)]
pub struct LatticeCurvePrediction {
    /// Predicted execution time at the default configuration (s).
    pub default_time_s: f64,
    /// Predicted energy at the default configuration (J).
    pub default_energy_j: f64,
    /// Normalized predictions over the requested lattice points.
    pub curve: Vec<LatticePredictedPoint>,
}

/// One predicted distributed operating point, normalized to the model's
/// default configuration (the gang sibling of [`LatticePredictedPoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistributedPredictedPoint {
    /// Core frequency (MHz).
    pub core_mhz: f64,
    /// Memory frequency (MHz).
    pub mem_mhz: f64,
    /// Effective power cap (W); the device TDP when uncapped.
    pub cap_w: f64,
    /// Gang size.
    pub num_devices: f64,
    /// Predicted `t_default / t`.
    pub speedup: f64,
    /// Predicted `e / e_default`.
    pub norm_energy: f64,
}

/// One input's predicted distributed surface: the default-configuration
/// anchors plus the normalized gang points.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedCurvePrediction {
    /// Predicted makespan at the default configuration (s).
    pub default_time_s: f64,
    /// Predicted energy at the default configuration (J).
    pub default_energy_j: f64,
    /// Normalized predictions over the requested gang points.
    pub curve: Vec<DistributedPredictedPoint>,
}

/// The regression algorithms the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Ordinary least squares.
    Linear,
    /// L1-regularized linear regression.
    Lasso,
    /// ε-SVR with an RBF kernel.
    SvrRbf,
    /// Random Forest (the winner in the paper and here).
    RandomForest,
}

impl Algorithm {
    /// All four candidates, in the paper's order.
    pub fn all() -> [Algorithm; 4] {
        [
            Algorithm::Linear,
            Algorithm::Lasso,
            Algorithm::SvrRbf,
            Algorithm::RandomForest,
        ]
    }

    fn build(&self, seed: u64) -> AnyModel {
        match self {
            Algorithm::Linear => AnyModel::Linear(LinearRegression::new()),
            Algorithm::Lasso => AnyModel::Lasso(Lasso::new(1e-3)),
            Algorithm::SvrRbf => AnyModel::Svr(SvrRbf::with_defaults()),
            Algorithm::RandomForest => AnyModel::Forest(RandomForest::new(
                RandomForestParams {
                    n_estimators: 60,
                    ..Default::default()
                },
                seed,
            )),
        }
    }
}

/// Type-erased regressor covering the four candidate algorithms.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum AnyModel {
    Linear(LinearRegression),
    Lasso(Lasso),
    Svr(SvrRbf),
    Forest(RandomForest),
}

impl Regressor for AnyModel {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        match self {
            AnyModel::Linear(m) => m.fit(x, y),
            AnyModel::Lasso(m) => m.fit(x, y),
            AnyModel::Svr(m) => m.fit(x, y),
            AnyModel::Forest(m) => m.fit(x, y),
        }
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        match self {
            AnyModel::Linear(m) => m.predict_row(row),
            AnyModel::Lasso(m) => m.predict_row(row),
            AnyModel::Svr(m) => m.predict_row(row),
            AnyModel::Forest(m) => m.predict_row(row),
        }
    }

    /// One enum dispatch per batch instead of per row; the forest arm also
    /// picks up `RandomForest`'s tree-major override.
    fn predict_batch(&self, x: &Matrix, out: &mut Vec<f64>) {
        match self {
            AnyModel::Linear(m) => m.predict_batch(x, out),
            AnyModel::Lasso(m) => m.predict_batch(x, out),
            AnyModel::Svr(m) => m.predict_batch(x, out),
            AnyModel::Forest(m) => m.predict_batch(x, out),
        }
    }
}

impl AnyModel {
    /// Flattened-forest compilation hook: `Some` only for the forest arm.
    fn compile_flat(&self) -> Option<FlatForest> {
        match self {
            AnyModel::Forest(m) => Some(m.flatten()),
            _ => None,
        }
    }
}

/// A trained domain-specific model pair (time + energy).
///
/// Forest models additionally carry a compiled [`FlatForest`] — a derived
/// struct-of-arrays arena used on the serving hot path. The flat layouts
/// are **not** serialized (the pointer forests remain the source of truth);
/// they are recompiled by `train*` and [`DomainSpecificModel::from_json`],
/// and their predictions are bit-identical to the pointer walk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainSpecificModel {
    time_model: AnyModel,
    energy_model: AnyModel,
    /// Algorithm used for both models.
    pub algorithm: Algorithm,
    n_features: usize,
    default_freq_mhz: f64,
    /// How many configuration columns follow the input features in the
    /// design matrix: 1 for the legacy frequency-only models, 3 for
    /// lattice models (`core_mhz`, `mem_mhz`, `cap_w`), 4 for distributed
    /// models (the lattice columns plus `num_devices`). Serde-defaulted to
    /// 1 so pre-lattice JSON artifacts deserialize unchanged.
    #[serde(default = "one_config_col")]
    config_cols: usize,
    /// The default operating configuration lattice models normalize by
    /// (`[core_mhz, mem_mhz, cap_w]`); empty for legacy models, whose
    /// anchor is `default_freq_mhz` alone.
    #[serde(default)]
    default_config: Vec<f64>,
    // Compiled flat layouts serialize as `null` (see the FlatForest serde
    // impls) and are recompiled on deserialize by `from_json`.
    time_flat: Option<FlatForest>,
    energy_flat: Option<FlatForest>,
}

fn one_config_col() -> usize {
    1
}

/// One input's batched curve prediction: the predicted default-frequency
/// anchors plus the Figure-12 normalized curve.
#[derive(Debug, Clone, PartialEq)]
pub struct CurvePrediction {
    /// Predicted execution time at the default frequency (s).
    pub default_time_s: f64,
    /// Predicted energy at the default frequency (J).
    pub default_energy_j: f64,
    /// Speedup / normalized energy over the requested frequencies.
    pub curve: Vec<PredictedPoint>,
}

fn build_design(samples: &[DsSample]) -> (Matrix, Vec<f64>, Vec<f64>) {
    let n_features = samples[0].features.len();
    let mut x = Matrix::with_cols(n_features + 1);
    let mut y_time = Vec::with_capacity(samples.len());
    let mut y_energy = Vec::with_capacity(samples.len());
    let mut row = Vec::with_capacity(n_features + 1);
    for s in samples {
        assert_eq!(s.features.len(), n_features, "ragged feature vectors");
        assert!(
            s.time_s > 0.0 && s.energy_j > 0.0,
            "times and energies must be positive"
        );
        row.clear();
        row.extend_from_slice(&s.features);
        row.push(s.freq_mhz);
        x.push_row(&row);
        y_time.push(s.time_s.ln());
        y_energy.push(s.energy_j.ln());
    }
    (x, y_time, y_energy)
}

impl DomainSpecificModel {
    /// Trains the Random Forest model pair (the paper's selected
    /// configuration) on the sample set.
    ///
    /// # Panics
    /// Panics on an empty sample set or inconsistent feature widths.
    pub fn train(samples: &[DsSample], default_freq_mhz: f64, seed: u64) -> Self {
        DomainSpecificModel::train_algorithm(
            samples,
            default_freq_mhz,
            Algorithm::RandomForest,
            seed,
        )
    }

    /// Trains a specific algorithm (used by the model-selection study).
    pub fn train_algorithm(
        samples: &[DsSample],
        default_freq_mhz: f64,
        algorithm: Algorithm,
        seed: u64,
    ) -> Self {
        assert!(!samples.is_empty(), "empty training set");
        let (x, y_time, y_energy) = build_design(samples);
        let mut time_model = algorithm.build(seed);
        time_model.fit(&x, &y_time);
        let mut energy_model = algorithm.build(seed ^ 0xE);
        energy_model.fit(&x, &y_energy);
        let time_flat = time_model.compile_flat();
        let energy_flat = energy_model.compile_flat();
        DomainSpecificModel {
            time_model,
            energy_model,
            algorithm,
            n_features: samples[0].features.len(),
            default_freq_mhz,
            config_cols: 1,
            default_config: Vec::new(),
            time_flat,
            energy_flat,
        }
    }

    /// Trains the Random Forest model pair on configuration-lattice
    /// samples: the design matrix carries **three** configuration columns
    /// (`core_mhz`, `mem_mhz`, `cap_w`) after the input features, and
    /// predictions are normalized by `default_config` instead of a bare
    /// default frequency. Legacy (frequency-only) training paths are
    /// untouched — their design matrices, seeds, and predictions stay
    /// bit-identical.
    ///
    /// # Panics
    /// Panics on an empty sample set or inconsistent feature widths.
    pub fn train_lattice(samples: &[LatticeSample], default_config: [f64; 3], seed: u64) -> Self {
        assert!(!samples.is_empty(), "empty training set");
        let n_features = samples[0].features.len();
        let mut x = Matrix::with_cols(n_features + 3);
        let mut y_time = Vec::with_capacity(samples.len());
        let mut y_energy = Vec::with_capacity(samples.len());
        let mut row = Vec::with_capacity(n_features + 3);
        for s in samples {
            assert_eq!(s.features.len(), n_features, "ragged feature vectors");
            assert!(
                s.time_s > 0.0 && s.energy_j > 0.0,
                "times and energies must be positive"
            );
            row.clear();
            row.extend_from_slice(&s.features);
            row.push(s.core_mhz);
            row.push(s.mem_mhz);
            row.push(s.cap_w);
            x.push_row(&row);
            y_time.push(s.time_s.ln());
            y_energy.push(s.energy_j.ln());
        }
        let mut time_model = Algorithm::RandomForest.build(seed);
        time_model.fit(&x, &y_time);
        let mut energy_model = Algorithm::RandomForest.build(seed ^ 0xE);
        energy_model.fit(&x, &y_energy);
        let time_flat = time_model.compile_flat();
        let energy_flat = energy_model.compile_flat();
        DomainSpecificModel {
            time_model,
            energy_model,
            algorithm: Algorithm::RandomForest,
            n_features,
            default_freq_mhz: default_config[0],
            config_cols: 3,
            default_config: default_config.to_vec(),
            time_flat,
            energy_flat,
        }
    }

    /// Trains the Random Forest model pair on distributed gang samples:
    /// the design matrix carries **four** configuration columns
    /// (`core_mhz`, `mem_mhz`, `cap_w`, `num_devices`) after the input
    /// features, so one model prices the compute/communication trade-off —
    /// bigger gangs finish sooner but pay halo-exchange and barrier
    /// energy. Normalization anchors on `default_config` (conventionally
    /// the 1-device default clock point). Lattice and legacy training
    /// paths are untouched.
    ///
    /// # Panics
    /// Panics on an empty sample set or inconsistent feature widths.
    pub fn train_distributed(
        samples: &[DistributedSample],
        default_config: [f64; 4],
        seed: u64,
    ) -> Self {
        assert!(!samples.is_empty(), "empty training set");
        let n_features = samples[0].features.len();
        let mut x = Matrix::with_cols(n_features + 4);
        let mut y_time = Vec::with_capacity(samples.len());
        let mut y_energy = Vec::with_capacity(samples.len());
        let mut row = Vec::with_capacity(n_features + 4);
        for s in samples {
            assert_eq!(s.features.len(), n_features, "ragged feature vectors");
            assert!(
                s.time_s > 0.0 && s.energy_j > 0.0,
                "times and energies must be positive"
            );
            assert!(s.num_devices >= 1.0, "gangs need at least one device");
            row.clear();
            row.extend_from_slice(&s.features);
            row.push(s.core_mhz);
            row.push(s.mem_mhz);
            row.push(s.cap_w);
            row.push(s.num_devices);
            x.push_row(&row);
            y_time.push(s.time_s.ln());
            y_energy.push(s.energy_j.ln());
        }
        let mut time_model = Algorithm::RandomForest.build(seed);
        time_model.fit(&x, &y_time);
        let mut energy_model = Algorithm::RandomForest.build(seed ^ 0xE);
        energy_model.fit(&x, &y_energy);
        let time_flat = time_model.compile_flat();
        let energy_flat = energy_model.compile_flat();
        DomainSpecificModel {
            time_model,
            energy_model,
            algorithm: Algorithm::RandomForest,
            n_features,
            default_freq_mhz: default_config[0],
            config_cols: 4,
            default_config: default_config.to_vec(),
            time_flat,
            energy_flat,
        }
    }

    /// The paper's model selection (§5.2.1): each of the four algorithms is
    /// scored by leave-one-input-out cross-validation on the quantity the
    /// paper cares about — the MAPE of the *normalized* (speedup) curve of
    /// the held-out input. Normalizing inside the score is essential:
    /// absolute times differ by orders of magnitude between inputs and
    /// those offsets cancel in the prediction phase (Fig. 12), so a raw
    /// regression loss would reward the wrong models. Under this protocol
    /// Random Forest wins, as in the paper: linear models miss the
    /// roofline/occupancy kinks, and SVR-RBF collapses toward its bias on
    /// unseen inputs.
    ///
    /// Returns the winning model (trained on the full set) and the
    /// per-algorithm mean CV scores.
    ///
    /// # Panics
    /// Panics with fewer than three distinct input configurations or fewer
    /// than two frequency points per input.
    pub fn train_selecting(
        samples: &[DsSample],
        default_freq_mhz: f64,
        seed: u64,
    ) -> (Self, Vec<(Algorithm, f64)>) {
        assert!(samples.len() >= 10, "too few samples for model selection");
        let (x, _, _) = build_design(samples);
        let feature_cols: Vec<usize> = (0..samples[0].features.len()).collect();
        let groups = ml::cv::groups_from_columns(&x, &feature_cols);
        let folds = ml::cv::leave_one_group_out(&groups);
        assert!(folds.len() >= 3, "need at least three input configurations");

        let mut scores = Vec::new();
        for alg in Algorithm::all() {
            let mut fold_scores = Vec::with_capacity(folds.len());
            for (train_idx, val_idx) in &folds {
                assert!(val_idx.len() >= 2, "need ≥2 frequency points per input");
                let train: Vec<DsSample> = train_idx.iter().map(|&i| samples[i].clone()).collect();
                let model =
                    DomainSpecificModel::train_algorithm(&train, default_freq_mhz, alg, seed);
                // Normalize truth and prediction by the held-out input's
                // point nearest the default frequency.
                let ref_idx = val_idx
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        (samples[a].freq_mhz - default_freq_mhz)
                            .abs()
                            .total_cmp(&(samples[b].freq_mhz - default_freq_mhz).abs())
                    })
                    .expect("non-empty validation group");
                let t_ref_true = samples[ref_idx].time_s;
                let (t_ref_pred, _) = model
                    .predict_time_energy(&samples[ref_idx].features, samples[ref_idx].freq_mhz);
                let mut true_speedup = Vec::with_capacity(val_idx.len());
                let mut pred_speedup = Vec::with_capacity(val_idx.len());
                for &i in val_idx {
                    let s = &samples[i];
                    let (t_pred, _) = model.predict_time_energy(&s.features, s.freq_mhz);
                    true_speedup.push(t_ref_true / s.time_s);
                    pred_speedup.push(t_ref_pred / t_pred);
                }
                fold_scores.push(ml::metrics::mape(&true_speedup, &pred_speedup));
            }
            let mean = fold_scores.iter().sum::<f64>() / fold_scores.len() as f64;
            scores.push((alg, mean));
        }
        let best = scores
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(a, _)| *a)
            .expect("non-empty");
        (
            DomainSpecificModel::train_algorithm(samples, default_freq_mhz, best, seed),
            scores,
        )
    }

    /// Predicts raw `(time, energy)` for an input at one frequency,
    /// through the flat layout when the model pair is a forest.
    ///
    /// # Panics
    /// Panics on a feature-width mismatch.
    pub fn predict_time_energy(&self, features: &[f64], freq_mhz: f64) -> (f64, f64) {
        assert_eq!(features.len(), self.n_features, "feature width mismatch");
        assert_eq!(
            self.config_cols, 1,
            "lattice model needs a full configuration, not a bare frequency"
        );
        let mut row = Vec::with_capacity(self.n_features + 1);
        row.extend_from_slice(features);
        row.push(freq_mhz);
        let t = match &self.time_flat {
            Some(flat) => flat.predict_row(&row),
            None => self.time_model.predict_row(&row),
        };
        let e = match &self.energy_flat {
            Some(flat) => flat.predict_row(&row),
            None => self.energy_model.predict_row(&row),
        };
        (t.exp(), e.exp())
    }

    /// Pointer-walk reference for [`DomainSpecificModel::predict_time_energy`]:
    /// bypasses the flat layout. Kept as the bit-identity oracle for golden
    /// tests and the `BENCH_serving` baseline.
    pub fn predict_time_energy_reference(&self, features: &[f64], freq_mhz: f64) -> (f64, f64) {
        assert_eq!(features.len(), self.n_features, "feature width mismatch");
        assert_eq!(
            self.config_cols, 1,
            "lattice model needs a full configuration, not a bare frequency"
        );
        let mut row = features.to_vec();
        row.push(freq_mhz);
        (
            self.time_model.predict_row(&row).exp(),
            self.energy_model.predict_row(&row).exp(),
        )
    }

    /// The Figure-12 prediction phase: predicted speedup and normalized
    /// energy over `freqs`, normalized by the *predicted* default-frequency
    /// values. Evaluates the whole curve as one batch through the flat
    /// layout — bit-identical to the row-at-a-time reference.
    pub fn predict_curve(&self, features: &[f64], freqs: &[f64]) -> Vec<PredictedPoint> {
        self.predict_curves_batch(&[features], freqs)
            .pop()
            .expect("one input yields one curve")
            .curve
    }

    /// Row-at-a-time pointer-walk reference for
    /// [`DomainSpecificModel::predict_curve`] — the pre-flattening serving
    /// path, kept for golden tests and the `BENCH_serving` baseline.
    pub fn predict_curve_reference(&self, features: &[f64], freqs: &[f64]) -> Vec<PredictedPoint> {
        let (t_def, e_def) = self.predict_time_energy_reference(features, self.default_freq_mhz);
        freqs
            .iter()
            .map(|&f| {
                let (t, e) = self.predict_time_energy_reference(features, f);
                PredictedPoint {
                    freq_mhz: f,
                    speedup: t_def / t,
                    norm_energy: e / e_def,
                }
            })
            .collect()
    }

    /// Batched prediction phase for many inputs at once. The serving drain
    /// path feeds whole admitted batches through this.
    ///
    /// Forest models (the production pair) take the **sweep-aware flat
    /// path**: every `(input, frequency)` row of a curve differs from its
    /// siblings only in the frequency column, so each flattened tree is
    /// descended once per input via `FlatForest::predict_sweep_into` —
    /// frequency splits partition the sweep range instead of re-walking
    /// the tree per frequency. Non-forest models materialize one design
    /// matrix and evaluate it in two batched model passes.
    ///
    /// Per-row float schedules are unchanged on both paths, so every
    /// returned curve is bit-identical to
    /// [`DomainSpecificModel::predict_curve_reference`].
    ///
    /// # Panics
    /// Panics on a feature-width mismatch.
    pub fn predict_curves_batch(&self, inputs: &[&[f64]], freqs: &[f64]) -> Vec<CurvePrediction> {
        assert_eq!(
            self.config_cols, 1,
            "lattice model needs a full configuration, not a bare frequency"
        );
        let stride = freqs.len() + 1;
        let assemble = |t_log: &[f64], e_log: &[f64], base: usize| {
            let t_def = t_log[base].exp();
            let e_def = e_log[base].exp();
            let curve = freqs
                .iter()
                .enumerate()
                .map(|(j, &f)| {
                    let t = t_log[base + 1 + j].exp();
                    let e = e_log[base + 1 + j].exp();
                    PredictedPoint {
                        freq_mhz: f,
                        speedup: t_def / t,
                        norm_energy: e / e_def,
                    }
                })
                .collect();
            CurvePrediction {
                default_time_s: t_def,
                default_energy_j: e_def,
                curve,
            }
        };

        if let (Some(time_flat), Some(energy_flat)) = (&self.time_flat, &self.energy_flat) {
            // One template row per input, the default frequency in the
            // swept column: the same matrix serves as the anchor batch
            // (feature-major plain descents) and as the sweep templates
            // (tree-major, frequency splits partition the ascending sweep
            // range) — four tree-major passes total, each arena streamed
            // once per pass regardless of batch size.
            let mut x = Matrix::with_cols(self.n_features + 1);
            let mut row = Vec::with_capacity(self.n_features + 1);
            for features in inputs {
                assert_eq!(features.len(), self.n_features, "feature width mismatch");
                row.clear();
                row.extend_from_slice(features);
                row.push(self.default_freq_mhz);
                x.push_row(&row);
            }
            let mut t_def_log = Vec::with_capacity(inputs.len());
            let mut e_def_log = Vec::with_capacity(inputs.len());
            time_flat.predict_batch_into(&x, &mut t_def_log);
            energy_flat.predict_batch_into(&x, &mut e_def_log);
            let mut t_curve = Vec::new();
            let mut e_curve = Vec::new();
            time_flat.predict_sweep_batch_into(&x, self.n_features, freqs, &mut t_curve);
            energy_flat.predict_sweep_batch_into(&x, self.n_features, freqs, &mut e_curve);
            return (0..inputs.len())
                .map(|i| {
                    let t_def = t_def_log[i].exp();
                    let e_def = e_def_log[i].exp();
                    let base = i * freqs.len();
                    let curve = freqs
                        .iter()
                        .enumerate()
                        .map(|(j, &f)| PredictedPoint {
                            freq_mhz: f,
                            speedup: t_def / t_curve[base + j].exp(),
                            norm_energy: e_curve[base + j].exp() / e_def,
                        })
                        .collect();
                    CurvePrediction {
                        default_time_s: t_def,
                        default_energy_j: e_def,
                        curve,
                    }
                })
                .collect();
        }

        let mut x = Matrix::with_cols(self.n_features + 1);
        let mut row = Vec::with_capacity(self.n_features + 1);
        for features in inputs {
            assert_eq!(features.len(), self.n_features, "feature width mismatch");
            row.clear();
            row.extend_from_slice(features);
            row.push(self.default_freq_mhz);
            x.push_row(&row);
            for &f in freqs {
                if let Some(last) = row.last_mut() {
                    *last = f;
                }
                x.push_row(&row);
            }
        }

        let mut t_log = Vec::with_capacity(x.rows());
        let mut e_log = Vec::with_capacity(x.rows());
        self.time_model.predict_batch(&x, &mut t_log);
        self.energy_model.predict_batch(&x, &mut e_log);

        (0..inputs.len())
            .map(|i| assemble(&t_log, &e_log, i * stride))
            .collect()
    }

    /// Predicts raw `(time, energy)` for an input at one operating
    /// configuration. `config` must carry exactly
    /// [`DomainSpecificModel::config_cols`] values — `[freq_mhz]` for
    /// legacy models, `[core_mhz, mem_mhz, cap_w]` for lattice models.
    ///
    /// # Panics
    /// Panics on a feature- or configuration-width mismatch.
    pub fn predict_time_energy_config(&self, features: &[f64], config: &[f64]) -> (f64, f64) {
        assert_eq!(features.len(), self.n_features, "feature width mismatch");
        assert_eq!(
            config.len(),
            self.config_cols,
            "configuration width mismatch"
        );
        let mut row = Vec::with_capacity(self.n_features + self.config_cols);
        row.extend_from_slice(features);
        row.extend_from_slice(config);
        let t = match &self.time_flat {
            Some(flat) => flat.predict_row(&row),
            None => self.time_model.predict_row(&row),
        };
        let e = match &self.energy_flat {
            Some(flat) => flat.predict_row(&row),
            None => self.energy_model.predict_row(&row),
        };
        (t.exp(), e.exp())
    }

    /// The lattice prediction phase: speedup and normalized energy over
    /// explicit `(core, mem, cap)` points, normalized by the *predicted*
    /// default-configuration values — the three-axis Figure-12. The anchor
    /// row and every point row go through one batched model pass per
    /// target.
    ///
    /// # Panics
    /// Panics unless the model was trained by
    /// [`DomainSpecificModel::train_lattice`], or on a feature-width
    /// mismatch.
    pub fn predict_lattice_curve(
        &self,
        features: &[f64],
        points: &[[f64; 3]],
    ) -> LatticeCurvePrediction {
        assert_eq!(features.len(), self.n_features, "feature width mismatch");
        assert_eq!(
            self.config_cols, 3,
            "frequency-only model cannot price a configuration lattice"
        );
        let mut x = Matrix::with_cols(self.n_features + 3);
        let mut row = Vec::with_capacity(self.n_features + 3);
        row.extend_from_slice(features);
        row.extend_from_slice(&self.default_config);
        x.push_row(&row);
        for p in points {
            row.truncate(self.n_features);
            row.extend_from_slice(p);
            x.push_row(&row);
        }
        let mut t_log = Vec::with_capacity(x.rows());
        let mut e_log = Vec::with_capacity(x.rows());
        match (&self.time_flat, &self.energy_flat) {
            (Some(tf), Some(ef)) => {
                tf.predict_batch_into(&x, &mut t_log);
                ef.predict_batch_into(&x, &mut e_log);
            }
            _ => {
                self.time_model.predict_batch(&x, &mut t_log);
                self.energy_model.predict_batch(&x, &mut e_log);
            }
        }
        let t_def = t_log[0].exp();
        let e_def = e_log[0].exp();
        let curve = points
            .iter()
            .enumerate()
            .map(|(j, p)| LatticePredictedPoint {
                core_mhz: p[0],
                mem_mhz: p[1],
                cap_w: p[2],
                speedup: t_def / t_log[1 + j].exp(),
                norm_energy: e_log[1 + j].exp() / e_def,
            })
            .collect();
        LatticeCurvePrediction {
            default_time_s: t_def,
            default_energy_j: e_def,
            curve,
        }
    }

    /// The distributed prediction phase: speedup and normalized energy
    /// over explicit `(core, mem, cap, num_devices)` gang points,
    /// normalized by the *predicted* default-configuration values — the
    /// four-axis Figure-12. The anchor row and every point row go through
    /// one batched model pass per target.
    ///
    /// # Panics
    /// Panics unless the model was trained by
    /// [`DomainSpecificModel::train_distributed`], or on a feature-width
    /// mismatch.
    pub fn predict_distributed_curve(
        &self,
        features: &[f64],
        points: &[[f64; 4]],
    ) -> DistributedCurvePrediction {
        assert_eq!(features.len(), self.n_features, "feature width mismatch");
        assert_eq!(
            self.config_cols, 4,
            "only a distributed model can price a gang surface"
        );
        let mut x = Matrix::with_cols(self.n_features + 4);
        let mut row = Vec::with_capacity(self.n_features + 4);
        row.extend_from_slice(features);
        row.extend_from_slice(&self.default_config);
        x.push_row(&row);
        for p in points {
            row.truncate(self.n_features);
            row.extend_from_slice(p);
            x.push_row(&row);
        }
        let mut t_log = Vec::with_capacity(x.rows());
        let mut e_log = Vec::with_capacity(x.rows());
        match (&self.time_flat, &self.energy_flat) {
            (Some(tf), Some(ef)) => {
                tf.predict_batch_into(&x, &mut t_log);
                ef.predict_batch_into(&x, &mut e_log);
            }
            _ => {
                self.time_model.predict_batch(&x, &mut t_log);
                self.energy_model.predict_batch(&x, &mut e_log);
            }
        }
        let t_def = t_log[0].exp();
        let e_def = e_log[0].exp();
        let curve = points
            .iter()
            .enumerate()
            .map(|(j, p)| DistributedPredictedPoint {
                core_mhz: p[0],
                mem_mhz: p[1],
                cap_w: p[2],
                num_devices: p[3],
                speedup: t_def / t_log[1 + j].exp(),
                norm_energy: e_log[1 + j].exp() / e_def,
            })
            .collect();
        DistributedCurvePrediction {
            default_time_s: t_def,
            default_energy_j: e_def,
            curve,
        }
    }

    /// How many configuration columns the design matrix carries after the
    /// input features: 1 (frequency) for legacy models, 3 for lattice
    /// models, 4 for distributed models.
    pub fn config_cols(&self) -> usize {
        self.config_cols
    }

    /// The default operating configuration predictions normalize by:
    /// `[core, mem, cap]` for lattice models, `[default_freq_mhz]` for
    /// legacy ones.
    pub fn default_config(&self) -> Vec<f64> {
        if self.default_config.is_empty() {
            vec![self.default_freq_mhz]
        } else {
            self.default_config.clone()
        }
    }

    /// Whether the model pair carries compiled flat forests (true for every
    /// trained or deserialized Random Forest pair).
    pub fn has_flat(&self) -> bool {
        self.time_flat.is_some() && self.energy_flat.is_some()
    }

    /// Default frequency used for normalization.
    pub fn default_freq_mhz(&self) -> f64 {
        self.default_freq_mhz
    }

    /// Width of the feature vectors this model was trained on — callers
    /// serving predictions validate request width against this instead of
    /// tripping the `predict_time_energy` assertion.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Serializes the trained model pair to JSON — train once during the
    /// (expensive) training phase, ship the model to the runtime that does
    /// frequency selection.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Restores a model pair from [`DomainSpecificModel::to_json`] output,
    /// recompiling the flat inference layout (it is never serialized).
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let mut model: Self = serde_json::from_str(json)?;
        model.time_flat = model.time_model.compile_flat();
        model.energy_flat = model.energy_model.compile_flat();
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic app with a roofline kink: compute time ∝ work/f competes
    /// with a frequency-independent memory floor — the nonsmooth response
    /// surface real DVFS data has.
    fn synth_samples(inputs: &[(f64, f64)], freqs: &[f64]) -> Vec<DsSample> {
        let mut out = Vec::new();
        for &(a, b) in inputs {
            let work = a * b * 1e6;
            for &f in freqs {
                // The memory roof caps the effective rate at 900 MHz.
                let eff = f.min(900.0);
                let time = work / (eff * 1e6) + 4.0e-5;
                let power = 50.0 + 0.1 * f;
                out.push(DsSample {
                    features: Arc::new(vec![a, b]),
                    freq_mhz: f,
                    time_s: time,
                    energy_j: time * power,
                });
            }
        }
        out
    }

    fn freqs() -> Vec<f64> {
        (0..40).map(|i| 500.0 + i as f64 * 27.5).collect()
    }

    #[test]
    fn fits_training_inputs_accurately() {
        let inputs = [(2.0, 3.0), (4.0, 5.0), (8.0, 2.0), (10.0, 10.0)];
        let samples = synth_samples(&inputs, &freqs());
        let model = DomainSpecificModel::train(&samples, 1315.0, 0);
        for s in samples.iter().step_by(7) {
            let (t, e) = model.predict_time_energy(&s.features, s.freq_mhz);
            assert!((t - s.time_s).abs() / s.time_s < 0.1, "time");
            assert!((e - s.energy_j).abs() / s.energy_j < 0.1, "energy");
        }
    }

    #[test]
    fn curve_normalizes_to_predicted_default() {
        let inputs = [(2.0, 3.0), (4.0, 5.0), (8.0, 2.0)];
        let samples = synth_samples(&inputs, &freqs());
        let default = 855.0;
        let model = DomainSpecificModel::train(&samples, default, 0);
        let curve = model.predict_curve(&[4.0, 5.0], &[default]);
        assert!((curve[0].speedup - 1.0).abs() < 1e-9);
        assert!((curve[0].norm_energy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalization_cancels_systematic_offset() {
        // Hold out an unseen input whose absolute time the forest cannot
        // extrapolate; the speedup *curve* must still be accurate because
        // the offset cancels in the ratio (the mechanism that makes the
        // paper's LOOCV errors tiny).
        let train_inputs = [(2.0, 3.0), (4.0, 5.0), (8.0, 2.0), (6.0, 6.0)];
        let samples = synth_samples(&train_inputs, &freqs());
        let model = DomainSpecificModel::train(&samples, 855.0, 0);
        let unseen = [12.0, 9.0];
        let fs = freqs();
        let curve = model.predict_curve(&unseen, &fs);
        for p in &curve {
            let true_speedup = p.freq_mhz.min(900.0) / 855.0;
            assert!(
                (p.speedup - true_speedup).abs() / true_speedup < 0.08,
                "freq {}: predicted {} vs true {}",
                p.freq_mhz,
                p.speedup,
                true_speedup
            );
        }
    }

    #[test]
    fn selection_prefers_random_forest() {
        // The synthetic response is multiplicative/nonlinear in features ×
        // frequency; the paper (and this pipeline) select Random Forest.
        let inputs = [
            (2.0, 3.0),
            (4.0, 5.0),
            (8.0, 2.0),
            (6.0, 6.0),
            (3.0, 9.0),
            (12.0, 4.0),
        ];
        let samples = synth_samples(&inputs, &freqs());
        let (model, scores) = DomainSpecificModel::train_selecting(&samples, 855.0, 1);
        assert_eq!(scores.len(), 4);
        assert_eq!(model.algorithm, Algorithm::RandomForest);
    }

    #[test]
    fn deterministic_training() {
        let samples = synth_samples(&[(2.0, 3.0), (4.0, 5.0)], &freqs());
        let a = DomainSpecificModel::train(&samples, 855.0, 9);
        let b = DomainSpecificModel::train(&samples, 855.0, 9);
        let pa = a.predict_time_energy(&[2.0, 3.0], 500.0);
        let pb = b.predict_time_energy(&[2.0, 3.0], 500.0);
        assert_eq!(pa, pb);
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let samples = synth_samples(&[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0)], &freqs());
        let model = DomainSpecificModel::train(&samples, 855.0, 4);
        let json = model.to_json();
        let back = DomainSpecificModel::from_json(&json).unwrap();
        assert_eq!(back.algorithm, model.algorithm);
        for &f in freqs().iter().step_by(5) {
            let (t0, e0) = model.predict_time_energy(&[4.0, 5.0], f);
            let (t1, e1) = back.predict_time_energy(&[4.0, 5.0], f);
            assert!(((t1 - t0) / t0).abs() < 1e-12);
            assert!(((e1 - e0) / e0).abs() < 1e-12);
        }
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(DomainSpecificModel::from_json("{not json").is_err());
    }

    #[test]
    fn flat_path_bit_identical_to_reference() {
        let samples = synth_samples(&[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0)], &freqs());
        let model = DomainSpecificModel::train(&samples, 855.0, 4);
        assert!(model.has_flat());
        for &f in freqs().iter().step_by(3) {
            let (t, e) = model.predict_time_energy(&[4.0, 5.0], f);
            let (tr, er) = model.predict_time_energy_reference(&[4.0, 5.0], f);
            assert_eq!(t.to_bits(), tr.to_bits());
            assert_eq!(e.to_bits(), er.to_bits());
        }
        let fs = freqs();
        let curve = model.predict_curve(&[4.0, 5.0], &fs);
        let reference = model.predict_curve_reference(&[4.0, 5.0], &fs);
        assert_eq!(curve.len(), reference.len());
        for (a, b) in curve.iter().zip(&reference) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
            assert_eq!(a.norm_energy.to_bits(), b.norm_energy.to_bits());
        }
    }

    #[test]
    fn batched_curves_match_per_input_curves() {
        let samples = synth_samples(&[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0)], &freqs());
        let model = DomainSpecificModel::train(&samples, 855.0, 7);
        let fs = freqs();
        let inputs: [&[f64]; 3] = [&[2.0, 3.0], &[4.0, 5.0], &[12.0, 9.0]];
        let batch = model.predict_curves_batch(&inputs, &fs);
        assert_eq!(batch.len(), 3);
        for (input, pred) in inputs.iter().zip(&batch) {
            let (t_def, e_def) = model.predict_time_energy_reference(input, 855.0);
            assert_eq!(pred.default_time_s.to_bits(), t_def.to_bits());
            assert_eq!(pred.default_energy_j.to_bits(), e_def.to_bits());
            let single = model.predict_curve_reference(input, &fs);
            for (a, b) in pred.curve.iter().zip(&single) {
                assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
                assert_eq!(a.norm_energy.to_bits(), b.norm_energy.to_bits());
            }
        }
    }

    #[test]
    fn deserialized_model_recompiles_flat_layout() {
        let samples = synth_samples(&[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0)], &freqs());
        let model = DomainSpecificModel::train(&samples, 855.0, 4);
        let back = DomainSpecificModel::from_json(&model.to_json()).unwrap();
        assert!(back.has_flat());
        // The recompiled flat layout must stay bit-identical to the pointer
        // forest it was compiled from (the JSON float round-trip itself is
        // only covered to 1e-12 by `json_round_trip_preserves_predictions`).
        for &f in freqs().iter().step_by(5) {
            let (t0, e0) = back.predict_time_energy(&[4.0, 5.0], f);
            let (t1, e1) = back.predict_time_energy_reference(&[4.0, 5.0], f);
            assert_eq!(t0.to_bits(), t1.to_bits());
            assert_eq!(e0.to_bits(), e1.to_bits());
        }
    }

    #[test]
    fn non_forest_models_serve_without_flat_layout() {
        let samples = synth_samples(&[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0)], &freqs());
        let model = DomainSpecificModel::train_algorithm(&samples, 855.0, Algorithm::Linear, 0);
        assert!(!model.has_flat());
        let fs = freqs();
        let curve = model.predict_curve(&[4.0, 5.0], &fs);
        let reference = model.predict_curve_reference(&[4.0, 5.0], &fs);
        for (a, b) in curve.iter().zip(&reference) {
            assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
            assert_eq!(a.norm_energy.to_bits(), b.norm_energy.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_rejected() {
        let _ = DomainSpecificModel::train(&[], 1312.0, 0);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_feature_width_rejected() {
        let samples = synth_samples(&[(2.0, 3.0), (4.0, 5.0)], &freqs());
        let model = DomainSpecificModel::train(&samples, 855.0, 0);
        let _ = model.predict_time_energy(&[1.0], 500.0);
    }

    // ---- Configuration-lattice models ----

    /// Synthetic lattice app: the memory clock moves the roofline, the cap
    /// stretches time when it binds — the qualitative response surface of
    /// the simulator's power model.
    fn synth_lattice_samples(inputs: &[(f64, f64)]) -> Vec<LatticeSample> {
        let mut out = Vec::new();
        for &(a, b) in inputs {
            let work = a * b * 1e6;
            for &f in &[600.0f64, 900.0, 1200.0, 1500.0] {
                for &m in &[800.0f64, 1100.0] {
                    for &cap in &[150.0f64, 300.0] {
                        let roof = 0.9 * m;
                        let eff = f.min(roof);
                        let raw_power = 60.0 + 0.08 * f + 0.03 * m;
                        let stretch = (raw_power / cap).max(1.0);
                        let time = (work / (eff * 1e6) + 4.0e-5) * stretch;
                        let power = raw_power.min(cap);
                        out.push(LatticeSample {
                            features: Arc::new(vec![a, b]),
                            core_mhz: f,
                            mem_mhz: m,
                            cap_w: cap,
                            time_s: time,
                            energy_j: time * power,
                        });
                    }
                }
            }
        }
        out
    }

    #[test]
    fn lattice_model_fits_training_configurations() {
        let samples = synth_lattice_samples(&[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0), (10.0, 10.0)]);
        let model = DomainSpecificModel::train_lattice(&samples, [1500.0, 1100.0, 300.0], 0);
        assert_eq!(model.config_cols(), 3);
        assert_eq!(model.default_config(), vec![1500.0, 1100.0, 300.0]);
        for s in samples.iter().step_by(5) {
            let (t, e) =
                model.predict_time_energy_config(&s.features, &[s.core_mhz, s.mem_mhz, s.cap_w]);
            assert!((t - s.time_s).abs() / s.time_s < 0.15, "time");
            assert!((e - s.energy_j).abs() / s.energy_j < 0.15, "energy");
        }
    }

    #[test]
    fn lattice_curve_normalizes_to_default_config() {
        let samples = synth_lattice_samples(&[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0)]);
        let default = [1500.0, 1100.0, 300.0];
        let model = DomainSpecificModel::train_lattice(&samples, default, 0);
        let pred = model.predict_lattice_curve(&[4.0, 5.0], &[default]);
        assert!((pred.curve[0].speedup - 1.0).abs() < 1e-9);
        assert!((pred.curve[0].norm_energy - 1.0).abs() < 1e-9);
        // And the curve rows agree with the row-at-a-time config path.
        let pts = [[900.0, 800.0, 150.0], [1200.0, 1100.0, 300.0]];
        let pred = model.predict_lattice_curve(&[4.0, 5.0], &pts);
        let (t_def, e_def) = model.predict_time_energy_config(&[4.0, 5.0], &default);
        for (p, cfg) in pred.curve.iter().zip(&pts) {
            let (t, e) = model.predict_time_energy_config(&[4.0, 5.0], cfg);
            assert_eq!(p.speedup.to_bits(), (t_def / t).to_bits());
            assert_eq!(p.norm_energy.to_bits(), (e / e_def).to_bits());
        }
        assert_eq!(pred.default_time_s.to_bits(), t_def.to_bits());
        assert_eq!(pred.default_energy_j.to_bits(), e_def.to_bits());
    }

    #[test]
    fn lattice_model_json_round_trip_keeps_config_cols() {
        let samples = synth_lattice_samples(&[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0)]);
        let model = DomainSpecificModel::train_lattice(&samples, [1500.0, 1100.0, 300.0], 4);
        let back = DomainSpecificModel::from_json(&model.to_json()).unwrap();
        assert_eq!(back.config_cols(), 3);
        assert_eq!(back.default_config(), model.default_config());
        assert!(back.has_flat());
        let cfg = [900.0, 800.0, 150.0];
        let (t0, e0) = model.predict_time_energy_config(&[4.0, 5.0], &cfg);
        let (t1, e1) = back.predict_time_energy_config(&[4.0, 5.0], &cfg);
        assert!(((t1 - t0) / t0).abs() < 1e-12);
        assert!(((e1 - e0) / e0).abs() < 1e-12);
    }

    #[test]
    fn legacy_json_defaults_to_one_config_col() {
        let samples = synth_samples(&[(2.0, 3.0), (4.0, 5.0)], &freqs());
        let model = DomainSpecificModel::train(&samples, 855.0, 9);
        // Strip the new fields from the JSON to simulate a pre-lattice
        // artifact; deserialization must default them.
        let json = model
            .to_json()
            .replace("\"config_cols\":1,", "")
            .replace("\"default_config\":[],", "");
        let back = DomainSpecificModel::from_json(&json).unwrap();
        assert_eq!(back.config_cols(), 1);
        assert_eq!(back.default_config(), vec![855.0]);
        let (t0, _) = model.predict_time_energy(&[2.0, 3.0], 700.0);
        let (t1, _) = back.predict_time_energy(&[2.0, 3.0], 700.0);
        assert!(((t1 - t0) / t0).abs() < 1e-12);
    }

    #[test]
    fn legacy_config_path_matches_frequency_path() {
        let samples = synth_samples(&[(2.0, 3.0), (4.0, 5.0)], &freqs());
        let model = DomainSpecificModel::train(&samples, 855.0, 9);
        let (t0, e0) = model.predict_time_energy(&[2.0, 3.0], 700.0);
        let (t1, e1) = model.predict_time_energy_config(&[2.0, 3.0], &[700.0]);
        assert_eq!(t0.to_bits(), t1.to_bits());
        assert_eq!(e0.to_bits(), e1.to_bits());
    }

    #[test]
    #[should_panic(expected = "lattice model needs a full configuration")]
    fn lattice_model_rejects_bare_frequency_prediction() {
        let samples = synth_lattice_samples(&[(2.0, 3.0), (4.0, 5.0)]);
        let model = DomainSpecificModel::train_lattice(&samples, [1500.0, 1100.0, 300.0], 0);
        let _ = model.predict_time_energy(&[2.0, 3.0], 900.0);
    }

    #[test]
    #[should_panic(expected = "frequency-only model cannot price a configuration lattice")]
    fn legacy_model_rejects_lattice_curve() {
        let samples = synth_samples(&[(2.0, 3.0), (4.0, 5.0)], &freqs());
        let model = DomainSpecificModel::train(&samples, 855.0, 0);
        let _ = model.predict_lattice_curve(&[2.0, 3.0], &[[900.0, 800.0, 150.0]]);
    }

    // ---- Distributed (gang) models ----

    /// Synthetic strong-scaling app: compute shrinks as `1/d`, the halo
    /// exchange cost is fixed per device — the qualitative surface the
    /// decomposed Cronos driver measures.
    fn synth_distributed_samples(inputs: &[(f64, f64)]) -> Vec<DistributedSample> {
        let mut out = Vec::new();
        for &(a, b) in inputs {
            let work = a * b * 1e6;
            for &f in &[600.0f64, 900.0, 1200.0, 1500.0] {
                for &d in &[1.0f64, 2.0, 4.0, 8.0] {
                    let eff = f.min(900.0);
                    let exchange = if d > 1.0 { 6.0e-5 } else { 0.0 };
                    let time = work / (d * eff * 1e6) + 4.0e-5 + exchange;
                    let power = 50.0 + 0.1 * f;
                    out.push(DistributedSample {
                        features: Arc::new(vec![a, b]),
                        core_mhz: f,
                        mem_mhz: 1100.0,
                        cap_w: 300.0,
                        num_devices: d,
                        time_s: time,
                        energy_j: time * power * d,
                    });
                }
            }
        }
        out
    }

    const DIST_DEFAULT: [f64; 4] = [1500.0, 1100.0, 300.0, 1.0];

    #[test]
    fn distributed_model_fits_training_configurations() {
        let samples =
            synth_distributed_samples(&[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0), (10.0, 10.0)]);
        let model = DomainSpecificModel::train_distributed(&samples, DIST_DEFAULT, 0);
        assert_eq!(model.config_cols(), 4);
        assert_eq!(model.default_config(), DIST_DEFAULT.to_vec());
        for s in samples.iter().step_by(5) {
            let cfg = [s.core_mhz, s.mem_mhz, s.cap_w, s.num_devices];
            let (t, e) = model.predict_time_energy_config(&s.features, &cfg);
            assert!((t - s.time_s).abs() / s.time_s < 0.2, "time");
            assert!((e - s.energy_j).abs() / s.energy_j < 0.2, "energy");
        }
    }

    #[test]
    fn distributed_curve_normalizes_to_default_config() {
        let samples = synth_distributed_samples(&[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0)]);
        let model = DomainSpecificModel::train_distributed(&samples, DIST_DEFAULT, 0);
        let pred = model.predict_distributed_curve(&[4.0, 5.0], &[DIST_DEFAULT]);
        assert!((pred.curve[0].speedup - 1.0).abs() < 1e-9);
        assert!((pred.curve[0].norm_energy - 1.0).abs() < 1e-9);
        // And the surface rows agree with the row-at-a-time config path.
        let pts = [[900.0, 1100.0, 300.0, 2.0], [1200.0, 1100.0, 300.0, 4.0]];
        let pred = model.predict_distributed_curve(&[4.0, 5.0], &pts);
        let (t_def, e_def) = model.predict_time_energy_config(&[4.0, 5.0], &DIST_DEFAULT);
        for (p, cfg) in pred.curve.iter().zip(&pts) {
            let (t, e) = model.predict_time_energy_config(&[4.0, 5.0], cfg);
            assert_eq!(p.speedup.to_bits(), (t_def / t).to_bits());
            assert_eq!(p.norm_energy.to_bits(), (e / e_def).to_bits());
        }
        assert_eq!(pred.default_time_s.to_bits(), t_def.to_bits());
        assert_eq!(pred.default_energy_j.to_bits(), e_def.to_bits());
    }

    #[test]
    fn distributed_model_json_round_trip_keeps_config_cols() {
        let samples = synth_distributed_samples(&[(2.0, 3.0), (4.0, 5.0), (8.0, 2.0)]);
        let model = DomainSpecificModel::train_distributed(&samples, DIST_DEFAULT, 4);
        let back = DomainSpecificModel::from_json(&model.to_json()).unwrap();
        assert_eq!(back.config_cols(), 4);
        assert_eq!(back.default_config(), model.default_config());
        assert!(back.has_flat());
        let cfg = [900.0, 1100.0, 300.0, 4.0];
        let (t0, e0) = model.predict_time_energy_config(&[4.0, 5.0], &cfg);
        let (t1, e1) = back.predict_time_energy_config(&[4.0, 5.0], &cfg);
        assert!(((t1 - t0) / t0).abs() < 1e-12);
        assert!(((e1 - e0) / e0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "only a distributed model can price a gang surface")]
    fn lattice_model_rejects_gang_surface() {
        let samples = synth_lattice_samples(&[(2.0, 3.0), (4.0, 5.0)]);
        let model = DomainSpecificModel::train_lattice(&samples, [1500.0, 1100.0, 300.0], 0);
        let _ = model.predict_distributed_curve(&[2.0, 3.0], &[[900.0, 800.0, 150.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "configuration width mismatch")]
    fn distributed_model_rejects_lattice_width_config() {
        let samples = synth_distributed_samples(&[(2.0, 3.0), (4.0, 5.0)]);
        let model = DomainSpecificModel::train_distributed(&samples, DIST_DEFAULT, 0);
        let _ = model.predict_time_energy_config(&[2.0, 3.0], &[900.0, 1100.0, 300.0]);
    }
}
