//! The general-purpose model's micro-benchmark training suite.
//!
//! Fan et al. (ICPP'19) train their model on **106 carefully-designed
//! micro-benchmarks**, each built "to stress one or more features that
//! characterize the device's energy consumption" (§4.1 of the paper). We
//! generate the same structure synthetically:
//!
//! * 10 single-feature stressors — one per Table-1 category;
//! * 45 pairwise blends — every unordered pair of categories, 50/50;
//! * 45 intensity ramps — compute/memory mixtures spanning the roofline
//!   from strongly memory-bound to strongly compute-bound at nine
//!   intensity levels × five mix flavours;
//! * 6 irregular kernels with divergence-like overheads (extra integer and
//!   bitwise work).
//!
//! All run at full occupancy (the suite stresses the *code* axis, not the
//! input axis — which is exactly why the resulting model cannot see
//! workload effects).

use gpu_sim::kernel::{KernelProfile, OpMix};

/// Number of micro-benchmarks in the suite, matching Fan et al.
pub const N_MICROBENCHES: usize = 106;

/// Work items per micro-benchmark: large enough to saturate V100/MI100
/// occupancy.
const WORK_ITEMS: u64 = 4_000_000;

fn unit_mix(category: usize, amount: f64) -> OpMix {
    let mut m = OpMix::default();
    match category {
        0 => m.int_add = amount,
        1 => m.int_mul = amount,
        2 => m.int_div = amount,
        3 => m.int_bw = amount,
        4 => m.float_add = amount,
        5 => m.float_mul = amount,
        6 => m.float_div = amount,
        7 => m.special = amount,
        8 => m.global_access = amount,
        _ => m.local_access = amount,
    }
    m
}

/// Generates the 106-kernel suite, deterministically.
pub fn microbenchmarks() -> Vec<KernelProfile> {
    let mut out = Vec::with_capacity(N_MICROBENCHES);

    // 1. Ten single-feature stressors. Every kernel gets a trickle of
    // global traffic so timing stays well-defined.
    for cat in 0..10 {
        let mut mix = unit_mix(cat, 120.0);
        mix.global_access += 2.0;
        out.push(KernelProfile::new(
            format!("mb::single::{cat}"),
            WORK_ITEMS,
            mix,
        ));
    }

    // 2. Forty-five pairwise blends.
    for a in 0..10 {
        for b in (a + 1)..10 {
            let mut mix = unit_mix(a, 60.0).combine(&unit_mix(b, 60.0));
            mix.global_access += 2.0;
            out.push(KernelProfile::new(
                format!("mb::pair::{a}x{b}"),
                WORK_ITEMS,
                mix,
            ));
        }
    }

    // 3. Forty-five roofline ramps: arithmetic intensity from ~0.1 to ~25
    // issue-cycles per DRAM byte across nine levels, with five flavours of
    // arithmetic (fp-add-heavy, fp-mul-heavy, mixed, int-heavy,
    // special-heavy).
    for level in 0..9 {
        let intensity = 0.1 * 1.85f64.powi(level); // ~0.1 … ~25 cyc/B
        for flavour in 0..5 {
            let bytes = 64.0;
            let cycles = intensity * bytes;
            let mut mix = OpMix {
                global_access: bytes / 4.0,
                ..Default::default()
            };
            match flavour {
                0 => mix.float_add = cycles,
                1 => mix.float_mul = cycles,
                2 => {
                    mix.float_add = cycles * 0.5;
                    mix.float_mul = cycles * 0.5;
                }
                3 => {
                    mix.int_add = cycles * 0.7;
                    mix.int_mul = cycles * 0.15;
                }
                _ => {
                    mix.special = cycles * 0.2;
                    mix.float_add = cycles * 0.2;
                }
            }
            out.push(KernelProfile::new(
                format!("mb::roofline::{level}x{flavour}"),
                WORK_ITEMS,
                mix,
            ));
        }
    }

    // 4. Six irregular kernels: heavy index arithmetic + bitwise work over
    // scattered memory, emulating divergent access patterns.
    for i in 0..6 {
        let scatter = 1.0 + i as f64;
        let mix = OpMix {
            int_add: 30.0 * scatter,
            int_bw: 12.0 * scatter,
            int_div: 2.0 * scatter,
            global_access: 8.0 * scatter,
            local_access: 16.0,
            float_add: 10.0,
            ..Default::default()
        };
        out.push(KernelProfile::new(
            format!("mb::irregular::{i}"),
            WORK_ITEMS,
            mix,
        ));
    }

    debug_assert_eq!(out.len(), N_MICROBENCHES);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::timing::occupancy;
    use gpu_sim::DeviceSpec;

    #[test]
    fn suite_has_106_kernels() {
        assert_eq!(microbenchmarks().len(), N_MICROBENCHES);
    }

    #[test]
    fn names_are_unique() {
        let suite = microbenchmarks();
        let mut names: Vec<&str> = suite.iter().map(|k| k.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_MICROBENCHES);
    }

    #[test]
    fn all_run_at_full_occupancy() {
        let spec = DeviceSpec::v100();
        for k in microbenchmarks() {
            assert!(occupancy(&spec, k.work_items) > 0.99, "{}", k.name);
        }
    }

    #[test]
    fn suite_spans_memory_and_compute_bound() {
        let spec = DeviceSpec::v100();
        let dev = gpu_sim::Device::new(spec.clone());
        let mut mem_bound = 0;
        let mut comp_bound = 0;
        for k in microbenchmarks() {
            let (t, _) = dev.peek(&k, spec.default_core_mhz);
            if t.mem_s > t.comp_s {
                mem_bound += 1;
            } else {
                comp_bound += 1;
            }
        }
        assert!(mem_bound >= 10, "only {mem_bound} memory-bound benches");
        assert!(comp_bound >= 40, "only {comp_bound} compute-bound benches");
    }

    #[test]
    fn feature_vectors_are_diverse() {
        let suite = microbenchmarks();
        let mut vecs: Vec<[u64; 10]> = suite
            .iter()
            .map(|k| k.mix.as_feature_vector().map(|v| v.to_bits()))
            .collect();
        vecs.sort_unstable();
        vecs.dedup();
        assert!(
            vecs.len() > 95,
            "feature vectors should be (almost) all distinct, got {}",
            vecs.len()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(microbenchmarks(), microbenchmarks());
    }
}
