//! End-to-end training and prediction workflows (Figures 11 and 12).
//!
//! The training phase (Fig. 11) launches the application through the
//! SYnergy API once per (input, frequency) pair and collects the dataset
//! `D = {(f⃗, c, t, e)}`; the prediction phase (Fig. 12) evaluates a
//! trained model over the frequency range and extracts the predicted
//! Pareto-optimal frequency configurations.

use std::sync::Arc;

use gpu_sim::DeviceSpec;
use rayon::prelude::*;

use crate::characterize::{characterize, Characterization, Workload};
use crate::ds_model::{DsSample, PredictedPoint};
use crate::features::{CronosInput, LigenInput};
use crate::pareto::pareto_front_indices;

/// A characterized input: its feature vector, its display label, and the
/// frequency sweep measured for it.
///
/// The feature vector is reference-counted: every training sample derived
/// from this input shares it instead of cloning one `Vec<f64>` per
/// frequency point (a full-resolution sweep is ~180 points per input).
#[derive(Debug, Clone)]
pub struct CharacterizedInput {
    /// Domain-specific feature vector (Table 2), shared with all samples.
    pub features: Arc<Vec<f64>>,
    /// Display label (paper-figure format).
    pub label: String,
    /// The measured sweep.
    pub characterization: Characterization,
}

impl CharacterizedInput {
    /// Converts the sweep into training samples `(f⃗, c, t, e)`. The
    /// samples share this input's feature vector.
    pub fn samples(&self) -> Vec<DsSample> {
        self.characterization
            .points
            .iter()
            .map(|p| DsSample {
                features: Arc::clone(&self.features),
                freq_mhz: p.freq_mhz,
                time_s: p.time_s,
                energy_j: p.energy_j,
            })
            .collect()
    }
}

/// Number of timesteps each Cronos energy run simulates.
pub const CRONOS_STEPS: u64 = 10;

/// Floor of the experimental frequency sweep (MHz). The V100 exposes
/// clocks down to 135 MHz, but the paper's characterizations visibly sweep
/// the practically relevant upper range (the figure colorbars start at
/// 600–800 MHz for most experiments); below ~450 MHz every application is
/// deep in the compute-/latency-limited regime that no frequency-selection
/// policy would ever choose.
pub const MIN_EXPERIMENT_MHZ: f64 = 450.0;

/// The frequency set used by all experiments: every supported core clock
/// of `spec` at or above [`MIN_EXPERIMENT_MHZ`], optionally thinned by
/// `stride` (1 = the paper's full-resolution sweep).
pub fn experiment_frequencies(spec: &DeviceSpec, stride: usize) -> Vec<f64> {
    spec.core_freqs
        .strided(stride)
        .into_iter()
        .filter(|f| *f >= MIN_EXPERIMENT_MHZ)
        .collect()
}

/// Characterizes every Cronos grid configuration over `freqs`, fanning the
/// inputs out across threads (each input's sweep is independent; results
/// come back in input order).
pub fn characterize_cronos(
    spec: &DeviceSpec,
    configs: &[CronosInput],
    freqs: &[f64],
    reps: usize,
    noise_seed: Option<u64>,
) -> Vec<CharacterizedInput> {
    configs
        .par_iter()
        .map(|cfg| {
            let workload = cronos::GpuCronos::new(
                cronos::Grid::cubic(cfg.grid_x, cfg.grid_y, cfg.grid_z),
                CRONOS_STEPS,
            );
            CharacterizedInput {
                features: Arc::new(cfg.features()),
                label: cfg.label(),
                characterization: characterize(spec, &workload, freqs, reps, noise_seed),
            }
        })
        .collect()
}

/// Characterizes every LiGen input configuration over `freqs`, fanning the
/// inputs out across threads.
pub fn characterize_ligen(
    spec: &DeviceSpec,
    configs: &[LigenInput],
    freqs: &[f64],
    reps: usize,
    noise_seed: Option<u64>,
) -> Vec<CharacterizedInput> {
    configs
        .par_iter()
        .map(|cfg| {
            let workload =
                ligen::GpuLigen::new(cfg.ligands as u64, cfg.atoms as u64, cfg.fragments as u64);
            CharacterizedInput {
                features: Arc::new(cfg.features()),
                label: cfg.label(),
                characterization: characterize(spec, &workload, freqs, reps, noise_seed),
            }
        })
        .collect()
}

/// Flattens characterized inputs into one training set.
pub fn training_set(inputs: &[CharacterizedInput]) -> Vec<DsSample> {
    inputs.iter().flat_map(|c| c.samples()).collect()
}

/// The LOOCV training set: every input except `skip`, flattened. Avoids
/// cloning the held-out fold's characterizations just to drop them.
pub fn training_set_excluding(inputs: &[CharacterizedInput], skip: usize) -> Vec<DsSample> {
    inputs
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != skip)
        .flat_map(|(_, c)| c.samples())
        .collect()
}

/// The static-feature extraction for the two applications: aggregate the
/// kernel profiles the application submits (what a static analyzer sees).
pub fn cronos_static_features(cfg: &CronosInput) -> [f64; crate::features::N_STATIC_FEATURES] {
    let grid = cronos::Grid::cubic(cfg.grid_x, cfg.grid_y, cfg.grid_z);
    crate::features::static_features(&cronos::kernelize::static_analysis_kernels(&grid))
}

/// LiGen static features from its two kernels.
pub fn ligen_static_features(cfg: &LigenInput) -> [f64; crate::features::N_STATIC_FEATURES] {
    let kernels = ligen::kernelize::static_analysis_kernels(
        cfg.ligands as u64,
        cfg.atoms as u64,
        cfg.fragments as u64,
        &ligen::DockParams::default(),
    );
    crate::features::static_features(&kernels)
}

/// Extracts the predicted Pareto-optimal frequency set from a predicted
/// curve (the three-step §5.2.2 procedure, applied to predictions).
pub fn predicted_pareto_frequencies(curve: &[PredictedPoint]) -> Vec<f64> {
    let pts: Vec<(f64, f64)> = curve.iter().map(|p| (p.speedup, p.norm_energy)).collect();
    pareto_front_indices(&pts)
        .into_iter()
        .map(|i| curve[i].freq_mhz)
        .collect()
}

/// The true Pareto-optimal frequency set of a measured characterization.
pub fn true_pareto_frequencies(ch: &Characterization) -> Vec<f64> {
    let pts = ch.objective_points();
    pareto_front_indices(&pts)
        .into_iter()
        .map(|i| ch.points[i].freq_mhz)
        .collect()
}

/// A generic workload characterization helper used by benches: sweeps
/// raw time/energy (not normalized), as in Figures 6–9.
pub fn raw_sweep(
    spec: &DeviceSpec,
    workload: &dyn Workload,
    freqs: &[f64],
) -> Vec<(f64, f64, f64)> {
    let ch = characterize(spec, workload, freqs, 1, None);
    ch.points
        .iter()
        .map(|p| (p.freq_mhz, p.time_s, p.energy_j))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ds_model::DomainSpecificModel;

    fn quick_freqs(spec: &DeviceSpec) -> Vec<f64> {
        spec.core_freqs.strided(24)
    }

    #[test]
    fn cronos_workflow_builds_training_set() {
        let spec = DeviceSpec::v100();
        let freqs = quick_freqs(&spec);
        let configs = [CronosInput::new(10, 4, 4), CronosInput::new(40, 16, 16)];
        let chars = characterize_cronos(&spec, &configs, &freqs, 1, None);
        assert_eq!(chars.len(), 2);
        let samples = training_set(&chars);
        assert_eq!(samples.len(), 2 * freqs.len());
        assert_eq!(*samples[0].features, vec![10.0, 4.0, 4.0]);
        assert!(samples.iter().all(|s| s.time_s > 0.0 && s.energy_j > 0.0));
    }

    #[test]
    fn ligen_workflow_builds_training_set() {
        let spec = DeviceSpec::v100();
        let freqs = quick_freqs(&spec);
        let configs = [LigenInput::new(256, 31, 4)];
        let chars = characterize_ligen(&spec, &configs, &freqs, 1, None);
        let samples = training_set(&chars);
        assert_eq!(samples.len(), freqs.len());
        assert_eq!(*samples[0].features, vec![256.0, 4.0, 31.0]);
    }

    #[test]
    fn end_to_end_train_and_predict_pareto() {
        let spec = DeviceSpec::v100();
        let freqs = quick_freqs(&spec);
        let configs = CronosInput::paper_configs();
        let chars = characterize_cronos(&spec, &configs[..3], &freqs, 1, None);
        let samples = training_set(&chars);
        let model = DomainSpecificModel::train(&samples, spec.default_core_mhz, 0);
        let curve = model.predict_curve(&configs[1].features(), &freqs);
        let pred_front = predicted_pareto_frequencies(&curve);
        assert!(!pred_front.is_empty());
        assert!(pred_front.len() <= freqs.len());
    }

    #[test]
    fn true_pareto_contains_extreme_tradeoffs() {
        // The fastest point and the cheapest point are always on the front.
        let spec = DeviceSpec::v100();
        let freqs = quick_freqs(&spec);
        let w = ligen::GpuLigen::new(10_000, 89, 20);
        let ch = characterize(&spec, &w, &freqs, 1, None);
        let front = true_pareto_frequencies(&ch);
        let fastest = ch
            .points
            .iter()
            .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
            .unwrap();
        let cheapest = ch
            .points
            .iter()
            .min_by(|a, b| a.norm_energy.total_cmp(&b.norm_energy))
            .unwrap();
        assert!(front.contains(&fastest.freq_mhz));
        assert!(front.contains(&cheapest.freq_mhz));
    }

    #[test]
    fn static_features_nearly_input_invariant() {
        // The paper's premise: static code features barely move with input
        // (only the boundary kernel's work share shifts slightly).
        let small = cronos_static_features(&CronosInput::new(10, 4, 4));
        let large = cronos_static_features(&CronosInput::new(160, 64, 64));
        for (a, b) in small.iter().zip(&large) {
            assert!((a - b).abs() < 0.08, "feature moved: {a} vs {b}");
        }
        let l_small = ligen_static_features(&LigenInput::new(2, 31, 4));
        let l_large = ligen_static_features(&LigenInput::new(10000, 89, 20));
        for (a, b) in l_small.iter().zip(&l_large) {
            assert!((a - b).abs() < 0.08);
        }
    }
}
