//! # energy-model — domain-specific DVFS energy/time modeling
//!
//! The primary contribution of *"Domain-Specific Energy Modeling for Drug
//! Discovery and Magnetohydrodynamics Applications"* (SC-W 2023),
//! implemented over the simulated substrates of this workspace:
//!
//! * [`features`] — the two feature spaces: the general-purpose model's
//!   *static code features* (Table 1) extracted from kernel profiles, and
//!   the *domain-specific input features* (Table 2: grid dimensions for
//!   Cronos; #ligands/#fragments/#atoms for LiGen);
//! * [`mod@characterize`] — the frequency-sweep runner producing the
//!   speedup/normalized-energy characterizations of §2–3 (five-repetition
//!   medians, vendor-correct baselines: fixed default clock on NVIDIA,
//!   auto governor on AMD);
//! * [`pareto`] — Pareto-front computation over (speedup, normalized
//!   energy) and the predicted-vs-true Pareto set accuracy metrics of
//!   §5.2.2;
//! * [`microbench`] — the 106-kernel synthetic training suite of the
//!   general-purpose baseline (Fan et al., ICPP'19);
//! * [`gp_model`] — the general-purpose model: Random Forests over
//!   (static features ‖ frequency), trained on the micro-benchmarks;
//! * [`ds_model`] — the domain-specific models: per-application Random
//!   Forests over (input features ‖ frequency) predicting time and energy,
//!   normalized into speedup / normalized energy at prediction time
//!   (Figures 11–12);
//! * [`mod@distributed`] — the strong-scaling sibling of the lattice
//!   sweep: gangs of identical devices run the domain-decomposed Cronos
//!   driver over a (device count × core clock) lattice, pricing halo
//!   exchanges and lockstep barriers so the compute/communication energy
//!   trade-off is a first-class model input;
//! * [`artifact`] — versioned, checksummed model artifacts: the envelope
//!   (schema version, content digest, training fingerprint) that lets a
//!   runtime loader reject corrupt or stale models with typed errors
//!   instead of trusting arbitrary JSON;
//! * [`campaign`] — crash-consistent multi-device characterization
//!   campaigns: an fsynced journal with atomic snapshot compaction
//!   (kill-anywhere resume, bit-identical results), per-device circuit
//!   breakers with eviction and re-scheduling, and deterministic
//!   watchdog deadlines;
//! * [`persist`] — the shared crash-consistency primitives: atomic
//!   full-file replacement and the append-only JSONL journal;
//! * [`quarantine`] — the data-quality gate between sweep diagnostics
//!   and training: degraded points are dropped with recorded provenance
//!   instead of silently skewing the models;
//! * [`telemetry`] — the unified observability layer: a typed metrics
//!   registry, a bounded structured-event trace with profiling spans
//!   (sweep → workload → point → launch), and Prometheus / Chrome-trace
//!   exporters — armed telemetry leaves every result bit-identical;
//! * [`workflow`] — the end-to-end training/prediction phases;
//! * [`eval`] — the §5.2 evaluation protocol: leave-one-input-out
//!   cross-validation, per-input MAPE, and Pareto set comparison;
//! * [`per_kernel`] — the paper's future work implemented: per-kernel
//!   domain-specific models and per-kernel frequency plans that drop into
//!   SYnergy's per-kernel scaling.

pub mod artifact;
pub mod campaign;
pub mod characterize;
pub mod distributed;
pub mod ds_model;
pub mod eval;
pub mod features;
pub mod gp_model;
pub mod microbench;
pub mod pareto;
pub mod per_kernel;
pub mod persist;
pub mod quarantine;
pub mod telemetry;
pub mod workflow;

pub use artifact::{
    fnv1a_64, training_fingerprint, ArtifactError, ModelArtifact, ARTIFACT_SCHEMA_VERSION,
};
pub use campaign::{
    run_campaign, BreakerConfig, CampaignConfig, CampaignError, CampaignMetrics, CampaignOutcome,
    DeviceSlot,
};
pub use characterize::{
    characterize, characterize_lattice, characterize_serial, characterize_serial_with_options,
    characterize_with_options, CharPoint, Characterization, LatticeAxes, LatticeCharacterization,
    LatticeDiagnostics, LatticePoint, LatticePointDiagnostics, PointDiagnostics, SweepDiagnostics,
    SweepOptions, Workload,
};
pub use distributed::{
    characterize_distributed, DistributedAxes, DistributedCharacterization, DistributedPoint,
    DistributedSweepOptions,
};
pub use ds_model::{
    CurvePrediction, DistributedCurvePrediction, DistributedPredictedPoint, DistributedSample,
    DomainSpecificModel, LatticeCurvePrediction, LatticePredictedPoint, LatticeSample,
};
pub use features::{CronosInput, LigenInput};
pub use gp_model::GeneralPurposeModel;
pub use pareto::pareto_front_indices;
pub use persist::{atomic_write, atomic_write_str, PersistError};
pub use quarantine::{
    quarantine_results, quarantine_sweep, QuarantinePolicy, QuarantineReason, QuarantineReport,
};
pub use telemetry::{MetricsSnapshot, Registry, SpanLevel, Telemetry};
