//! Crash-consistent, multi-device characterization campaigns.
//!
//! A paper-scale DVFS characterization (Figures 1–10) is hours of
//! measurement per application × input × GPU. This module runs that work
//! as a *supervised, resumable* unit:
//!
//! * **Journal + snapshot.** Every completed or failed work item is
//!   appended to a JSONL journal ([`crate::persist::Journal`]) and fsynced
//!   before the scheduler moves on; the journal is periodically compacted
//!   into an atomic snapshot. Killing the process at any instant and
//!   re-running with `resume = true` continues from the last committed
//!   item and produces **bit-identical** results to an uninterrupted run.
//!   That guarantee is by construction: each item's measurement is a pure
//!   function of `(spec, workload, item index, seeds, slot health,
//!   prior failures)` — never of wall-clock time or execution order — so
//!   "resume" is simply "skip what the journal already committed".
//! * **Per-device circuit breakers.** Each simulated device slot is
//!   wrapped in a closed → open → half-open breaker driven by permanent
//!   `BackendError`s and watchdog deadline misses. A tripped device cools
//!   down (in deterministic scheduler ticks, not wall time), gets one
//!   half-open probe, and after `max_trips` is permanently evicted; its
//!   pending `(app, input, frequency)` items are re-scheduled onto
//!   healthy slots via the same `try_replay_on` path every sweep uses.
//! * **Typed failure.** A full disk, foreign journal, or fully-evicted
//!   fleet surfaces as a [`CampaignError`], never a panic — and the
//!   journal survives, so a later resume can still finish the work.
//!
//! The quarantine stage that keeps degraded campaign points out of the
//! training set lives in [`crate::quarantine`].

// Supervisor code must degrade with typed errors, never panic: crashes
// are this module's subject matter, not an acceptable failure mode.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gpu_sim::pricing::PriceTable;
use gpu_sim::{DeviceSpec, FaultPlan};
use serde::{Deserialize, Serialize};
use synergy::energy::Measurement;
use synergy::metrics::DegradationMetrics;
use synergy::queue::{RetryPolicy, SubmitError};
use synergy::KernelTrace;

use crate::characterize::{
    char_point, replay_queue, try_measure_attempts, Characterization, PointDiagnostics,
    SweepDiagnostics, SweepOptions, Workload,
};
use crate::persist::{atomic_write_str, read_journal, Journal, PersistError};
use crate::telemetry::{SpanLevel, Telemetry};

/// Journal file name inside a campaign directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";
/// Snapshot file name inside a campaign directory.
pub const SNAPSHOT_FILE: &str = "snapshot.json";
/// On-disk format version stamped into headers and snapshots.
pub const JOURNAL_VERSION: u32 = 1;

/// The journal file of a campaign directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

/// The snapshot file of a campaign directory.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

// ---- Work items ----

/// Which sweep point of a workload an item measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PointId {
    /// The vendor-default baseline configuration.
    Baseline,
    /// Index into [`CampaignConfig::freqs`].
    Freq(usize),
}

/// One unit of campaign work: one sweep point of one workload. Items are
/// the granularity of journaling, scheduling, and re-scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemId {
    /// Index into the campaign's workload list.
    pub workload: usize,
    /// Which sweep point.
    pub point: PointId,
}

impl ItemId {
    /// The noise/fault seed offset the plain sweep assigns this point:
    /// `0` for the baseline, `1 + i` for frequency index `i`. Keyed by
    /// index, not execution order — the root of resume determinism.
    fn seed_off(&self) -> u64 {
        match self.point {
            PointId::Baseline => 0,
            PointId::Freq(i) => 1 + i as u64,
        }
    }

    /// Dense index over a campaign's items: `1 + n_freqs` points per
    /// workload, baseline first.
    fn flat(&self, n_freqs: usize) -> usize {
        self.workload * (1 + n_freqs)
            + match self.point {
                PointId::Baseline => 0,
                PointId::Freq(i) => 1 + i,
            }
    }
}

// ---- Devices and breakers ----

/// One simulated device slot in the campaign fleet. All slots share the
/// campaign's [`DeviceSpec`] (a campaign characterizes one GPU model, as
/// the paper does per figure); they differ in *health*: the fault plan
/// that models this physical unit's management-API behavior. A slot's
/// health plan shapes which items fail on it — it never changes what a
/// *successful* measurement would read on a healthy unit.
#[derive(Debug, Clone)]
pub struct DeviceSlot {
    /// Display name, e.g. `"gpu0"`.
    pub name: String,
    /// This unit's fault plan. [`FaultPlan::none`] is a healthy device.
    pub health: FaultPlan,
}

impl DeviceSlot {
    /// A fault-free device slot.
    pub fn healthy(name: impl Into<String>) -> Self {
        DeviceSlot {
            name: name.into(),
            health: FaultPlan::none(),
        }
    }

    /// A slot whose device misbehaves per `health`.
    pub fn with_health(name: impl Into<String>, health: FaultPlan) -> Self {
        DeviceSlot {
            name: name.into(),
            health,
        }
    }
}

/// Circuit-breaker policy, shared by every slot.
///
/// Cooldowns are measured in scheduler *ticks* (one tick per item
/// assignment), not wall time, so breaker behavior replays exactly from
/// the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that open a closed breaker.
    pub failure_threshold: u32,
    /// Assignments an open breaker sits out before its half-open probe.
    pub cooldown_ticks: u64,
    /// Trips (closed→open or failed probe) before permanent eviction.
    pub max_trips: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ticks: 4,
            max_trips: 3,
        }
    }
}

/// A slot's breaker state. `HalfOpen` exists only between acquiring a
/// cooled-down slot and applying its probe outcome, so it never appears
/// in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy; counting consecutive failures toward the threshold.
    Closed {
        /// Consecutive failures observed so far.
        consecutive_failures: u32,
    },
    /// Tripped; cooling down until `since_tick + cooldown_ticks`.
    Open {
        /// Tick at which the breaker opened.
        since_tick: u64,
    },
    /// Cooled down; the next assignment is a single probe.
    HalfOpen,
    /// Permanently evicted from the fleet.
    Evicted,
}

/// Per-slot supervisor state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotState {
    /// Breaker position.
    pub breaker: BreakerState,
    /// How many times the breaker has tripped.
    pub trips: u32,
}

impl SlotState {
    fn new() -> Self {
        SlotState {
            breaker: BreakerState::Closed {
                consecutive_failures: 0,
            },
            trips: 0,
        }
    }
}

// ---- Configuration ----

/// A full campaign: one device model, a fleet of (possibly unhealthy)
/// slots, and a frequency sweep per workload.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The GPU model every slot instantiates.
    pub spec: DeviceSpec,
    /// The device fleet. Work is scheduled round-robin over healthy slots.
    pub slots: Vec<DeviceSlot>,
    /// Frequencies to sweep (MHz), in the plain sweep's order.
    pub freqs: Vec<f64>,
    /// Repetitions per point (median-aggregated). Must be ≥ 1.
    pub reps: usize,
    /// Measurement-noise seed; `None` runs noiseless.
    pub noise_seed: Option<u64>,
    /// How each measurement queue rides out transient faults.
    pub retry: RetryPolicy,
    /// Re-measure budget for dirty (degraded but complete) points.
    pub remeasure_limit: u32,
    /// Circuit-breaker policy for every slot.
    pub breaker: BreakerConfig,
    /// Watchdog deadline on one measurement attempt's busy time (s). An
    /// attempt exceeding it is discarded and counts as a breaker failure.
    pub watchdog_deadline_s: Option<f64>,
    /// Compact the journal into a snapshot after this many appends of the
    /// current process (0 = never compact).
    pub snapshot_every: u64,
    /// Chaos hook: simulate a crash by aborting with
    /// [`CampaignError::InjectedCrash`] immediately after this many
    /// journal appends of the current process. The aborted run is a
    /// well-formed crash image: everything appended so far is committed.
    pub crash_after_appends: Option<u64>,
    /// Observability sink. `None` (the default) is fully disarmed. An
    /// armed sink only *observes* — results, journal, and snapshots are
    /// bit-identical either way, and the sink is deliberately **excluded
    /// from the config fingerprint** so arming telemetry on a resume is
    /// always compatible. Counters reflect work measured by *this*
    /// process; items replayed from the journal are not re-counted.
    pub telemetry: Option<Arc<Telemetry>>,
}

impl CampaignConfig {
    /// A campaign with default measurement and robustness knobs.
    pub fn new(spec: DeviceSpec, slots: Vec<DeviceSlot>, freqs: Vec<f64>) -> Self {
        CampaignConfig {
            spec,
            slots,
            freqs,
            reps: 1,
            noise_seed: None,
            retry: RetryPolicy::default(),
            remeasure_limit: 2,
            breaker: BreakerConfig::default(),
            watchdog_deadline_s: None,
            snapshot_every: 0,
            crash_after_appends: None,
            telemetry: None,
        }
    }

    fn n_items(&self, n_workloads: usize) -> usize {
        n_workloads * (1 + self.freqs.len())
    }

    /// Identity of the campaign's *results*: everything that shapes a
    /// measurement or the schedule, including each workload's recorded
    /// kernel trace — so a workload whose input or implementation changed
    /// under an unchanged name is still a different campaign. Operational
    /// knobs (`snapshot_every`, `crash_after_appends`) are excluded —
    /// changing them between runs is resume-compatible.
    fn fingerprint(&self, workloads: &[&dyn Workload], traces: &[KernelTrace]) -> String {
        use fmt::Write as _;
        let mut desc = String::new();
        let _ = write!(desc, "spec={:?};", self.spec);
        for s in &self.slots {
            let _ = write!(desc, "slot={}:{:?};", s.name, s.health);
        }
        let _ = write!(
            desc,
            "freqs={:?};reps={};noise={:?};retry={:?};remeasure={};breaker={:?};watchdog={:?};",
            self.freqs,
            self.reps,
            self.noise_seed,
            self.retry,
            self.remeasure_limit,
            self.breaker,
            self.watchdog_deadline_s
        );
        for (w, trace) in workloads.iter().zip(traces) {
            let _ = write!(
                desc,
                "workload={}:{:016x};",
                w.name(),
                fnv1a64(format!("{trace:?}").as_bytes())
            );
        }
        format!("{:016x}", fnv1a64(desc.as_bytes()))
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derives the fault-stream base seed for measuring an item on `slot`
/// after `prior_failures` earlier permanent failures of that item. At
/// `(slot 0, 0 failures)` this is the identity, which is what makes a
/// single-healthy-slot campaign bit-identical to
/// [`crate::characterize_with_options`]; elsewhere the odd-constant mixes
/// decorrelate the streams so a half-open probe or re-scheduled item
/// doesn't deterministically replay the exact failure that preceded it.
fn slot_stream_base(health_seed: u64, slot: usize, prior_failures: u32) -> u64 {
    health_seed
        ^ (slot as u64).wrapping_mul(0xA24B_AED4_963E_E407)
        ^ u64::from(prior_failures).wrapping_mul(0x9FB2_1C65_1E98_DF25)
}

// ---- Journal records ----

/// Why an item failed on a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The backend abandoned the submission with a permanent error.
    Backend,
    /// The measurement exceeded the campaign's watchdog deadline.
    Watchdog,
}

/// One journal line. `seq` is the scheduler tick of the assignment; on
/// replay each record is re-derived from the committed state and compared
/// whole, so any divergence (foreign journal, edited file, gap) surfaces
/// as corruption instead of silently skewing the resumed schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// First line of every journal: format version + config fingerprint.
    Header {
        /// [`JOURNAL_VERSION`] at write time.
        version: u32,
        /// [`CampaignConfig`] fingerprint (hex).
        fingerprint: String,
    },
    /// An item completed on a slot.
    Done {
        /// Scheduler tick of the assignment.
        seq: u64,
        /// The completed item.
        item: ItemId,
        /// Slot it ran on.
        slot: usize,
        /// Accepted median time (s).
        time_s: f64,
        /// Accepted median energy (J).
        energy_j: f64,
        /// Diagnostics of the accepted measurement.
        diag: PointDiagnostics,
    },
    /// An item failed permanently on a slot and was re-queued.
    Failed {
        /// Scheduler tick of the assignment.
        seq: u64,
        /// The failed item (re-scheduled onto the back of the queue).
        item: ItemId,
        /// Slot it failed on.
        slot: usize,
        /// Failure class.
        kind: FailureKind,
        /// Human-readable error.
        error: String,
        /// Whether this failure tripped the slot's breaker open.
        tripped: bool,
        /// Whether the trip permanently evicted the slot.
        evicted: bool,
    },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Snapshot {
    version: u32,
    fingerprint: String,
    state: CampaignState,
}

// ---- Supervisor state ----

/// A completed item held in state (and in snapshots).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoneItem {
    /// The completed item.
    pub item: ItemId,
    /// Slot it ran on.
    pub slot: usize,
    /// Accepted median time (s).
    pub time_s: f64,
    /// Accepted median energy (J).
    pub energy_j: f64,
    /// Diagnostics of the accepted measurement.
    pub diag: PointDiagnostics,
}

/// Campaign-level counters (journal-derived, so they survive resume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
struct Totals {
    backend_failures: u64,
    watchdog_misses: u64,
    items_rescheduled: u64,
    breaker_trips: u64,
    devices_evicted: u64,
}

/// The whole supervisor state. Fully serializable: a snapshot is exactly
/// this struct, and replaying the journal tail through [`Self::step`]
/// reconstructs it deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CampaignState {
    tick: u64,
    rr_cursor: usize,
    pending: Vec<ItemId>,
    failures: Vec<u32>,
    slots: Vec<SlotState>,
    done: Vec<DoneItem>,
    totals: Totals,
}

/// Outcome of measuring one item on one slot.
enum ItemOutcome {
    Success {
        time_s: f64,
        energy_j: f64,
        diag: PointDiagnostics,
    },
    Failure {
        kind: FailureKind,
        error: String,
    },
}

impl CampaignState {
    fn new(cfg: &CampaignConfig, n_workloads: usize) -> Self {
        let mut pending = Vec::with_capacity(cfg.n_items(n_workloads));
        for w in 0..n_workloads {
            pending.push(ItemId {
                workload: w,
                point: PointId::Baseline,
            });
            for i in 0..cfg.freqs.len() {
                pending.push(ItemId {
                    workload: w,
                    point: PointId::Freq(i),
                });
            }
        }
        CampaignState {
            tick: 0,
            rr_cursor: 0,
            failures: vec![0; pending.len()],
            pending,
            slots: vec![SlotState::new(); cfg.slots.len()],
            done: Vec::new(),
            totals: Totals::default(),
        }
    }

    fn slot_ready(&self, s: usize, cooldown_ticks: u64) -> bool {
        match self.slots[s].breaker {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { since_tick } => self.tick >= since_tick + cooldown_ticks,
            BreakerState::Evicted => false,
        }
    }

    /// Picks the next slot round-robin among ready ones. If every
    /// non-evicted slot is still cooling down, the tick fast-forwards to
    /// the earliest probe time (ticks advance only on assignments, so
    /// without this a fully-open fleet would deadlock). Selecting an open
    /// slot transitions it to its half-open probe. Returns `None` only
    /// when every slot is evicted.
    fn acquire_slot(&mut self, cfg: &BreakerConfig) -> Option<usize> {
        let n = self.slots.len();
        if !(0..n).any(|s| self.slot_ready(s, cfg.cooldown_ticks)) {
            let next_ready = self
                .slots
                .iter()
                .filter_map(|st| match st.breaker {
                    BreakerState::Open { since_tick } => Some(since_tick + cfg.cooldown_ticks),
                    _ => None,
                })
                .min()?;
            self.tick = next_ready;
        }
        for off in 0..n {
            let s = (self.rr_cursor + off) % n;
            if self.slot_ready(s, cfg.cooldown_ticks) {
                if let BreakerState::Open { .. } = self.slots[s].breaker {
                    self.slots[s].breaker = BreakerState::HalfOpen;
                }
                return Some(s);
            }
        }
        None
    }

    /// Applies one assignment outcome: pops the scheduled item, advances
    /// the clock and cursor, updates the slot's breaker, and returns the
    /// journal record describing exactly what happened. Used identically
    /// by the live scheduler (record then append) and by journal replay
    /// (re-derive then compare) — one transition function, two drivers.
    fn step(
        &mut self,
        cfg: &BreakerConfig,
        n_freqs: usize,
        slot: usize,
        outcome: &ItemOutcome,
    ) -> JournalRecord {
        let item = self.pending.remove(0);
        let seq = self.tick;
        self.tick += 1;
        self.rr_cursor = (slot + 1) % self.slots.len();
        match outcome {
            ItemOutcome::Success {
                time_s,
                energy_j,
                diag,
            } => {
                self.slots[slot].breaker = BreakerState::Closed {
                    consecutive_failures: 0,
                };
                self.done.push(DoneItem {
                    item,
                    slot,
                    time_s: *time_s,
                    energy_j: *energy_j,
                    diag: *diag,
                });
                JournalRecord::Done {
                    seq,
                    item,
                    slot,
                    time_s: *time_s,
                    energy_j: *energy_j,
                    diag: *diag,
                }
            }
            ItemOutcome::Failure { kind, error } => {
                self.failures[item.flat(n_freqs)] += 1;
                self.totals.items_rescheduled += 1;
                match kind {
                    FailureKind::Backend => self.totals.backend_failures += 1,
                    FailureKind::Watchdog => self.totals.watchdog_misses += 1,
                }
                self.pending.push(item);
                let st = &mut self.slots[slot];
                let opens = match st.breaker {
                    BreakerState::Closed {
                        consecutive_failures,
                    } => {
                        let k = consecutive_failures + 1;
                        if k >= cfg.failure_threshold {
                            true
                        } else {
                            st.breaker = BreakerState::Closed {
                                consecutive_failures: k,
                            };
                            false
                        }
                    }
                    // A failed probe re-opens immediately.
                    BreakerState::HalfOpen => true,
                    // Unreachable under the scheduler's own assignments;
                    // treat defensively as another trip.
                    BreakerState::Open { .. } | BreakerState::Evicted => true,
                };
                let mut tripped = false;
                let mut evicted = false;
                if opens {
                    st.trips += 1;
                    self.totals.breaker_trips += 1;
                    tripped = true;
                    if st.trips >= cfg.max_trips {
                        st.breaker = BreakerState::Evicted;
                        evicted = true;
                        self.totals.devices_evicted += 1;
                    } else {
                        st.breaker = BreakerState::Open {
                            since_tick: self.tick,
                        };
                    }
                }
                JournalRecord::Failed {
                    seq,
                    item,
                    slot,
                    kind: *kind,
                    error: error.clone(),
                    tripped,
                    evicted,
                }
            }
        }
    }
}

// ---- Errors ----

/// A campaign-level failure. Measurement-level trouble (throttles,
/// retries, even permanently failing devices) degrades gracefully inside
/// the run; this type is for conditions the supervisor cannot absorb.
#[derive(Debug)]
pub enum CampaignError {
    /// The journal or snapshot could not be read or written.
    Persist(PersistError),
    /// A campaign already lives in this directory and `resume` is false.
    JournalExists {
        /// The existing journal.
        path: PathBuf,
    },
    /// The on-disk campaign was produced by a different configuration.
    ConfigMismatch {
        /// Fingerprint of the running configuration.
        expected: String,
        /// Fingerprint found on disk.
        found: String,
    },
    /// The journal or snapshot is internally inconsistent.
    Corrupt {
        /// Offending file.
        path: PathBuf,
        /// What diverged.
        message: String,
    },
    /// Every device slot was evicted with work still pending. The journal
    /// is intact: fix the fleet and resume.
    AllDevicesLost {
        /// Items still pending.
        pending: usize,
        /// Items already completed (and journaled).
        completed: usize,
    },
    /// The configuration cannot describe a runnable campaign.
    InvalidConfig(String),
    /// The [`CampaignConfig::crash_after_appends`] chaos hook fired.
    InjectedCrash {
        /// Appends committed by this process before the simulated crash.
        appends: u64,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Persist(e) => write!(f, "campaign persistence: {e}"),
            CampaignError::JournalExists { path } => write!(
                f,
                "campaign journal {} already exists (resume it or remove it)",
                path.display()
            ),
            CampaignError::ConfigMismatch { expected, found } => write!(
                f,
                "campaign on disk was produced by a different configuration \
                 (fingerprint {found}, running {expected})"
            ),
            CampaignError::Corrupt { path, message } => {
                write!(f, "{}: {}", path.display(), message)
            }
            CampaignError::AllDevicesLost { pending, completed } => write!(
                f,
                "every device slot is evicted with {pending} item(s) pending \
                 ({completed} completed and journaled)"
            ),
            CampaignError::InvalidConfig(msg) => write!(f, "invalid campaign config: {msg}"),
            CampaignError::InjectedCrash { appends } => {
                write!(f, "injected crash after {appends} journal append(s)")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for CampaignError {
    fn from(e: PersistError) -> Self {
        CampaignError::Persist(e)
    }
}

// ---- Outcome ----

/// Fleet-level audit counters of one campaign run (including everything
/// replayed from the journal on resume).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignMetrics {
    /// Total item assignments (scheduler ticks consumed).
    pub assignments: u64,
    /// Items re-queued after a permanent failure.
    pub items_rescheduled: u64,
    /// Breaker trips across the fleet.
    pub breaker_trips: u64,
    /// Slots permanently evicted.
    pub devices_evicted: u64,
    /// Measurements discarded for missing the watchdog deadline.
    pub watchdog_misses: u64,
    /// Permanent backend failures observed.
    pub backend_failures: u64,
    /// Names of evicted slots.
    pub evicted_slots: Vec<String>,
    /// Merged degradation counters of every *accepted* measurement, with
    /// the campaign-level counters (`watchdog_misses`,
    /// `items_rescheduled`, `devices_evicted`) folded in.
    pub degradation: DegradationMetrics,
}

/// What a completed campaign produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// One `(characterization, diagnostics)` per workload, points in
    /// frequency-list order — the same shape
    /// [`crate::characterize_with_options`] returns.
    pub results: Vec<(Characterization, SweepDiagnostics)>,
    /// Fleet-level audit counters.
    pub metrics: CampaignMetrics,
}

// ---- The supervisor ----

/// Runs (or resumes) a campaign in `dir`, journaling every step.
///
/// With `resume = false` the directory must not already hold a campaign.
/// With `resume = true` any committed progress in `dir` is loaded —
/// snapshot first, then the journal tail — verified against the
/// configuration fingerprint, and only the remaining items are measured;
/// the result is bit-identical to an uninterrupted run. Resuming an
/// empty directory is a fresh run.
pub fn run_campaign(
    cfg: &CampaignConfig,
    workloads: &[&dyn Workload],
    dir: &Path,
    resume: bool,
) -> Result<CampaignOutcome, CampaignError> {
    if cfg.slots.is_empty() {
        return Err(CampaignError::InvalidConfig("no device slots".into()));
    }
    if cfg.freqs.is_empty() {
        return Err(CampaignError::InvalidConfig("no frequencies".into()));
    }
    if workloads.is_empty() {
        return Err(CampaignError::InvalidConfig("no workloads".into()));
    }
    if cfg.reps == 0 {
        return Err(CampaignError::InvalidConfig("reps must be ≥ 1".into()));
    }

    // Record each workload's trace once, up front: it feeds both the
    // config fingerprint (trace content is measurement identity) and the
    // replay of every work item.
    let traces: Vec<KernelTrace> = workloads.iter().map(|w| w.record(&cfg.spec)).collect();
    let fingerprint = cfg.fingerprint(workloads, &traces);
    let jpath = journal_path(dir);
    let spath = snapshot_path(dir);

    if !resume && (jpath.exists() || spath.exists()) {
        return Err(CampaignError::JournalExists { path: jpath });
    }

    // Committed state: snapshot, then the journal tail on top of it.
    let mut state = load_snapshot(&spath, &fingerprint)?
        .unwrap_or_else(|| CampaignState::new(cfg, workloads.len()));
    if state.failures.len() != cfg.n_items(workloads.len()) || state.slots.len() != cfg.slots.len()
    {
        return Err(CampaignError::Corrupt {
            path: spath,
            message: "snapshot shape does not match the configuration".into(),
        });
    }
    let contents = read_journal::<JournalRecord>(&jpath)?;
    if contents.torn_tail {
        heal_torn_tail(&jpath)?;
    }
    if let Some(first) = contents.records.first() {
        match first {
            JournalRecord::Header {
                version,
                fingerprint: found,
            } => {
                if *version != JOURNAL_VERSION {
                    return Err(CampaignError::Corrupt {
                        path: jpath,
                        message: format!(
                            "journal version {version} (this build reads {JOURNAL_VERSION})"
                        ),
                    });
                }
                if *found != fingerprint {
                    return Err(CampaignError::ConfigMismatch {
                        expected: fingerprint,
                        found: found.clone(),
                    });
                }
            }
            other => {
                return Err(CampaignError::Corrupt {
                    path: jpath,
                    message: format!("journal does not start with a header: {other:?}"),
                });
            }
        }
    }
    for rec in contents.records.iter().skip(1) {
        replay_record(&mut state, cfg, &jpath, rec)?;
    }

    let mut journal = Journal::open(&jpath)?;
    if contents.records.is_empty() {
        journal.append(&JournalRecord::Header {
            version: JOURNAL_VERSION,
            fingerprint: fingerprint.clone(),
        })?;
    }

    // Share one pricing memo table across the whole campaign, exactly
    // like the plain sweep.
    let prices = Arc::new(PriceTable::new());

    let tel = cfg.telemetry.as_deref();
    let _campaign_span = tel.map(|t| {
        t.span(
            SpanLevel::Sweep,
            "campaign",
            vec![
                ("device", cfg.spec.name.clone()),
                ("slots", cfg.slots.len().to_string()),
                ("workloads", workloads.len().to_string()),
                ("freqs", cfg.freqs.len().to_string()),
                ("pending", state.pending.len().to_string()),
            ],
        )
    });

    let mut appends_this_run = 0u64;
    while let Some(item) = state.pending.first().copied() {
        let Some(slot) = state.acquire_slot(&cfg.breaker) else {
            return Err(CampaignError::AllDevicesLost {
                pending: state.pending.len(),
                completed: state.done.len(),
            });
        };
        let prior_failures = state.failures[item.flat(cfg.freqs.len())];
        let item_span = tel.map(|t| {
            t.registry().counter("campaign.assignments").inc();
            t.span(
                SpanLevel::Point,
                "item",
                vec![
                    ("slot", cfg.slots[slot].name.clone()),
                    ("workload", item.workload.to_string()),
                    (
                        "point",
                        match item.point {
                            PointId::Baseline => "baseline".into(),
                            PointId::Freq(i) => format!("{}", cfg.freqs[i]),
                        },
                    ),
                ],
            )
        });
        let outcome = measure_item(
            cfg,
            &traces[item.workload],
            &prices,
            item,
            slot,
            prior_failures,
        );
        let totals_before = state.totals;
        let rec = state.step(&cfg.breaker, cfg.freqs.len(), slot, &outcome);
        if let Some(t) = tel {
            record_campaign_step(t, &outcome, totals_before, state.totals);
        }
        drop(item_span);
        journal.append(&rec)?;
        appends_this_run += 1;
        if cfg.crash_after_appends == Some(appends_this_run) {
            return Err(CampaignError::InjectedCrash {
                appends: appends_this_run,
            });
        }
        if cfg.snapshot_every > 0 && appends_this_run.is_multiple_of(cfg.snapshot_every) {
            journal = compact(journal, &spath, &jpath, &fingerprint, &state)?;
        }
    }
    if let Some(t) = tel {
        t.record_pricing(prices.stats(), prices.len());
    }

    assemble(cfg, workloads, &state)
}

/// Folds one live scheduler step into the registry: item counters, the
/// accepted measurement's degradation, and the deltas of the fleet-level
/// totals the step produced (trips, evictions, misses, re-schedules).
fn record_campaign_step(tel: &Telemetry, outcome: &ItemOutcome, before: Totals, after: Totals) {
    let r = tel.registry();
    match outcome {
        ItemOutcome::Success { diag, .. } => {
            r.counter("campaign.items_done").inc();
            tel.record_degradation(&diag.degradation);
        }
        ItemOutcome::Failure { .. } => {
            r.counter("campaign.items_failed").inc();
        }
    }
    for (name, b, a) in [
        (
            "campaign.backend_failures",
            before.backend_failures,
            after.backend_failures,
        ),
        (
            "campaign.watchdog_misses",
            before.watchdog_misses,
            after.watchdog_misses,
        ),
        (
            "campaign.items_rescheduled",
            before.items_rescheduled,
            after.items_rescheduled,
        ),
        (
            "campaign.breaker.trips",
            before.breaker_trips,
            after.breaker_trips,
        ),
        (
            "campaign.devices_evicted",
            before.devices_evicted,
            after.devices_evicted,
        ),
    ] {
        if a > b {
            r.counter(name).add(a - b);
        }
    }
}

/// Measures one item on one slot: a fresh device + queue per attempt,
/// seeded exactly like the plain sweep (slot 0, zero prior failures is
/// the identity), replayed through `try_replay_on`. A permanent backend
/// error or a watchdog deadline miss becomes a [`FailureKind`] for the
/// breaker; anything milder follows the usual dirty-point re-measure
/// path and is *accepted* (possibly flagged) — quarantine deals with
/// flagged points later, not the breaker.
fn measure_item(
    cfg: &CampaignConfig,
    trace: &KernelTrace,
    prices: &Arc<PriceTable>,
    item: ItemId,
    slot: usize,
    prior_failures: u32,
) -> ItemOutcome {
    enum RunError {
        Backend(SubmitError),
        Watchdog { deadline_s: f64, busy_s: f64 },
    }

    let health = &cfg.slots[slot].health;
    let sweep = SweepOptions {
        reps: cfg.reps,
        noise_seed: cfg.noise_seed,
        faults: health
            .clone()
            .with_seed(slot_stream_base(health.seed(), slot, prior_failures)),
        retry: cfg.retry,
        remeasure_limit: cfg.remeasure_limit,
        // The campaign loop owns all emission; the inner measurement
        // helpers stay sink-free so their seeding and control flow are
        // byte-for-byte the plain sweep's.
        telemetry: None,
    };
    let seed_off = item.seed_off();
    let result = try_measure_attempts(
        &sweep,
        |attempt| {
            let mut q = replay_queue(&cfg.spec, &sweep, prices, seed_off, attempt);
            if let PointId::Freq(i) = item.point {
                q.set_policy(synergy::FrequencyPolicy::Fixed(cfg.freqs[i]));
            }
            q.set_watchdog_deadline(cfg.watchdog_deadline_s);
            q
        },
        |q| {
            trace.try_replay_on(q).map_err(RunError::Backend)?;
            if q.watchdog_tripped() {
                return Err(RunError::Watchdog {
                    deadline_s: q.watchdog_deadline_s().unwrap_or(f64::INFINITY),
                    busy_s: q.total_time_s(),
                });
            }
            Ok(())
        },
    );
    match result {
        Ok((m, mut diag)) => {
            diag.freq_mhz = match item.point {
                PointId::Baseline => None,
                PointId::Freq(i) => Some(cfg.freqs[i]),
            };
            ItemOutcome::Success {
                time_s: m.time_s,
                energy_j: m.energy_j,
                diag,
            }
        }
        Err(RunError::Backend(e)) => ItemOutcome::Failure {
            kind: FailureKind::Backend,
            error: e.to_string(),
        },
        Err(RunError::Watchdog { deadline_s, busy_s }) => ItemOutcome::Failure {
            kind: FailureKind::Watchdog,
            error: format!(
                "watchdog: measurement busy time {busy_s:.6} s exceeded the \
                 {deadline_s:.6} s deadline"
            ),
        },
    }
}

/// Replays one committed journal record onto the state. Records whose
/// `seq` precedes the state's tick are already folded into the snapshot
/// (the crash window between snapshot rename and journal swap leaves
/// them behind) and are skipped; everything else must re-derive exactly.
fn replay_record(
    state: &mut CampaignState,
    cfg: &CampaignConfig,
    jpath: &Path,
    rec: &JournalRecord,
) -> Result<(), CampaignError> {
    let (seq, slot, outcome) = match rec {
        JournalRecord::Header { .. } => {
            return Err(CampaignError::Corrupt {
                path: jpath.to_path_buf(),
                message: "duplicate header mid-journal".into(),
            })
        }
        JournalRecord::Done {
            seq,
            slot,
            time_s,
            energy_j,
            diag,
            ..
        } => (
            *seq,
            *slot,
            ItemOutcome::Success {
                time_s: *time_s,
                energy_j: *energy_j,
                diag: *diag,
            },
        ),
        JournalRecord::Failed {
            seq,
            slot,
            kind,
            error,
            ..
        } => (
            *seq,
            *slot,
            ItemOutcome::Failure {
                kind: *kind,
                error: error.clone(),
            },
        ),
    };
    if seq < state.tick {
        return Ok(()); // already in the snapshot
    }
    let acquired = state.acquire_slot(&cfg.breaker);
    if acquired != Some(slot) {
        return Err(CampaignError::Corrupt {
            path: jpath.to_path_buf(),
            message: format!(
                "replay diverged at seq {seq}: journal assigned slot {slot}, \
                 state derives {acquired:?}"
            ),
        });
    }
    let rebuilt = state.step(&cfg.breaker, cfg.freqs.len(), slot, &outcome);
    if rebuilt != *rec {
        return Err(CampaignError::Corrupt {
            path: jpath.to_path_buf(),
            message: format!("replay diverged at seq {seq}: {rec:?} != {rebuilt:?}"),
        });
    }
    Ok(())
}

fn load_snapshot(spath: &Path, fingerprint: &str) -> Result<Option<CampaignState>, CampaignError> {
    let text = match fs::read_to_string(spath) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => {
            return Err(CampaignError::Persist(PersistError::Io {
                path: spath.to_path_buf(),
                source: e,
            }))
        }
    };
    let snap: Snapshot = serde_json::from_str(&text).map_err(|e| CampaignError::Corrupt {
        path: spath.to_path_buf(),
        message: e.to_string(),
    })?;
    if snap.version != JOURNAL_VERSION {
        return Err(CampaignError::Corrupt {
            path: spath.to_path_buf(),
            message: format!(
                "snapshot version {} (this build reads {JOURNAL_VERSION})",
                snap.version
            ),
        });
    }
    if snap.fingerprint != fingerprint {
        return Err(CampaignError::ConfigMismatch {
            expected: fingerprint.to_string(),
            found: snap.fingerprint,
        });
    }
    Ok(Some(snap.state))
}

/// Truncates an uncommitted torn trailing line in place, so appends keep
/// starting on a fresh line. Committed records are untouched: this only
/// moves the file end back to the last committed newline.
fn heal_torn_tail(jpath: &Path) -> Result<(), CampaignError> {
    let io = |e| {
        CampaignError::Persist(PersistError::Io {
            path: jpath.to_path_buf(),
            source: e,
        })
    };
    let bytes = fs::read(jpath).map_err(io)?;
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1) as u64;
    let f = fs::OpenOptions::new().write(true).open(jpath).map_err(io)?;
    f.set_len(keep).map_err(io)?;
    f.sync_all().map_err(io)?;
    Ok(())
}

/// Compacts the journal: atomically write the snapshot, then atomically
/// swap in a fresh header-only journal. A crash between the two renames
/// leaves the old journal behind a newer snapshot; replay skips the
/// already-folded records by `seq`, so the overlap is harmless. Takes
/// the old journal handle by value and drops it before the swap —
/// renaming over a path with an open handle fails on Windows — and
/// returns the journal reopened on the fresh file.
fn compact(
    old: Journal,
    spath: &Path,
    jpath: &Path,
    fingerprint: &str,
    state: &CampaignState,
) -> Result<Journal, CampaignError> {
    drop(old);
    let corrupt = |e: serde_json::Error| CampaignError::Corrupt {
        path: spath.to_path_buf(),
        message: format!("unserializable snapshot: {e}"),
    };
    let snap = Snapshot {
        version: JOURNAL_VERSION,
        fingerprint: fingerprint.to_string(),
        state: state.clone(),
    };
    let json = serde_json::to_string_pretty(&snap).map_err(corrupt)?;
    atomic_write_str(spath, &json)?;
    let header = JournalRecord::Header {
        version: JOURNAL_VERSION,
        fingerprint: fingerprint.to_string(),
    };
    let mut line = serde_json::to_string(&header).map_err(corrupt)?;
    line.push('\n');
    atomic_write_str(jpath, &line)?;
    Ok(Journal::open(jpath)?)
}

/// Folds the completed item set back into per-workload sweep results —
/// the same `(Characterization, SweepDiagnostics)` shape the plain sweep
/// returns — plus the fleet-level metrics.
fn assemble(
    cfg: &CampaignConfig,
    workloads: &[&dyn Workload],
    state: &CampaignState,
) -> Result<CampaignOutcome, CampaignError> {
    let n_freqs = cfg.freqs.len();
    let mut by_flat: Vec<Option<&DoneItem>> = vec![None; cfg.n_items(workloads.len())];
    for d in &state.done {
        by_flat[d.item.flat(n_freqs)] = Some(d);
    }
    let missing = |item: ItemId| CampaignError::Corrupt {
        path: PathBuf::new(),
        message: format!("completed campaign is missing item {item:?}"),
    };

    let mut results = Vec::with_capacity(workloads.len());
    let mut degradation = DegradationMetrics::default();
    for (w, workload) in workloads.iter().enumerate() {
        let base_id = ItemId {
            workload: w,
            point: PointId::Baseline,
        };
        let base = by_flat[base_id.flat(n_freqs)].ok_or_else(|| missing(base_id))?;
        let baseline = Measurement {
            time_s: base.time_s,
            energy_j: base.energy_j,
        };
        degradation.merge(&base.diag.degradation);
        let mut points = Vec::with_capacity(n_freqs);
        let mut diags = Vec::with_capacity(n_freqs);
        for (i, &f) in cfg.freqs.iter().enumerate() {
            let id = ItemId {
                workload: w,
                point: PointId::Freq(i),
            };
            let d = by_flat[id.flat(n_freqs)].ok_or_else(|| missing(id))?;
            points.push(char_point(
                f,
                Measurement {
                    time_s: d.time_s,
                    energy_j: d.energy_j,
                },
                baseline,
            ));
            diags.push(d.diag);
            degradation.merge(&d.diag.degradation);
        }
        results.push((
            Characterization {
                device: cfg.spec.name.clone(),
                workload: workload.name(),
                baseline_time_s: baseline.time_s,
                baseline_energy_j: baseline.energy_j,
                points,
            },
            SweepDiagnostics {
                baseline: base.diag,
                points: diags,
            },
        ));
    }

    degradation.watchdog_misses += state.totals.watchdog_misses;
    degradation.items_rescheduled += state.totals.items_rescheduled;
    degradation.devices_evicted += state.totals.devices_evicted;
    let evicted_slots = state
        .slots
        .iter()
        .zip(&cfg.slots)
        .filter(|(st, _)| st.breaker == BreakerState::Evicted)
        .map(|(_, s)| s.name.clone())
        .collect();
    Ok(CampaignOutcome {
        results,
        metrics: CampaignMetrics {
            assignments: state.tick,
            items_rescheduled: state.totals.items_rescheduled,
            breaker_trips: state.totals.breaker_trips,
            devices_evicted: state.totals.devices_evicted,
            watchdog_misses: state.totals.watchdog_misses,
            backend_failures: state.totals.backend_failures,
            evicted_slots,
            degradation,
        },
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn breaker() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            cooldown_ticks: 3,
            max_trips: 2,
        }
    }

    fn two_slot_state() -> CampaignState {
        let cfg = CampaignConfig::new(
            DeviceSpec::v100(),
            vec![DeviceSlot::healthy("a"), DeviceSlot::healthy("b")],
            vec![900.0; 8],
        );
        CampaignState::new(&cfg, 1)
    }

    fn succeed(state: &mut CampaignState, cfg: &BreakerConfig, slot: usize) -> JournalRecord {
        state.step(
            cfg,
            8,
            slot,
            &ItemOutcome::Success {
                time_s: 1.0,
                energy_j: 2.0,
                diag: PointDiagnostics {
                    freq_mhz: None,
                    remeasured: 0,
                    flagged: false,
                    degradation: DegradationMetrics::default(),
                },
            },
        )
    }

    fn fail(state: &mut CampaignState, cfg: &BreakerConfig, slot: usize) -> JournalRecord {
        state.step(
            cfg,
            8,
            slot,
            &ItemOutcome::Failure {
                kind: FailureKind::Backend,
                error: "boom".into(),
            },
        )
    }

    #[test]
    fn breaker_opens_after_threshold_and_evicts_after_max_trips() {
        let cfg = breaker();
        let mut state = two_slot_state();
        // Two failures on slot 0: the second opens the breaker.
        let r1 = fail(&mut state, &cfg, 0);
        assert!(matches!(r1, JournalRecord::Failed { tripped: false, .. }));
        let r2 = fail(&mut state, &cfg, 0);
        assert!(matches!(
            r2,
            JournalRecord::Failed {
                tripped: true,
                evicted: false,
                ..
            }
        ));
        assert!(matches!(state.slots[0].breaker, BreakerState::Open { .. }));
        // Cool down: the healthy slot absorbs the work meanwhile.
        for _ in 0..cfg.cooldown_ticks {
            let s = state.acquire_slot(&cfg).unwrap();
            assert_eq!(s, 1, "only the healthy slot is schedulable");
            succeed(&mut state, &cfg, s);
        }
        let s = state.acquire_slot(&cfg).unwrap();
        assert_eq!(s, 0, "cooled-down slot gets its half-open probe");
        assert_eq!(state.slots[0].breaker, BreakerState::HalfOpen);
        let r = fail(&mut state, &cfg, 0);
        assert!(matches!(
            r,
            JournalRecord::Failed {
                tripped: true,
                evicted: true,
                ..
            }
        ));
        assert_eq!(state.slots[0].breaker, BreakerState::Evicted);
        assert_eq!(state.totals.devices_evicted, 1);
    }

    #[test]
    fn success_closes_a_half_open_breaker() {
        let cfg = breaker();
        let mut state = two_slot_state();
        fail(&mut state, &cfg, 0);
        fail(&mut state, &cfg, 0); // opens
        state.slots[1].breaker = BreakerState::Evicted; // force probes onto 0
        let s = state.acquire_slot(&cfg).unwrap();
        assert_eq!(s, 0, "fast-forward must reach the cooled-down slot");
        succeed(&mut state, &cfg, s);
        assert_eq!(
            state.slots[0].breaker,
            BreakerState::Closed {
                consecutive_failures: 0
            }
        );
        assert_eq!(state.slots[0].trips, 1, "the earlier trip stays recorded");
    }

    #[test]
    fn all_evicted_fleet_yields_no_slot() {
        let cfg = breaker();
        let mut state = two_slot_state();
        state.slots[0].breaker = BreakerState::Evicted;
        state.slots[1].breaker = BreakerState::Evicted;
        assert_eq!(state.acquire_slot(&cfg), None);
    }

    #[test]
    fn failed_items_requeue_at_the_back() {
        let cfg = breaker();
        let mut state = two_slot_state();
        let first = state.pending[0];
        fail(&mut state, &cfg, 0);
        assert_eq!(*state.pending.last().unwrap(), first);
        assert_eq!(state.failures[first.flat(8)], 1);
        assert_eq!(state.totals.items_rescheduled, 1);
    }

    #[test]
    fn slot_stream_base_is_identity_at_origin() {
        assert_eq!(slot_stream_base(42, 0, 0), 42);
        assert_ne!(slot_stream_base(42, 1, 0), 42);
        assert_ne!(slot_stream_base(42, 0, 1), 42);
    }

    #[test]
    fn journal_records_round_trip_through_json() {
        let recs = vec![
            JournalRecord::Header {
                version: JOURNAL_VERSION,
                fingerprint: "00ff00ff00ff00ff".into(),
            },
            JournalRecord::Done {
                seq: 3,
                item: ItemId {
                    workload: 1,
                    point: PointId::Freq(2),
                },
                slot: 0,
                time_s: 0.1 + 0.2,
                energy_j: 123.456789,
                diag: PointDiagnostics {
                    freq_mhz: Some(900.0),
                    remeasured: 1,
                    flagged: true,
                    degradation: DegradationMetrics {
                        retries: 2,
                        ..DegradationMetrics::default()
                    },
                },
            },
            JournalRecord::Failed {
                seq: 4,
                item: ItemId {
                    workload: 0,
                    point: PointId::Baseline,
                },
                slot: 1,
                kind: FailureKind::Watchdog,
                error: "watchdog: too slow".into(),
                tripped: true,
                evicted: false,
            },
        ];
        for r in &recs {
            let json = serde_json::to_string(r).unwrap();
            let back: JournalRecord = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, r);
        }
    }
}
