//! The docking loop — Algorithm 2 of the paper.
//!
//! `dock` estimates the best 3D displacement of a ligand inside the target:
//! `num_restart` independent starting orientations, each aligned into the
//! pocket, then `num_iterations` sweeps of per-fragment rotation search,
//! then evaluation; the best `max_num_poses` poses are kept and re-scored,
//! and the best score is the ligand's result.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::molecule::Ligand;
use crate::pose::Pose;
use crate::protein::Pocket;
use crate::score::compute_score;
use crate::{vec3, Vec3};

/// Docking loop parameters (the `Data:` line of Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DockParams {
    /// Independent restarts (`num_restart`).
    pub num_restart: usize,
    /// Optimization sweeps per restart (`num_iterations`).
    pub num_iterations: usize,
    /// Poses kept for the scoring phase (`max_num_poses`).
    pub max_num_poses: usize,
}

impl Default for DockParams {
    fn default() -> Self {
        DockParams {
            num_restart: 8,
            num_iterations: 4,
            max_num_poses: 4,
        }
    }
}

/// Candidate fragment-rotation angles tried by one `optimize` call:
/// ±30°, ±15°, ±5°.
const TRIAL_ANGLES: [f64; 6] = [
    -std::f64::consts::FRAC_PI_6,
    -std::f64::consts::FRAC_PI_6 * 0.5,
    -std::f64::consts::FRAC_PI_6 / 6.0,
    std::f64::consts::FRAC_PI_6 / 6.0,
    std::f64::consts::FRAC_PI_6 * 0.5,
    std::f64::consts::FRAC_PI_6,
];

/// `initialize_pose(ligand, i)`: the reference conformation under a
/// restart-indexed random rigid orientation.
pub fn initialize_pose(ligand: &Ligand, restart: usize) -> Pose {
    let mut pose = Pose::from_ligand(ligand);
    let mut rng = ChaCha8Rng::seed_from_u64(ligand.id ^ ((restart as u64) << 32));
    let axis: Vec3 = vec3::normalize([
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0),
        rng.gen_range(-1.0..1.0f64) + 1e-3,
    ]);
    let angle = rng.gen_range(0.0..std::f64::consts::TAU);
    pose.rotate_rigid(axis, angle);
    pose
}

/// `align(pose, target)`: translate the pose centroid onto the pocket
/// centre (the constant-protein precomputation LiGen exploits).
pub fn align(pose: &mut Pose, pocket: &Pocket) {
    let delta = vec3::sub(pocket.center(), pose.centroid());
    pose.translate(delta);
}

/// `optimize(pose, fragment, target)`: greedy search over trial rotation
/// angles of one rotamer; keeps the best-scoring rotation (or leaves the
/// pose unchanged if nothing improves).
pub fn optimize_fragment(ligand: &Ligand, pose: &mut Pose, rotamer: usize, pocket: &Pocket) {
    let base_score = compute_score(ligand, pose, pocket);
    let mut best_angle = 0.0;
    let mut best_score = base_score;
    for &angle in &TRIAL_ANGLES {
        let mut trial = pose.clone();
        trial.rotate_fragment(ligand, rotamer, angle);
        let s = compute_score(ligand, &trial, pocket);
        if s < best_score {
            best_score = s;
            best_angle = angle;
        }
    }
    if best_angle != 0.0 {
        pose.rotate_fragment(ligand, rotamer, best_angle);
    }
    pose.score = Some(best_score);
}

/// The full Algorithm 2 for one ligand. Returns the ligand's score (lower
/// = stronger predicted interaction) and the scored pose set, best first.
pub fn dock(ligand: &Ligand, pocket: &Pocket, params: &DockParams) -> (f64, Vec<Pose>) {
    assert!(params.num_restart > 0, "need at least one restart");
    assert!(params.max_num_poses > 0, "need at least one pose");
    let mut poses: Vec<Pose> = Vec::with_capacity(params.num_restart);

    for restart in 0..params.num_restart {
        let mut pose = initialize_pose(ligand, restart);
        align(&mut pose, pocket);
        for _iter in 0..params.num_iterations {
            for r in 0..ligand.rotamers.len() {
                optimize_fragment(ligand, &mut pose, r, pocket);
            }
        }
        // evaluate(pose, target)
        pose.score = Some(compute_score(ligand, &pose, pocket));
        poses.push(pose);
    }

    // poses ← clip(sort(poses), max_num_poses)
    poses.sort_by(|a, b| {
        a.score
            .expect("evaluated")
            .total_cmp(&b.score.expect("evaluated"))
    });
    poses.truncate(params.max_num_poses);

    // Scoring phase: re-score the clipped set; return the best.
    let mut best = f64::INFINITY;
    for pose in &mut poses {
        let s = compute_score(ligand, pose, pocket);
        pose.score = Some(s);
        best = best.min(s);
    }
    (best, poses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::generate_ligand;
    use crate::protein::Pocket;

    fn setup() -> (Ligand, Pocket) {
        (
            generate_ligand(3, 16, 4, 21),
            Pocket::synthesize(20, 20.0, 5, 13),
        )
    }

    #[test]
    fn initialize_is_deterministic_per_restart() {
        let (ligand, _) = setup();
        let a = initialize_pose(&ligand, 2);
        let b = initialize_pose(&ligand, 2);
        assert_eq!(a.coords, b.coords);
        let c = initialize_pose(&ligand, 3);
        assert_ne!(a.coords, c.coords, "restarts must differ");
    }

    #[test]
    fn align_centres_pose() {
        let (ligand, pocket) = setup();
        let mut pose = initialize_pose(&ligand, 0);
        align(&mut pose, &pocket);
        let c = pose.centroid();
        for (a, b) in c.iter().zip(&pocket.center()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn optimize_never_worsens_score() {
        let (ligand, pocket) = setup();
        let mut pose = initialize_pose(&ligand, 0);
        align(&mut pose, &pocket);
        let before = compute_score(&ligand, &pose, &pocket);
        optimize_fragment(&ligand, &mut pose, 0, &pocket);
        let after = compute_score(&ligand, &pose, &pocket);
        assert!(after <= before + 1e-12);
    }

    #[test]
    fn docking_improves_over_unoptimized_placement() {
        let (ligand, pocket) = setup();
        let mut raw = initialize_pose(&ligand, 0);
        align(&mut raw, &pocket);
        let raw_score = compute_score(&ligand, &raw, &pocket);
        let (docked_score, _) = dock(&ligand, &pocket, &DockParams::default());
        assert!(
            docked_score <= raw_score,
            "docking must not be worse than the raw aligned pose"
        );
    }

    #[test]
    fn returns_sorted_clipped_poses() {
        let (ligand, pocket) = setup();
        let params = DockParams {
            num_restart: 6,
            num_iterations: 2,
            max_num_poses: 3,
        };
        let (best, poses) = dock(&ligand, &pocket, &params);
        assert_eq!(poses.len(), 3);
        for w in poses.windows(2) {
            assert!(w[0].score.unwrap() <= w[1].score.unwrap());
        }
        assert!((best - poses[0].score.unwrap()).abs() < 1e-12);
    }

    #[test]
    fn docking_is_deterministic() {
        let (ligand, pocket) = setup();
        let (a, _) = dock(&ligand, &pocket, &DockParams::default());
        let (b, _) = dock(&ligand, &pocket, &DockParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn more_restarts_cannot_hurt() {
        let (ligand, pocket) = setup();
        let few = DockParams {
            num_restart: 2,
            ..Default::default()
        };
        let many = DockParams {
            num_restart: 10,
            ..Default::default()
        };
        let (s_few, _) = dock(&ligand, &pocket, &few);
        let (s_many, _) = dock(&ligand, &pocket, &many);
        // Restart set of `few` is a prefix of `many`'s, so the best over
        // more restarts can only improve.
        assert!(s_many <= s_few + 1e-12);
    }
}
