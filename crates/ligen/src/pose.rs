//! Ligand poses: world-frame coordinates under rigid and rotameric moves.
//!
//! A [`Pose`] owns a copy of the ligand's atom coordinates and mutates them
//! through whole-body translations/rotations (pose initialization and
//! alignment) and per-fragment rotations about rotamer axes (the
//! `optimize` move of Algorithm 2).

use crate::molecule::Ligand;
use crate::{vec3, Vec3};

/// A ligand conformation placed in the target frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Pose {
    /// World-frame atom positions, parallel to `ligand.atoms`.
    pub coords: Vec<Vec3>,
    /// Score assigned by `evaluate`/`compute_score` (lower = better);
    /// `None` until evaluated.
    pub score: Option<f64>,
}

impl Pose {
    /// A pose at the ligand's reference coordinates.
    pub fn from_ligand(ligand: &Ligand) -> Self {
        Pose {
            coords: ligand.atoms.iter().map(|a| a.pos).collect(),
            score: None,
        }
    }

    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.coords.len()
    }

    /// Centroid of the current coordinates.
    pub fn centroid(&self) -> Vec3 {
        let n = self.coords.len() as f64;
        let mut c = [0.0; 3];
        for p in &self.coords {
            c = vec3::add(c, *p);
        }
        vec3::scale(c, 1.0 / n)
    }

    /// Translates every atom by `delta`.
    pub fn translate(&mut self, delta: Vec3) {
        for p in &mut self.coords {
            *p = vec3::add(*p, delta);
        }
        self.score = None;
    }

    /// Rotates the whole pose about its centroid: axis (unit) + angle.
    pub fn rotate_rigid(&mut self, axis: Vec3, angle: f64) {
        let c = self.centroid();
        for p in &mut self.coords {
            let rel = vec3::sub(*p, c);
            *p = vec3::add(c, vec3::rotate_about(rel, axis, angle));
        }
        self.score = None;
    }

    /// Rotates rotamer `r` of `ligand` by `angle` radians: the moving atom
    /// set turns rigidly about the pivot→partner axis.
    ///
    /// # Panics
    /// Panics if `r` is out of range or the axis is degenerate.
    pub fn rotate_fragment(&mut self, ligand: &Ligand, r: usize, angle: f64) {
        let rot = &ligand.rotamers[r];
        let origin = self.coords[rot.pivot];
        let axis = vec3::normalize(vec3::sub(self.coords[rot.partner], origin));
        for &i in &rot.moving {
            let rel = vec3::sub(self.coords[i], origin);
            self.coords[i] = vec3::add(origin, vec3::rotate_about(rel, axis, angle));
        }
        self.score = None;
    }

    /// Largest inter-atomic distance (a conformation diagnostic).
    pub fn diameter(&self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.coords.len() {
            for j in (i + 1)..self.coords.len() {
                best = best.max(vec3::norm(vec3::sub(self.coords[i], self.coords[j])));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::generate_ligand;

    fn ligand() -> Ligand {
        generate_ligand(0, 12, 3, 99)
    }

    #[test]
    fn translation_moves_centroid() {
        let l = ligand();
        let mut p = Pose::from_ligand(&l);
        let c0 = p.centroid();
        p.translate([1.0, -2.0, 0.5]);
        let c1 = p.centroid();
        assert!((c1[0] - c0[0] - 1.0).abs() < 1e-12);
        assert!((c1[1] - c0[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn rigid_rotation_preserves_all_distances() {
        let l = ligand();
        let mut p = Pose::from_ligand(&l);
        let d0 = p.diameter();
        p.rotate_rigid(vec3::normalize([1.0, 2.0, 3.0]), 0.8);
        assert!((p.diameter() - d0).abs() < 1e-9);
    }

    #[test]
    fn rigid_rotation_fixes_centroid() {
        let l = ligand();
        let mut p = Pose::from_ligand(&l);
        let c0 = p.centroid();
        p.rotate_rigid([0.0, 0.0, 1.0], 1.0);
        let c1 = p.centroid();
        for (a, b) in c0.iter().zip(&c1) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn fragment_rotation_preserves_bond_lengths() {
        let l = ligand();
        let mut p = Pose::from_ligand(&l);
        p.rotate_fragment(&l, 1, 0.9);
        for b in &l.bonds {
            let d = vec3::norm(vec3::sub(p.coords[b.a], p.coords[b.b]));
            assert!((d - 1.5).abs() < 1e-9, "bond {}–{} length {d}", b.a, b.b);
        }
    }

    #[test]
    fn fragment_rotation_moves_only_moving_set() {
        let l = ligand();
        let mut p = Pose::from_ligand(&l);
        let before = p.coords.clone();
        p.rotate_fragment(&l, 0, 1.2);
        let moving = &l.rotamers[0].moving;
        for (i, (a, b)) in before.iter().zip(&p.coords).enumerate() {
            let dist = vec3::norm(vec3::sub(*a, *b));
            if moving.contains(&i) && i != l.rotamers[0].partner {
                // Downstream atoms (beyond the axis partner) generally move.
                continue;
            }
            if !moving.contains(&i) {
                assert!(dist < 1e-12, "fixed atom {i} moved by {dist}");
            }
        }
    }

    #[test]
    fn fragment_rotation_round_trip() {
        let l = ligand();
        let mut p = Pose::from_ligand(&l);
        let before = p.coords.clone();
        p.rotate_fragment(&l, 1, 0.7);
        p.rotate_fragment(&l, 1, -0.7);
        for (a, b) in before.iter().zip(&p.coords) {
            assert!(vec3::norm(vec3::sub(*a, *b)) < 1e-9);
        }
    }

    #[test]
    fn mutation_clears_score() {
        let l = ligand();
        let mut p = Pose::from_ligand(&l);
        p.score = Some(-3.0);
        p.translate([0.1, 0.0, 0.0]);
        assert_eq!(p.score, None);
    }
}
