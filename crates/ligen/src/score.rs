//! Pose scoring.
//!
//! Lower is better. Two terms:
//!
//! * **field term** — each atom samples the pocket potential weighted by
//!   its element affinity (the grid-map scoring LiGen-class engines use);
//! * **clash term** — a soft-sphere intra-molecular penalty for non-bonded
//!   atom pairs closer than the sum of their van-der-Waals radii, which
//!   stops fragment rotations from folding the ligand through itself.

use crate::molecule::Ligand;
use crate::pose::Pose;
use crate::protein::Pocket;
use crate::vec3;

/// Weight of the intra-molecular clash penalty relative to the field term.
const CLASH_WEIGHT: f64 = 4.0;

/// Fraction of the vdW-sum below which two atoms are "in clash".
const CLASH_TOLERANCE: f64 = 0.8;

/// The pocket-field interaction term (lower = better bound).
pub fn field_score(ligand: &Ligand, pose: &Pose, pocket: &Pocket) -> f64 {
    ligand
        .atoms
        .iter()
        .zip(&pose.coords)
        .map(|(atom, p)| atom.element.field_weight() * pocket.sample(*p))
        .sum()
}

/// Soft-sphere intra-molecular clash penalty (≥ 0). Bonded pairs and
/// next-nearest chain neighbours are exempt (their proximity is covalent).
pub fn clash_score(ligand: &Ligand, pose: &Pose) -> f64 {
    let n = pose.coords.len();
    let mut bonded = vec![false; n * n];
    for b in &ligand.bonds {
        bonded[b.a * n + b.b] = true;
        bonded[b.b * n + b.a] = true;
    }
    let mut penalty = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            if bonded[i * n + j] {
                continue;
            }
            // Exempt 1–3 neighbours along the chain (indices differ by 2 in
            // our chain topology).
            if j - i <= 2 {
                continue;
            }
            let d = vec3::norm(vec3::sub(pose.coords[i], pose.coords[j]));
            let limit = CLASH_TOLERANCE
                * (ligand.atoms[i].element.vdw_radius() + ligand.atoms[j].element.vdw_radius());
            if d < limit {
                let overlap = (limit - d) / limit;
                penalty += overlap * overlap;
            }
        }
    }
    penalty
}

/// The full score: field term + weighted clash term. This is both the
/// `evaluate` of the docking loop and the `compute_score` of the scoring
/// phase (LiGen uses a cheaper evaluator during optimization; we keep one
/// evaluator and document the simplification in DESIGN.md).
pub fn compute_score(ligand: &Ligand, pose: &Pose, pocket: &Pocket) -> f64 {
    field_score(ligand, pose, pocket) + CLASH_WEIGHT * clash_score(ligand, pose)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::generate_ligand;
    use crate::pose::Pose;
    use crate::protein::Pocket;

    fn setup() -> (Ligand, Pose, Pocket) {
        let ligand = generate_ligand(0, 16, 3, 5);
        let pose = Pose::from_ligand(&ligand);
        let pocket = Pocket::synthesize(20, 20.0, 4, 7);
        (ligand, pose, pocket)
    }

    #[test]
    fn extended_chain_has_no_clash() {
        let (ligand, pose, _) = setup();
        // The generator's self-avoiding walk may graze occasionally but the
        // penalty must be tiny for an extended conformation.
        assert!(clash_score(&ligand, &pose) < 1.0);
    }

    #[test]
    fn folded_pose_pays_clash_penalty() {
        let (ligand, mut pose, _) = setup();
        // Collapse every atom toward the centroid — massive overlap.
        let c = pose.centroid();
        for p in &mut pose.coords {
            *p = crate::vec3::add(c, crate::vec3::scale(crate::vec3::sub(*p, c), 0.05));
        }
        assert!(clash_score(&ligand, &pose) > 1.0);
    }

    #[test]
    fn pose_in_pocket_scores_better_than_outside() {
        let (ligand, mut pose, pocket) = setup();
        let c = pose.centroid();
        // Place at the pocket centre…
        pose.translate(crate::vec3::sub(pocket.center(), c));
        let inside = compute_score(&ligand, &pose, &pocket);
        // …then 30 Å outside the box.
        pose.translate([3.0 * pocket.size, 0.0, 0.0]);
        let outside = compute_score(&ligand, &pose, &pocket);
        assert!(inside < outside);
    }

    #[test]
    fn heavier_field_weights_amplify_attraction() {
        let (ligand, mut pose, pocket) = setup();
        pose.translate(crate::vec3::sub(pocket.center(), pose.centroid()));
        let f = field_score(&ligand, &pose, &pocket);
        // The field term at the pocket centre must be attractive overall.
        assert!(f < 0.0, "field score at centre should be negative, got {f}");
    }

    #[test]
    fn score_is_deterministic() {
        let (ligand, pose, pocket) = setup();
        assert_eq!(
            compute_score(&ligand, &pose, &pocket),
            compute_score(&ligand, &pose, &pocket)
        );
    }
}
