//! # ligen — a molecular docking and virtual-screening engine
//!
//! Stand-in for the LiGen docking engine of the EXSCALATE drug-discovery
//! platform, the second case study of the paper. The pipeline implements
//! Algorithm 2 of the paper literally:
//!
//! ```text
//! for i ← 0 to num_restart:
//!     pose ← initialize_pose(ligand, i)
//!     pose ← align(pose, target)
//!     for n ← 0 to num_iterations:
//!         for fragment ← pose.fragments:
//!             pose ← optimize(pose, fragment, target)
//!     pose ← evaluate(pose, target)
//!     poses ← poses ∪ pose
//! poses ← clip(sort(poses), max_num_poses)
//! for pose ← poses: scores ← scores ∪ compute_score(pose, target)
//! return max(scores)
//! ```
//!
//! The chemistry model is synthetic but structurally faithful: ligands are
//! bonded atom trees whose rotatable bonds (rotamers) partition the atoms
//! into **fragments** that rotate rigidly about the bond axis — the exact
//! complexity drivers the paper identifies (#ligands, #atoms, #fragments).
//! The protein target is a potential field sampled on a grid; docking is
//! gradient-free fragment-rotation search; scoring sums per-atom field
//! values with an intra-molecular clash penalty.
//!
//! Module map: [`molecule`] (atoms/bonds/rotamers), [`library`] (synthetic
//! chemical library generator), [`protein`] (pocket field), [`pose`]
//! (rigid/rotameric transforms), [`mod@dock`] (Algorithm 2), [`score`],
//! [`screen`] (batch virtual screening, rayon-parallel), and
//! [`kernelize`]/[`screen::GpuLigen`] (GPU kernel profiles and the
//! SYnergy-queue driver for the energy experiments).

pub mod dock;
pub mod io;
pub mod kernelize;
pub mod library;
pub mod molecule;
pub mod pose;
pub mod protein;
pub mod score;
pub mod screen;

pub use dock::{dock, DockParams};
pub use library::ChemLibrary;
pub use molecule::Ligand;
pub use protein::Pocket;
pub use screen::{virtual_screening, GpuLigen, ScreenResult};

/// A 3D point/vector in ångströms.
pub type Vec3 = [f64; 3];

/// Vector helpers shared across the crate.
pub mod vec3 {
    use super::Vec3;

    /// `a + b`.
    pub fn add(a: Vec3, b: Vec3) -> Vec3 {
        [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
    }

    /// `a − b`.
    pub fn sub(a: Vec3, b: Vec3) -> Vec3 {
        [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
    }

    /// `k·a`.
    pub fn scale(a: Vec3, k: f64) -> Vec3 {
        [a[0] * k, a[1] * k, a[2] * k]
    }

    /// Dot product.
    pub fn dot(a: Vec3, b: Vec3) -> f64 {
        a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
    }

    /// Cross product.
    pub fn cross(a: Vec3, b: Vec3) -> Vec3 {
        [
            a[1] * b[2] - a[2] * b[1],
            a[2] * b[0] - a[0] * b[2],
            a[0] * b[1] - a[1] * b[0],
        ]
    }

    /// Euclidean norm.
    pub fn norm(a: Vec3) -> f64 {
        dot(a, a).sqrt()
    }

    /// Unit vector along `a`.
    ///
    /// # Panics
    /// Panics on a (near-)zero vector.
    pub fn normalize(a: Vec3) -> Vec3 {
        let n = norm(a);
        assert!(n > 1e-12, "cannot normalize a zero vector");
        scale(a, 1.0 / n)
    }

    /// Rodrigues rotation of `v` about unit `axis` by `angle` radians.
    pub fn rotate_about(v: Vec3, axis: Vec3, angle: f64) -> Vec3 {
        let (s, c) = angle.sin_cos();
        let term1 = scale(v, c);
        let term2 = scale(cross(axis, v), s);
        let term3 = scale(axis, dot(axis, v) * (1.0 - c));
        add(add(term1, term2), term3)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn rotation_preserves_norm() {
            let v = [1.0, 2.0, 3.0];
            let axis = normalize([0.3, -0.5, 0.8]);
            let r = rotate_about(v, axis, 1.234);
            assert!((norm(r) - norm(v)).abs() < 1e-12);
        }

        #[test]
        fn quarter_turn_about_z() {
            let r = rotate_about(
                [1.0, 0.0, 0.0],
                [0.0, 0.0, 1.0],
                std::f64::consts::FRAC_PI_2,
            );
            assert!((r[0]).abs() < 1e-12);
            assert!((r[1] - 1.0).abs() < 1e-12);
        }

        #[test]
        fn rotation_about_parallel_axis_is_identity() {
            let v = [0.0, 0.0, 2.0];
            let r = rotate_about(v, [0.0, 0.0, 1.0], 0.7);
            for (a, b) in r.iter().zip(&v) {
                assert!((a - b).abs() < 1e-12);
            }
        }

        #[test]
        fn full_turn_is_identity() {
            let v = [1.0, -2.0, 0.5];
            let axis = normalize([1.0, 1.0, 1.0]);
            let r = rotate_about(v, axis, std::f64::consts::TAU);
            for (a, b) in r.iter().zip(&v) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
