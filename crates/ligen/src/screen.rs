//! Virtual screening: dock-and-score an entire chemical library.
//!
//! "All the ligand-protein evaluations are independent. Thus, the problem
//! is embarrassingly parallel" (§3.2) — the CPU implementation fans out
//! over ligands with rayon; [`GpuLigen`] submits the batched kernels to a
//! SYnergy queue for the energy experiments.

use rayon::prelude::*;

use synergy::energy::Measurement;
use synergy::{KernelTrace, SynergyQueue, TraceSegment};

use crate::dock::{dock, DockParams};
use crate::kernelize::batch_kernels;
use crate::library::ChemLibrary;
use crate::protein::Pocket;

/// One ligand's screening outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreenResult {
    /// Ligand identifier.
    pub ligand_id: u64,
    /// Best docking score (lower = stronger predicted interaction).
    pub score: f64,
}

/// Docks and scores every ligand in the library against the pocket and
/// returns results ranked best (lowest score) first — the chemical-library
/// ranking that is the platform's goal.
pub fn virtual_screening(
    library: &ChemLibrary,
    pocket: &Pocket,
    params: &DockParams,
) -> Vec<ScreenResult> {
    let mut results: Vec<ScreenResult> = library
        .ligands
        .par_iter()
        .map(|ligand| {
            let (score, _poses) = dock(ligand, pocket, params);
            ScreenResult {
                ligand_id: ligand.id,
                score,
            }
        })
        .collect();
    results.sort_by(|a, b| {
        a.score
            .total_cmp(&b.score)
            .then(a.ligand_id.cmp(&b.ligand_id))
    });
    results
}

/// The GPU-side workload driver: submits the dock + score kernel pair for
/// a screening batch, parameterized by the paper's `(l, a, f)` input tuple.
#[derive(Debug, Clone, Copy)]
pub struct GpuLigen {
    /// Number of ligands in the batch (`l`).
    pub n_ligands: u64,
    /// Atoms per ligand (`a`).
    pub n_atoms: u64,
    /// Fragments per ligand (`f`).
    pub n_fragments: u64,
    /// Docking loop parameters.
    pub params: DockParams,
}

impl GpuLigen {
    /// A screening workload for the paper's `(l, a, f)` tuple with default
    /// docking parameters.
    pub fn new(n_ligands: u64, n_atoms: u64, n_fragments: u64) -> Self {
        GpuLigen {
            n_ligands,
            n_atoms,
            n_fragments,
            params: DockParams::default(),
        }
    }

    /// Submits the batch to `queue` under its active frequency policy and
    /// returns the aggregate time/energy.
    pub fn run(&self, queue: &mut SynergyQueue) -> Measurement {
        let kernels = batch_kernels(self.n_ligands, self.n_atoms, self.n_fragments, &self.params);
        let t0 = queue.total_time_s();
        let e0 = queue.total_energy_j();
        for k in &kernels {
            queue.submit(k);
        }
        Measurement {
            time_s: queue.total_time_s() - t0,
            energy_j: queue.total_energy_j() - e0,
        }
    }

    /// The workload's kernel trace, built directly from its known
    /// structure: the dock + score pair, submitted once each. Replaying it
    /// is submission-for-submission identical to [`GpuLigen::run`].
    pub fn record_trace(&self) -> KernelTrace {
        let kernels =
            batch_kernels(self.n_ligands, self.n_atoms, self.n_fragments, &self.params).to_vec();
        let period = (0..kernels.len())
            .map(|i| TraceSegment {
                kernel_index: i,
                count: 1,
            })
            .collect();
        KernelTrace::new(kernels, period, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceSpec};
    use synergy::FrequencyPolicy;

    fn setup() -> (ChemLibrary, Pocket) {
        (
            ChemLibrary::generate(8, 16, 3, 31),
            Pocket::synthesize(16, 20.0, 4, 17),
        )
    }

    #[test]
    fn screening_ranks_all_ligands() {
        let (lib, pocket) = setup();
        let results = virtual_screening(&lib, &pocket, &DockParams::default());
        assert_eq!(results.len(), lib.len());
        for w in results.windows(2) {
            assert!(w[0].score <= w[1].score, "results must be sorted");
        }
        // Every ligand id appears exactly once.
        let mut ids: Vec<u64> = results.iter().map(|r| r.ligand_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..lib.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn screening_is_deterministic_under_parallelism() {
        let (lib, pocket) = setup();
        let a = virtual_screening(&lib, &pocket, &DockParams::default());
        let b = virtual_screening(&lib, &pocket, &DockParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn gpu_batch_submits_two_kernels() {
        let mut q = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        let m = GpuLigen::new(256, 31, 4).run(&mut q);
        assert_eq!(q.submission_count(), 2);
        assert!(m.time_s > 0.0 && m.energy_j > 0.0);
    }

    #[test]
    fn gpu_large_input_gains_speed_from_overclock_at_energy_cost() {
        // The paper's headline LiGen observation (Fig. 10b): on a large
        // input, raising the clock to max gains ~20 % speed but costs far
        // more energy.
        let work = GpuLigen::new(10_000, 89, 20);

        let mut q_def = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        let m_def = work.run(&mut q_def);

        let mut q_max = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        q_max.set_policy(FrequencyPolicy::Fixed(1597.0));
        let m_max = work.run(&mut q_max);

        let speedup = m_def.time_s / m_max.time_s;
        let energy_ratio = m_max.energy_j / m_def.energy_j;
        assert!(
            (1.1..1.35).contains(&speedup),
            "overclock speedup {speedup}"
        );
        assert!(
            energy_ratio > 1.3,
            "overclock must be energy-expensive, got {energy_ratio}"
        );
    }

    #[test]
    fn gpu_moderate_downclock_saves_energy_on_large_input() {
        // Fig. 1a: ~10 % energy saving at ~15 % performance loss.
        let work = GpuLigen::new(10_000, 89, 20);

        let mut q_def = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        let m_def = work.run(&mut q_def);

        let mut q_low = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        q_low.set_policy(FrequencyPolicy::Fixed(1100.0));
        let m_low = work.run(&mut q_low);

        let slowdown = m_low.time_s / m_def.time_s;
        let energy_ratio = m_low.energy_j / m_def.energy_j;
        assert!(slowdown < 1.3, "slowdown {slowdown}");
        assert!(energy_ratio < 0.97, "energy ratio {energy_ratio}");
    }

    #[test]
    fn native_trace_matches_generic_recording_and_replay() {
        let run = GpuLigen::new(1000, 31, 4);
        let native = run.record_trace();
        let recorded = KernelTrace::record(&DeviceSpec::v100(), |q| {
            run.run(q);
        });
        assert_eq!(native, recorded);
        assert_eq!(native.total_launches(), 2);

        let mut direct = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        let m_direct = run.run(&mut direct);
        let mut replayed = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        let m_replay = native.replay_on(&mut replayed);
        assert_eq!(m_replay, m_direct);
    }

    #[test]
    fn workload_grows_with_every_input_feature() {
        let mut q = SynergyQueue::nvidia(Device::new(DeviceSpec::v100()));
        let base = GpuLigen::new(1000, 31, 4).run(&mut q).time_s;
        let more_ligands = GpuLigen::new(4000, 31, 4).run(&mut q).time_s;
        let more_atoms = GpuLigen::new(1000, 89, 4).run(&mut q).time_s;
        let more_frags = GpuLigen::new(1000, 31, 8).run(&mut q).time_s;
        assert!(more_ligands > base);
        assert!(more_atoms > base);
        assert!(more_frags > base);
    }
}
