//! GPU kernel profiles for the docking pipeline.
//!
//! The GPU ports of LiGen batch many ligands per kernel ("each kernel on
//! the GPU computes several ligands simultaneously", §3.2.2 of the paper)
//! with fine-grained parallelism over atoms. Two kernels dominate:
//!
//! | kernel  | work items                         | character |
//! |---------|------------------------------------|-----------|
//! | `dock`  | `n_ligands × n_atoms`              | compute-bound: restarts × iterations × fragments × trial-angle geometry + scoring |
//! | `score` | `n_ligands × max_num_poses × n_atoms` | compute-bound, smaller |
//!
//! Per-item operation counts are derived from the Algorithm-2 loop
//! structure in [`mod@crate::dock`]: each restart runs `num_iterations` sweeps
//! over `n_fragments − 1` rotamers, each trying [`mod@crate::dock`]'s six
//! candidate angles, and every trial re-scores the pose — per atom that is
//! a Rodrigues rotation (~25 flops), a trilinear pocket sample (~30 flops)
//! and its share of the clash pair-sum (~2 flops per other atom). This
//! yields the paper's complexity drivers exactly: work grows with
//! `ligands`, `atoms`, and `fragments`, and device occupancy grows with
//! `ligands × atoms` — the features of Table 2.

use gpu_sim::kernel::{KernelProfile, OpMix};

use crate::dock::DockParams;

/// Kernel name constants.
pub mod names {
    /// The docking kernel (Algorithm 2 lines 2–12).
    pub const DOCK: &str = "ligen::dock";
    /// The scoring kernel (Algorithm 2 lines 13–17).
    pub const SCORE: &str = "ligen::score";
}

/// Per-trial, per-atom cost constants (flops), derived from the scoring
/// and transform code.
const ROTATE_FLOPS: f64 = 25.0;
const FIELD_SAMPLE_FLOPS: f64 = 30.0;
const CLASH_FLOPS_PER_ATOM: f64 = 2.0;
const TRIAL_ANGLES: f64 = 6.0;

/// Profile of the batched docking kernel for `n_ligands` ligands of
/// `n_atoms` atoms and `n_fragments` fragments.
///
/// # Panics
/// Panics on zero ligands/atoms.
pub fn dock_kernel(
    n_ligands: u64,
    n_atoms: u64,
    n_fragments: u64,
    params: &DockParams,
) -> KernelProfile {
    assert!(n_ligands > 0 && n_atoms > 0, "empty docking batch");
    let rotamers = n_fragments.saturating_sub(1).max(1) as f64;
    let sweeps = (params.num_restart * params.num_iterations) as f64;
    let per_trial = ROTATE_FLOPS + FIELD_SAMPLE_FLOPS + CLASH_FLOPS_PER_ATOM * n_atoms as f64;
    let flops = sweeps * rotamers * TRIAL_ANGLES * per_trial;
    let mix = OpMix {
        float_add: flops * 0.45,
        float_mul: flops * 0.45,
        float_div: flops * 0.01,
        special: flops * 0.02, // sin/cos in Rodrigues, exp in field synth
        int_add: flops * 0.05,
        int_bw: flops * 0.02,
        // Atom coordinates + pocket texture samples; the pocket grid is hot
        // in cache, so DRAM traffic per item is small and fixed.
        global_access: 24.0,
        local_access: 48.0, // pose coordinates staged in shared memory
        ..OpMix::default()
    };
    KernelProfile::new(names::DOCK, n_ligands * n_atoms, mix).with_ilp_efficiency(0.85)
}

/// Profile of the scoring kernel over the clipped pose set.
///
/// # Panics
/// Panics on zero ligands/atoms.
pub fn score_kernel(n_ligands: u64, n_atoms: u64, params: &DockParams) -> KernelProfile {
    assert!(n_ligands > 0 && n_atoms > 0, "empty scoring batch");
    let per_atom = FIELD_SAMPLE_FLOPS + CLASH_FLOPS_PER_ATOM * n_atoms as f64;
    let mix = OpMix {
        float_add: per_atom * 0.5,
        float_mul: per_atom * 0.45,
        special: per_atom * 0.03,
        int_add: per_atom * 0.05,
        global_access: 16.0,
        local_access: 24.0,
        ..OpMix::default()
    };
    KernelProfile::new(
        names::SCORE,
        n_ligands * params.max_num_poses as u64 * n_atoms,
        mix,
    )
}

/// The *source-level* (static-analysis) view of the batch kernels.
///
/// Statically, every pocket-field sample is eight grid loads and every
/// trial re-reads the atom coordinates; dynamically the pocket grid and
/// pose data are cache/shared-memory resident. The static view therefore
/// shows roughly an order of magnitude more memory traffic than the
/// dynamic profile — the feature-extraction bias that limits the
/// general-purpose model on this application (§4.1 of the paper).
pub fn static_analysis_kernels(
    n_ligands: u64,
    n_atoms: u64,
    n_fragments: u64,
    params: &DockParams,
) -> [KernelProfile; 2] {
    let mut ks = batch_kernels(n_ligands, n_atoms, n_fragments, params);
    // Statically, every trial re-loads the atom coordinates and performs a
    // trilinear pocket sample (8 grid loads + 6 coordinate words): the
    // source-level load count scales with the whole trial loop, roughly one
    // load word per four arithmetic ops. Dynamically, caches and shared
    // memory absorb almost all of it. This is the largest single
    // distortion between the static and dynamic views of LiGen.
    ks[0].mix.global_access = ks[0].mix.total_arith() * 0.028;
    ks[0].mix.local_access = 0.0;
    ks[1].mix.global_access = ks[1].mix.total_arith() * 0.028;
    ks[1].mix.local_access = 0.0;
    ks
}

/// The two kernels of one virtual-screening batch, in submission order.
pub fn batch_kernels(
    n_ligands: u64,
    n_atoms: u64,
    n_fragments: u64,
    params: &DockParams,
) -> [KernelProfile; 2] {
    [
        dock_kernel(n_ligands, n_atoms, n_fragments, params),
        score_kernel(n_ligands, n_atoms, params),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DockParams {
        DockParams::default()
    }

    #[test]
    fn work_scales_with_ligands_and_atoms() {
        let small = dock_kernel(256, 31, 4, &params());
        let big = dock_kernel(10_000, 89, 20, &params());
        assert_eq!(small.work_items, 256 * 31);
        assert_eq!(big.work_items, 10_000 * 89);
    }

    #[test]
    fn per_item_work_scales_with_fragments_and_atoms() {
        let f4 = dock_kernel(100, 89, 4, &params());
        let f20 = dock_kernel(100, 89, 20, &params());
        assert!(
            f20.mix.total_flops() > 4.0 * f4.mix.total_flops(),
            "19 rotamers vs 3 rotamers"
        );
        let a31 = dock_kernel(100, 31, 4, &params());
        let a89 = dock_kernel(100, 89, 4, &params());
        assert!(a89.mix.total_flops() > a31.mix.total_flops());
    }

    #[test]
    fn dock_kernel_is_compute_bound() {
        let k = dock_kernel(10_000, 89, 20, &params());
        let spec = gpu_sim::DeviceSpec::v100();
        let dev = gpu_sim::Device::new(spec.clone());
        let (t, _) = dev.peek(&k, spec.default_core_mhz);
        assert!(
            t.comp_s > 5.0 * t.mem_s,
            "docking must be strongly compute-bound"
        );
    }

    #[test]
    fn small_batch_underutilizes_device() {
        let k = dock_kernel(2, 89, 8, &params());
        let spec = gpu_sim::DeviceSpec::v100();
        let occ = gpu_sim::timing::occupancy(&spec, k.work_items);
        assert!(occ < 0.3, "2 ligands × 89 atoms barely lights the chip");
        let k_big = dock_kernel(10_000, 89, 8, &params());
        assert!(gpu_sim::timing::occupancy(&spec, k_big.work_items) > 0.9);
    }

    #[test]
    fn score_kernel_smaller_than_dock() {
        let p = params();
        let d = dock_kernel(1000, 89, 20, &p);
        let s = score_kernel(1000, 89, &p);
        let d_total = d.work_items as f64 * d.mix.total_flops();
        let s_total = s.work_items as f64 * s.mix.total_flops();
        assert!(s_total < 0.1 * d_total);
    }

    #[test]
    fn batch_order() {
        let ks = batch_kernels(10, 31, 4, &params());
        assert_eq!(ks[0].name, names::DOCK);
        assert_eq!(ks[1].name, names::SCORE);
    }

    #[test]
    #[should_panic(expected = "empty docking batch")]
    fn zero_ligands_rejected() {
        let _ = dock_kernel(0, 31, 4, &params());
    }
}
