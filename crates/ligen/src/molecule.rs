//! Ligand topology: atoms, bonds, rotamers, fragments.
//!
//! A rotamer is a rotatable bond; rotating about its axis moves one of the
//! two disjoint atom sets the bond separates ("each rotamer splits the
//! ligand's atoms into two disjoint sets that can rotate independently
//! along the rotamer axis" — §3.2 of the paper). With `r` rotamers a tree-
//! shaped ligand has `r + 1` fragments.

use serde::{Deserialize, Serialize};

use crate::Vec3;

/// Chemical element of an atom (a coarse pharmacophore alphabet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Element {
    /// Carbon — neutral.
    C,
    /// Nitrogen — hydrogen-bond donor flavour.
    N,
    /// Oxygen — hydrogen-bond acceptor flavour.
    O,
    /// Sulphur — hydrophobic/bulky flavour.
    S,
}

impl Element {
    /// Van der Waals radius (Å), used by the clash term.
    pub fn vdw_radius(&self) -> f64 {
        match self {
            Element::C => 1.70,
            Element::N => 1.55,
            Element::O => 1.52,
            Element::S => 1.80,
        }
    }

    /// Interaction weight against the pocket field (affinity proxy).
    pub fn field_weight(&self) -> f64 {
        match self {
            Element::C => 1.0,
            Element::N => 1.4,
            Element::O => 1.5,
            Element::S => 1.2,
        }
    }
}

/// One atom: element plus reference coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Atom {
    /// Element.
    pub element: Element,
    /// Reference position (Å) in the ligand frame.
    pub pos: Vec3,
}

/// A covalent bond between two atom indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bond {
    /// First atom index.
    pub a: usize,
    /// Second atom index.
    pub b: usize,
}

/// A rotatable bond: the rotation axis runs from atom `pivot` to atom
/// `partner`, and `moving` lists the atoms on the partner side (the set
/// that rotates).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rotamer {
    /// Axis start atom (stays fixed).
    pub pivot: usize,
    /// Axis end atom (first moving atom).
    pub partner: usize,
    /// Indices of all atoms that rotate with this rotamer (includes
    /// `partner`, excludes `pivot`).
    pub moving: Vec<usize>,
}

/// A small molecule: atoms, bonds, and rotatable-bond structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ligand {
    /// Library identifier.
    pub id: u64,
    /// Atoms with reference coordinates.
    pub atoms: Vec<Atom>,
    /// Covalent bonds (tree topology).
    pub bonds: Vec<Bond>,
    /// Rotatable bonds.
    pub rotamers: Vec<Rotamer>,
}

impl Ligand {
    /// Number of atoms.
    pub fn n_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Number of fragments (`rotamers + 1` for a tree-shaped molecule) —
    /// the `f` of the paper's `(l, a, f)` experiment tuples.
    pub fn n_fragments(&self) -> usize {
        self.rotamers.len() + 1
    }

    /// Geometric centroid of the reference coordinates.
    pub fn centroid(&self) -> Vec3 {
        let n = self.atoms.len() as f64;
        let mut c = [0.0; 3];
        for a in &self.atoms {
            c[0] += a.pos[0];
            c[1] += a.pos[1];
            c[2] += a.pos[2];
        }
        [c[0] / n, c[1] / n, c[2] / n]
    }

    /// Radius of gyration (Å) — a size diagnostic.
    pub fn radius_of_gyration(&self) -> f64 {
        let c = self.centroid();
        let n = self.atoms.len() as f64;
        let s: f64 = self
            .atoms
            .iter()
            .map(|a| {
                let d = crate::vec3::sub(a.pos, c);
                crate::vec3::dot(d, d)
            })
            .sum();
        (s / n).sqrt()
    }

    /// Validates structural invariants: bond indices in range, rotamer
    /// moving sets disjoint from their pivots, tree bond count.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.atoms.len();
        if n == 0 {
            return Err("ligand has no atoms".into());
        }
        for b in &self.bonds {
            if b.a >= n || b.b >= n || b.a == b.b {
                return Err(format!("invalid bond {}–{}", b.a, b.b));
            }
        }
        if self.bonds.len() != n - 1 {
            return Err(format!(
                "expected tree topology ({} bonds for {} atoms)",
                n - 1,
                n
            ));
        }
        for r in &self.rotamers {
            if r.pivot >= n || r.partner >= n {
                return Err("rotamer axis out of range".into());
            }
            if r.moving.contains(&r.pivot) {
                return Err("rotamer moving set contains its pivot".into());
            }
            if !r.moving.contains(&r.partner) {
                return Err("rotamer moving set must contain the partner".into());
            }
            if r.moving.iter().any(|&i| i >= n) {
                return Err("rotamer moving index out of range".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_atom_ligand() -> Ligand {
        Ligand {
            id: 0,
            atoms: vec![
                Atom {
                    element: Element::C,
                    pos: [0.0, 0.0, 0.0],
                },
                Atom {
                    element: Element::N,
                    pos: [1.5, 0.0, 0.0],
                },
                Atom {
                    element: Element::O,
                    pos: [3.0, 0.0, 0.0],
                },
            ],
            bonds: vec![Bond { a: 0, b: 1 }, Bond { a: 1, b: 2 }],
            rotamers: vec![Rotamer {
                pivot: 0,
                partner: 1,
                moving: vec![1, 2],
            }],
        }
    }

    #[test]
    fn counts_and_centroid() {
        let l = three_atom_ligand();
        assert_eq!(l.n_atoms(), 3);
        assert_eq!(l.n_fragments(), 2);
        let c = l.centroid();
        assert!((c[0] - 1.5).abs() < 1e-12);
        assert_eq!(c[1], 0.0);
    }

    #[test]
    fn validation_accepts_wellformed() {
        assert!(three_atom_ligand().validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_bond() {
        let mut l = three_atom_ligand();
        l.bonds[0].b = 99;
        assert!(l.validate().is_err());
    }

    #[test]
    fn validation_rejects_pivot_in_moving_set() {
        let mut l = three_atom_ligand();
        l.rotamers[0].moving.push(0);
        assert!(l.validate().is_err());
    }

    #[test]
    fn validation_requires_tree() {
        let mut l = three_atom_ligand();
        l.bonds.push(Bond { a: 0, b: 2 });
        assert!(l.validate().is_err());
    }

    #[test]
    fn gyration_radius_grows_with_extent() {
        let compact = three_atom_ligand();
        let mut stretched = compact.clone();
        stretched.atoms[2].pos = [30.0, 0.0, 0.0];
        assert!(stretched.radius_of_gyration() > compact.radius_of_gyration());
    }

    #[test]
    fn element_properties_are_distinct() {
        assert!(Element::S.vdw_radius() > Element::O.vdw_radius());
        assert!(Element::O.field_weight() > Element::C.field_weight());
    }
}
