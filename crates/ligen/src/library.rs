//! Synthetic chemical-library generation.
//!
//! The paper cannot ship its chemical library (proprietary, and the real
//! campaigns screen billions of molecules), so we generate structurally
//! controlled synthetic ligands: self-avoiding 3D chains with branch
//! points, a requested atom count, and a requested fragment count
//! (rotatable bonds = fragments − 1). This is exactly the knob set the
//! paper's experiments sweep: `(l, a, f) ∈ {2…10000} × {31…89} × {4…20}`.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::molecule::{Atom, Bond, Element, Ligand, Rotamer};
use crate::{vec3, Vec3};

/// A generated set of ligands with homogeneous structure parameters.
#[derive(Debug, Clone)]
pub struct ChemLibrary {
    /// The ligands.
    pub ligands: Vec<Ligand>,
}

impl ChemLibrary {
    /// Generates `n_ligands` ligands of `n_atoms` atoms and `n_fragments`
    /// fragments each, deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `n_atoms < 2` or `n_fragments < 1` or
    /// `n_fragments > n_atoms / 2` (each fragment needs at least two atoms
    /// to be chemically meaningful).
    pub fn generate(n_ligands: usize, n_atoms: usize, n_fragments: usize, seed: u64) -> Self {
        assert!(n_atoms >= 2, "a ligand needs at least two atoms");
        assert!(n_fragments >= 1, "a ligand has at least one fragment");
        assert!(
            n_fragments <= n_atoms / 2,
            "each fragment needs at least two atoms ({n_fragments} fragments × 2 > {n_atoms} atoms)"
        );
        let ligands = (0..n_ligands)
            .map(|i| generate_ligand(i as u64, n_atoms, n_fragments, seed))
            .collect();
        ChemLibrary { ligands }
    }

    /// Number of ligands.
    pub fn len(&self) -> usize {
        self.ligands.len()
    }

    /// True when the library is empty.
    pub fn is_empty(&self) -> bool {
        self.ligands.is_empty()
    }
}

/// Builds one ligand as a bonded chain with `n_fragments − 1` rotatable
/// bonds at (roughly) evenly spaced chain positions.
pub fn generate_ligand(id: u64, n_atoms: usize, n_fragments: usize, seed: u64) -> Ligand {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ id.wrapping_mul(0x9E3779B97F4A7C15));
    const BOND_LEN: f64 = 1.5;

    // Self-avoiding-ish random walk for the backbone.
    let mut atoms: Vec<Atom> = Vec::with_capacity(n_atoms);
    let mut bonds: Vec<Bond> = Vec::with_capacity(n_atoms - 1);
    let elements = [Element::C, Element::C, Element::N, Element::O, Element::S];
    let mut pos: Vec3 = [0.0, 0.0, 0.0];
    let mut dir: Vec3 = [1.0, 0.0, 0.0];
    for i in 0..n_atoms {
        let element = elements[rng.gen_range(0..elements.len())];
        atoms.push(Atom { element, pos });
        if i + 1 < n_atoms {
            // Perturb direction, renormalize, step one bond length.
            let jitter: Vec3 = [
                rng.gen_range(-0.8..0.8),
                rng.gen_range(-0.8..0.8),
                rng.gen_range(-0.8..0.8),
            ];
            dir = vec3::normalize(vec3::add(dir, jitter));
            pos = vec3::add(pos, vec3::scale(dir, BOND_LEN));
            bonds.push(Bond { a: i, b: i + 1 });
        }
    }

    // Place rotatable bonds so the chain splits into n_fragments pieces of
    // roughly equal size; the moving set of the rotamer at chain position p
    // is everything downstream (indices > p), matching a chain topology.
    let mut rotamers = Vec::with_capacity(n_fragments - 1);
    for r in 1..n_fragments {
        let cut = r * n_atoms / n_fragments;
        debug_assert!(cut >= 1 && cut < n_atoms);
        rotamers.push(Rotamer {
            pivot: cut - 1,
            partner: cut,
            moving: (cut..n_atoms).collect(),
        });
    }

    let ligand = Ligand {
        id,
        atoms,
        bonds,
        rotamers,
    };
    debug_assert!(
        ligand.validate().is_ok(),
        "generator produced invalid ligand"
    );
    ligand
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_structure() {
        let lib = ChemLibrary::generate(5, 31, 4, 42);
        assert_eq!(lib.len(), 5);
        for l in &lib.ligands {
            assert_eq!(l.n_atoms(), 31);
            assert_eq!(l.n_fragments(), 4);
            assert!(l.validate().is_ok());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ChemLibrary::generate(3, 20, 2, 7);
        let b = ChemLibrary::generate(3, 20, 2, 7);
        assert_eq!(a.ligands, b.ligands);
    }

    #[test]
    fn different_ligands_in_one_library_differ() {
        let lib = ChemLibrary::generate(2, 20, 2, 7);
        assert_ne!(lib.ligands[0].atoms, lib.ligands[1].atoms);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ChemLibrary::generate(1, 20, 2, 1);
        let b = ChemLibrary::generate(1, 20, 2, 2);
        assert_ne!(a.ligands[0].atoms, b.ligands[0].atoms);
    }

    #[test]
    fn bond_lengths_are_physical() {
        let lib = ChemLibrary::generate(1, 40, 5, 3);
        let l = &lib.ligands[0];
        for b in &l.bonds {
            let d = vec3::norm(vec3::sub(l.atoms[b.a].pos, l.atoms[b.b].pos));
            assert!((d - 1.5).abs() < 1e-9, "bond length {d}");
        }
    }

    #[test]
    fn rotamer_moving_sets_are_nested_downstream() {
        let lib = ChemLibrary::generate(1, 30, 5, 9);
        let l = &lib.ligands[0];
        assert_eq!(l.rotamers.len(), 4);
        for w in l.rotamers.windows(2) {
            assert!(w[0].moving.len() > w[1].moving.len());
        }
    }

    #[test]
    fn paper_extreme_sizes_generate() {
        // The largest experiment tuple: 89 atoms × 20 fragments.
        let lib = ChemLibrary::generate(2, 89, 20, 0);
        assert_eq!(lib.ligands[0].n_fragments(), 20);
        // And the smallest: 31 atoms × 4 fragments.
        let lib = ChemLibrary::generate(2, 31, 4, 0);
        assert_eq!(lib.ligands[0].n_atoms(), 31);
    }

    #[test]
    #[should_panic(expected = "at least two atoms")]
    fn rejects_single_atom() {
        let _ = ChemLibrary::generate(1, 1, 1, 0);
    }

    #[test]
    #[should_panic(expected = "fragments × 2")]
    fn rejects_too_many_fragments() {
        let _ = ChemLibrary::generate(1, 10, 6, 0);
    }
}
