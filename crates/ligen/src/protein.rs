//! The protein target: a binding-pocket potential field.
//!
//! The paper's target protein "is a constant for each virtual screening
//! campaign" (§3.2), so LiGen precomputes grid maps of the pocket once and
//! scores ligand poses against them. [`Pocket`] is that representation: a
//! 3D grid of interaction energies synthesized from a set of attraction
//! sites (favourable wells) inside a box, sampled with trilinear
//! interpolation. Lower values are better (more negative = stronger
//! attraction); positions outside the box are strongly penalized, which
//! keeps optimization inside the pocket.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{vec3, Vec3};

/// A cubic pocket potential-field grid.
#[derive(Debug, Clone)]
pub struct Pocket {
    /// Grid points per axis.
    pub resolution: usize,
    /// Box edge length (Å); the box spans `[0, size]³`.
    pub size: f64,
    /// Field values, x fastest.
    field: Vec<f64>,
    /// Attraction-site centres (for diagnostics/tests).
    sites: Vec<Vec3>,
}

/// Penalty per ångström for leaving the pocket box.
const OUTSIDE_PENALTY: f64 = 25.0;

impl Pocket {
    /// Synthesizes a pocket: `n_sites` attraction wells at seeded random
    /// interior positions, each a Gaussian well of depth ~1–3 and width
    /// ~2–4 Å, plus a soft repulsive core near the walls.
    ///
    /// # Panics
    /// Panics on a degenerate resolution/size or zero sites.
    pub fn synthesize(resolution: usize, size: f64, n_sites: usize, seed: u64) -> Self {
        assert!(resolution >= 4, "resolution too small");
        assert!(size > 1.0, "pocket too small");
        assert!(n_sites > 0, "need at least one attraction site");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sites: Vec<Vec3> = (0..n_sites)
            .map(|_| {
                [
                    rng.gen_range(0.25 * size..0.75 * size),
                    rng.gen_range(0.25 * size..0.75 * size),
                    rng.gen_range(0.25 * size..0.75 * size),
                ]
            })
            .collect();
        let depths: Vec<f64> = (0..n_sites).map(|_| rng.gen_range(1.0..3.0)).collect();
        let widths: Vec<f64> = (0..n_sites).map(|_| rng.gen_range(2.0..4.0)).collect();

        let step = size / (resolution - 1) as f64;
        let mut field = vec![0.0; resolution * resolution * resolution];
        for k in 0..resolution {
            for j in 0..resolution {
                for i in 0..resolution {
                    let p: Vec3 = [i as f64 * step, j as f64 * step, k as f64 * step];
                    let mut v = 0.0;
                    for ((s, d), w) in sites.iter().zip(&depths).zip(&widths) {
                        let r2 = {
                            let dd = vec3::sub(p, *s);
                            vec3::dot(dd, dd)
                        };
                        v -= d * (-r2 / (w * w)).exp();
                    }
                    // Soft repulsion near the walls (protein bulk).
                    let wall = p
                        .iter()
                        .map(|&c| (c.min(size - c)).max(0.0))
                        .fold(f64::INFINITY, f64::min);
                    if wall < 0.15 * size {
                        v += 2.0 * (0.15 * size - wall) / (0.15 * size);
                    }
                    field[(k * resolution + j) * resolution + i] = v;
                }
            }
        }
        Pocket {
            resolution,
            size,
            field,
            sites,
        }
    }

    /// The geometric centre of the pocket box.
    pub fn center(&self) -> Vec3 {
        [0.5 * self.size; 3]
    }

    /// Attraction-site positions.
    pub fn sites(&self) -> &[Vec3] {
        &self.sites
    }

    /// Samples the field at `p` by trilinear interpolation; positions
    /// outside the box pay a fixed penalty per ångström of excursion.
    pub fn sample(&self, p: Vec3) -> f64 {
        let mut penalty = 0.0;
        let mut q = p;
        for c in q.iter_mut() {
            if *c < 0.0 {
                penalty += OUTSIDE_PENALTY * (-*c);
                *c = 0.0;
            } else if *c > self.size {
                penalty += OUTSIDE_PENALTY * (*c - self.size);
                *c = self.size;
            }
        }
        let step = self.size / (self.resolution - 1) as f64;
        let gx = (q[0] / step).min((self.resolution - 1) as f64);
        let gy = (q[1] / step).min((self.resolution - 1) as f64);
        let gz = (q[2] / step).min((self.resolution - 1) as f64);
        let i0 = (gx as usize).min(self.resolution - 2);
        let j0 = (gy as usize).min(self.resolution - 2);
        let k0 = (gz as usize).min(self.resolution - 2);
        let (fx, fy, fz) = (gx - i0 as f64, gy - j0 as f64, gz - k0 as f64);
        let at = |i: usize, j: usize, k: usize| {
            self.field[(k * self.resolution + j) * self.resolution + i]
        };
        let mut acc = 0.0;
        for (di, wi) in [(0usize, 1.0 - fx), (1, fx)] {
            for (dj, wj) in [(0usize, 1.0 - fy), (1, fy)] {
                for (dk, wk) in [(0usize, 1.0 - fz), (1, fz)] {
                    acc += wi * wj * wk * at(i0 + di, j0 + dj, k0 + dk);
                }
            }
        }
        acc + penalty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pocket() -> Pocket {
        Pocket::synthesize(24, 20.0, 5, 11)
    }

    #[test]
    fn deterministic() {
        let a = Pocket::synthesize(16, 20.0, 3, 5);
        let b = Pocket::synthesize(16, 20.0, 3, 5);
        assert_eq!(a.field, b.field);
    }

    #[test]
    fn sites_are_favourable() {
        let p = pocket();
        let center_of_mass = p.sites()[0];
        let far = [1.0, 1.0, 1.0];
        assert!(
            p.sample(center_of_mass) < p.sample(far),
            "attraction sites must score better than the walls"
        );
    }

    #[test]
    fn field_is_negative_somewhere() {
        let p = pocket();
        let best = p
            .sites()
            .iter()
            .map(|s| p.sample(*s))
            .fold(f64::INFINITY, f64::min);
        assert!(best < -0.5, "wells must be attractive, best {best}");
    }

    #[test]
    fn outside_positions_pay_linear_penalty() {
        let p = pocket();
        let inside = p.sample([10.0, 10.0, 10.0]);
        let out1 = p.sample([-1.0, 10.0, 10.0]);
        let out2 = p.sample([-2.0, 10.0, 10.0]);
        assert!(out1 > inside);
        assert!((out2 - out1 - OUTSIDE_PENALTY).abs() < 1e-9);
    }

    #[test]
    fn interpolation_matches_grid_points() {
        let p = pocket();
        let step = p.size / (p.resolution - 1) as f64;
        // Sample exactly on a grid node and compare with direct lookup.
        let (i, j, k) = (5usize, 7usize, 9usize);
        let pos = [i as f64 * step, j as f64 * step, k as f64 * step];
        let direct = p.field[(k * p.resolution + j) * p.resolution + i];
        assert!((p.sample(pos) - direct).abs() < 1e-9);
    }

    #[test]
    fn interpolation_is_continuous() {
        let p = pocket();
        let a = p.sample([10.0, 10.0, 10.0]);
        let b = p.sample([10.01, 10.0, 10.0]);
        assert!((a - b).abs() < 0.05, "field must vary smoothly");
    }

    #[test]
    fn center_is_inside() {
        let p = pocket();
        let c = p.center();
        assert!(c.iter().all(|&v| v > 0.0 && v < p.size));
    }
}
