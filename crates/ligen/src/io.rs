//! Ligand text serialization — a minimal MOL-style interchange format so
//! libraries can be persisted, inspected, and round-tripped.
//!
//! ```text
//! ligand 42
//! atoms 3
//! C 0.000000 0.000000 0.000000
//! N 1.500000 0.000000 0.000000
//! O 3.000000 0.000000 0.000000
//! bonds 2
//! 0 1
//! 1 2
//! rotamers 1
//! 0 1 : 1 2
//! end
//! ```

use crate::molecule::{Atom, Bond, Element, Ligand, Rotamer};

/// Parse error with a line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn element_symbol(e: Element) -> &'static str {
    match e {
        Element::C => "C",
        Element::N => "N",
        Element::O => "O",
        Element::S => "S",
    }
}

fn element_from(s: &str) -> Option<Element> {
    match s {
        "C" => Some(Element::C),
        "N" => Some(Element::N),
        "O" => Some(Element::O),
        "S" => Some(Element::S),
        _ => None,
    }
}

/// Serializes a ligand into the text format.
pub fn write_ligand(ligand: &Ligand) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "ligand {}", ligand.id);
    let _ = writeln!(out, "atoms {}", ligand.atoms.len());
    for a in &ligand.atoms {
        let _ = writeln!(
            out,
            "{} {:.6} {:.6} {:.6}",
            element_symbol(a.element),
            a.pos[0],
            a.pos[1],
            a.pos[2]
        );
    }
    let _ = writeln!(out, "bonds {}", ligand.bonds.len());
    for b in &ligand.bonds {
        let _ = writeln!(out, "{} {}", b.a, b.b);
    }
    let _ = writeln!(out, "rotamers {}", ligand.rotamers.len());
    for r in &ligand.rotamers {
        let moving: Vec<String> = r.moving.iter().map(|i| i.to_string()).collect();
        let _ = writeln!(out, "{} {} : {}", r.pivot, r.partner, moving.join(" "));
    }
    out.push_str("end\n");
    out
}

/// Serializes a whole library, ligands separated by their own `end` lines.
pub fn write_library(ligands: &[Ligand]) -> String {
    ligands.iter().map(write_ligand).collect()
}

struct Lines<'a> {
    iter: std::iter::Enumerate<std::str::Lines<'a>>,
}

impl<'a> Lines<'a> {
    fn next_content(&mut self) -> Option<(usize, &'a str)> {
        for (i, line) in self.iter.by_ref() {
            let t = line.trim();
            if !t.is_empty() && !t.starts_with('#') {
                return Some((i + 1, t));
            }
        }
        None
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn expect_header<'a>(lines: &mut Lines<'a>, keyword: &str) -> Result<(usize, &'a str), ParseError> {
    let (n, l) = lines
        .next_content()
        .ok_or_else(|| err(0, format!("unexpected end of input, expected '{keyword}'")))?;
    let rest = l
        .strip_prefix(keyword)
        .ok_or_else(|| err(n, format!("expected '{keyword}', found '{l}'")))?;
    Ok((n, rest.trim()))
}

fn parse_one(lines: &mut Lines<'_>) -> Result<Ligand, ParseError> {
    let (n, id_str) = expect_header(lines, "ligand")?;
    let id: u64 = id_str.parse().map_err(|_| err(n, "invalid ligand id"))?;

    let (n, count) = expect_header(lines, "atoms")?;
    let n_atoms: usize = count.parse().map_err(|_| err(n, "invalid atom count"))?;
    let mut atoms = Vec::with_capacity(n_atoms);
    for _ in 0..n_atoms {
        let (n, l) = lines
            .next_content()
            .ok_or_else(|| err(0, "unexpected end of input in atoms"))?;
        let mut parts = l.split_whitespace();
        let element = parts
            .next()
            .and_then(element_from)
            .ok_or_else(|| err(n, "unknown element"))?;
        let mut pos = [0.0; 3];
        for p in pos.iter_mut() {
            *p = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err(n, "invalid coordinate"))?;
        }
        atoms.push(Atom { element, pos });
    }

    let (n, count) = expect_header(lines, "bonds")?;
    let n_bonds: usize = count.parse().map_err(|_| err(n, "invalid bond count"))?;
    let mut bonds = Vec::with_capacity(n_bonds);
    for _ in 0..n_bonds {
        let (n, l) = lines
            .next_content()
            .ok_or_else(|| err(0, "unexpected end of input in bonds"))?;
        let mut parts = l.split_whitespace();
        let a = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(n, "invalid bond index"))?;
        let b = parts
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(n, "invalid bond index"))?;
        bonds.push(Bond { a, b });
    }

    let (n, count) = expect_header(lines, "rotamers")?;
    let n_rot: usize = count.parse().map_err(|_| err(n, "invalid rotamer count"))?;
    let mut rotamers = Vec::with_capacity(n_rot);
    for _ in 0..n_rot {
        let (n, l) = lines
            .next_content()
            .ok_or_else(|| err(0, "unexpected end of input in rotamers"))?;
        let (axis, moving) = l
            .split_once(':')
            .ok_or_else(|| err(n, "rotamer line needs 'pivot partner : moving…'"))?;
        let mut ax = axis.split_whitespace();
        let pivot = ax
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(n, "invalid pivot"))?;
        let partner = ax
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(n, "invalid partner"))?;
        let moving: Result<Vec<usize>, _> = moving
            .split_whitespace()
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| err(n, "invalid moving index"))
            })
            .collect();
        rotamers.push(Rotamer {
            pivot,
            partner,
            moving: moving?,
        });
    }

    let (n, l) = lines
        .next_content()
        .ok_or_else(|| err(0, "unexpected end of input, expected 'end'"))?;
    if l != "end" {
        return Err(err(n, format!("expected 'end', found '{l}'")));
    }

    let ligand = Ligand {
        id,
        atoms,
        bonds,
        rotamers,
    };
    ligand.validate().map_err(|m| err(n, m))?;
    Ok(ligand)
}

/// Parses one ligand from the text format (validates structure).
pub fn read_ligand(input: &str) -> Result<Ligand, ParseError> {
    let mut lines = Lines {
        iter: input.lines().enumerate(),
    };
    parse_one(&mut lines)
}

/// Parses a concatenated library (zero or more ligands).
pub fn read_library(input: &str) -> Result<Vec<Ligand>, ParseError> {
    let mut lines = Lines {
        iter: input.lines().enumerate(),
    };
    let mut out = Vec::new();
    loop {
        // Peek: is there any content left?
        let mut probe = lines.iter.clone();
        let has_more = probe.any(|(_, l)| {
            let t = l.trim();
            !t.is_empty() && !t.starts_with('#')
        });
        if !has_more {
            return Ok(out);
        }
        out.push(parse_one(&mut lines)?);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::{generate_ligand, ChemLibrary};

    #[test]
    fn single_ligand_round_trip() {
        let l = generate_ligand(42, 20, 4, 7);
        let text = write_ligand(&l);
        let back = read_ligand(&text).unwrap();
        assert_eq!(back.id, l.id);
        assert_eq!(back.bonds, l.bonds);
        assert_eq!(back.rotamers, l.rotamers);
        assert_eq!(back.n_atoms(), l.n_atoms());
        for (a, b) in back.atoms.iter().zip(&l.atoms) {
            assert_eq!(a.element, b.element);
            for (p, q) in a.pos.iter().zip(&b.pos) {
                assert!((p - q).abs() < 1e-5, "coordinates to 6 decimals");
            }
        }
    }

    #[test]
    fn library_round_trip() {
        let lib = ChemLibrary::generate(5, 12, 3, 3);
        let text = write_library(&lib.ligands);
        let back = read_library(&text).unwrap();
        assert_eq!(back.len(), 5);
        for (a, b) in back.iter().zip(&lib.ligands) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.n_fragments(), b.n_fragments());
        }
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let l = generate_ligand(1, 6, 2, 1);
        let text = format!("# a library\n\n{}", write_ligand(&l));
        assert!(read_ligand(&text).is_ok());
    }

    #[test]
    fn empty_input_is_empty_library() {
        assert_eq!(read_library("  \n# nothing\n").unwrap(), vec![]);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = read_ligand("ligand x\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("invalid ligand id"));

        let bad = "ligand 1\natoms 1\nXX 0 0 0\nbonds 0\nrotamers 0\nend\n";
        let e = read_ligand(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown element"));
    }

    #[test]
    fn structural_validation_applies_on_read() {
        // A bond index out of range must be rejected by validate().
        let bad = "ligand 1\natoms 2\nC 0 0 0\nC 1.5 0 0\nbonds 1\n0 9\nrotamers 0\nend\n";
        let e = read_ligand(bad).unwrap_err();
        assert!(e.message.contains("invalid bond"));
    }

    #[test]
    fn truncated_input_reports_eof() {
        let e = read_ligand("ligand 1\natoms 2\nC 0 0 0\n").unwrap_err();
        assert!(e.message.contains("unexpected end of input"));
    }
}
