//! Property-based tests of the docking engine's geometric and search
//! invariants.

use ligen::dock::{dock, initialize_pose, optimize_fragment, DockParams};
use ligen::library::generate_ligand;
use ligen::pose::Pose;
use ligen::protein::Pocket;
use ligen::score::compute_score;
use ligen::vec3;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated ligands are structurally valid for any parameters in the
    /// paper's experiment ranges.
    #[test]
    fn generated_ligands_are_valid(atoms in 8usize..96, frag_divisor in 2usize..8, seed in 0u64..10_000) {
        let fragments = (atoms / frag_divisor).max(1).min(atoms / 2);
        let l = generate_ligand(0, atoms, fragments, seed);
        prop_assert!(l.validate().is_ok());
        prop_assert_eq!(l.n_atoms(), atoms);
        prop_assert_eq!(l.n_fragments(), fragments);
    }

    /// Rigid-body moves preserve all pairwise distances.
    #[test]
    fn rigid_moves_are_isometries(
        seed in 0u64..1000,
        angle in -3.0..3.0f64,
        dx in -5.0..5.0f64,
        dy in -5.0..5.0f64,
    ) {
        let l = generate_ligand(0, 14, 3, seed);
        let mut pose = Pose::from_ligand(&l);
        let d_before = pose.diameter();
        pose.translate([dx, dy, 1.0]);
        pose.rotate_rigid(vec3::normalize([1.0, dy + 10.0, dx]), angle);
        prop_assert!((pose.diameter() - d_before).abs() < 1e-9);
    }

    /// Fragment rotations preserve every covalent bond length, for any
    /// rotamer and angle.
    #[test]
    fn fragment_rotations_preserve_bonds(seed in 0u64..1000, angle in -3.0..3.0f64, rot_pick in 0usize..100) {
        let l = generate_ligand(0, 20, 4, seed);
        let r = rot_pick % l.rotamers.len();
        let mut pose = Pose::from_ligand(&l);
        pose.rotate_fragment(&l, r, angle);
        for b in &l.bonds {
            let d = vec3::norm(vec3::sub(pose.coords[b.a], pose.coords[b.b]));
            prop_assert!((d - 1.5).abs() < 1e-9);
        }
    }

    /// `optimize` never worsens the score (greedy acceptance), from any
    /// restart orientation.
    #[test]
    fn optimize_is_monotone(seed in 0u64..500, restart in 0usize..6) {
        let l = generate_ligand(seed, 16, 3, 11);
        let pocket = Pocket::synthesize(16, 20.0, 4, 3);
        let mut pose = initialize_pose(&l, restart);
        ligen::dock::align(&mut pose, &pocket);
        let before = compute_score(&l, &pose, &pocket);
        optimize_fragment(&l, &mut pose, 0, &pocket);
        let after = compute_score(&l, &pose, &pocket);
        prop_assert!(after <= before + 1e-9);
    }

    /// Docking output is sorted, clipped, and its best score equals the
    /// returned score, for any loop parameters.
    #[test]
    fn dock_output_contract(
        restarts in 1usize..6,
        iterations in 1usize..4,
        max_poses in 1usize..5,
        seed in 0u64..200,
    ) {
        let l = generate_ligand(seed, 12, 2, 9);
        let pocket = Pocket::synthesize(12, 20.0, 3, 5);
        let params = DockParams {
            num_restart: restarts,
            num_iterations: iterations,
            max_num_poses: max_poses,
        };
        let (best, poses) = dock(&l, &pocket, &params);
        prop_assert!(poses.len() <= max_poses.min(restarts).max(1));
        prop_assert!(!poses.is_empty());
        for w in poses.windows(2) {
            prop_assert!(w[0].score.unwrap() <= w[1].score.unwrap());
        }
        prop_assert!((best - poses[0].score.unwrap()).abs() < 1e-12);
        prop_assert!(best.is_finite());
    }

    /// Pocket sampling is finite everywhere, including far outside the box.
    #[test]
    fn pocket_sampling_is_total(x in -100.0..100.0f64, y in -100.0..100.0f64, z in -100.0..100.0f64) {
        let pocket = Pocket::synthesize(12, 20.0, 3, 1);
        let v = pocket.sample([x, y, z]);
        prop_assert!(v.is_finite());
    }
}
