//! Golden + property tests: the flattened forest is bit-identical to the
//! pointer-based forest it was compiled from, for scalar and batched
//! prediction, across random shapes (tree depths, feature counts, forest
//! sizes) and NaN-free query matrices.

use ml::dataset::Matrix;
use ml::forest::{RandomForest, RandomForestParams};
use ml::tree::{MaxFeatures, TreeParams};
use ml::Regressor;
use proptest::prelude::*;

/// A training set plus query matrix with a shared, arbitrary feature width.
fn arb_problem() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>, Vec<Vec<f64>>)> {
    (1usize..5).prop_flat_map(|p| {
        let train =
            proptest::collection::vec(proptest::collection::vec(-100.0..100.0f64, p..p + 1), 4..40);
        let targets = proptest::collection::vec(-1000.0..1000.0f64, 40..41);
        let queries =
            proptest::collection::vec(proptest::collection::vec(-150.0..150.0f64, p..p + 1), 1..12);
        (train, targets, queries).prop_map(|(x, mut y, q)| {
            y.truncate(x.len());
            (x, y, q)
        })
    })
}

fn arb_params() -> impl Strategy<Value = RandomForestParams> {
    (
        1usize..10,
        prop_oneof![Just(None), (1usize..8).prop_map(Some)],
        1usize..3,
        prop_oneof![
            Just(MaxFeatures::All),
            Just(MaxFeatures::Sqrt),
            Just(MaxFeatures::Third),
        ],
        prop_oneof![Just(true), Just(false)],
    )
        .prop_map(
            |(n_estimators, max_depth, min_samples_leaf, max_features, bootstrap)| {
                RandomForestParams {
                    n_estimators,
                    tree: TreeParams {
                        max_depth,
                        min_samples_leaf,
                        max_features,
                        ..Default::default()
                    },
                    bootstrap,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `FlatForest::predict_row` is bit-identical to the pointer walk on
    /// training rows and on out-of-sample queries.
    #[test]
    fn flat_scalar_bit_identical(
        (x, y, queries) in arb_problem(),
        params in arb_params(),
        seed in 0u64..1000,
    ) {
        let m = Matrix::from_rows(&x);
        let mut forest = RandomForest::new(params, seed);
        forest.fit(&m, &y);
        let flat = forest.flatten();
        prop_assert_eq!(flat.n_trees(), params.n_estimators);
        for row in x.iter().chain(&queries) {
            let a = forest.predict_row(row);
            let b = flat.predict_row(row);
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// `FlatForest::predict_batch` (feature-major) matches both the flat
    /// scalar path and the pointer forest's batched path bit-for-bit.
    #[test]
    fn flat_batch_bit_identical(
        (x, y, queries) in arb_problem(),
        params in arb_params(),
        seed in 0u64..1000,
    ) {
        let m = Matrix::from_rows(&x);
        let mut forest = RandomForest::new(params, seed);
        forest.fit(&m, &y);
        let flat = forest.flatten();
        let q = Matrix::from_rows(&queries);

        let batch = flat.predict_batch(&q);
        let pointer_batch = forest.predict(&q);
        prop_assert_eq!(batch.len(), queries.len());
        for (i, row) in queries.iter().enumerate() {
            prop_assert_eq!(batch[i].to_bits(), flat.predict_row(row).to_bits());
            prop_assert_eq!(batch[i].to_bits(), pointer_batch[i].to_bits());
            prop_assert_eq!(batch[i].to_bits(), forest.predict_row(row).to_bits());
        }
    }

    /// Sweep evaluation (one descent per tree, range-partitioned on the
    /// swept column) is bit-identical to materializing the swept rows and
    /// running the plain batch, for any column and unsorted value lists.
    #[test]
    fn sweep_bit_identical_to_materialized_rows(
        (x, y, queries) in arb_problem(),
        params in arb_params(),
        seed in 0u64..1000,
        values in proptest::collection::vec(-200.0..200.0f64, 1..12),
        col_pick in 0usize..64,
    ) {
        let m = Matrix::from_rows(&x);
        let mut forest = RandomForest::new(params, seed);
        forest.fit(&m, &y);
        let flat = forest.flatten();
        let template = &queries[0];
        let col = col_pick % template.len();

        let rows: Vec<Vec<f64>> = values
            .iter()
            .map(|&v| {
                let mut r = template.clone();
                r[col] = v;
                r
            })
            .collect();
        let materialized = flat.predict_batch(&Matrix::from_rows(&rows));
        let mut swept = Vec::new();
        flat.predict_sweep_into(template, col, &values, &mut swept);
        prop_assert_eq!(swept.len(), values.len());
        for (a, b) in swept.iter().zip(&materialized) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Compiling twice from the same forest yields the same arena, and a
    /// clone of the forest compiles to an equal arena (pure function of the
    /// fitted trees).
    #[test]
    fn compile_is_deterministic(
        (x, y, _) in arb_problem(),
        params in arb_params(),
        seed in 0u64..1000,
    ) {
        let m = Matrix::from_rows(&x);
        let mut forest = RandomForest::new(params, seed);
        forest.fit(&m, &y);
        let a = forest.flatten();
        let b = forest.clone().flatten();
        prop_assert_eq!(a, b);
    }
}
