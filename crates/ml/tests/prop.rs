//! Property-based tests of the ML substrate's invariants.

use ml::dataset::{Dataset, Matrix};
use ml::forest::{RandomForest, RandomForestParams};
use ml::metrics::{mae, mape, mse, r2};
use ml::scaler::StandardScaler;
use ml::tree::{DecisionTree, TreeParams};
use ml::Regressor;
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    proptest::collection::vec(
        (-100.0..100.0f64, -100.0..100.0f64, -1000.0..1000.0f64),
        4..60,
    )
    .prop_map(|rows| {
        let x: Vec<Vec<f64>> = rows.iter().map(|(a, b, _)| vec![*a, *b]).collect();
        let y: Vec<f64> = rows.iter().map(|(_, _, y)| *y).collect();
        (x, y)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tree predictions are convex combinations of training targets:
    /// always within [min(y), max(y)].
    #[test]
    fn tree_predictions_within_target_range((x, y) in arb_dataset(), qa in -150.0..150.0f64, qb in -150.0..150.0f64) {
        let m = Matrix::from_rows(&x);
        let mut tree = DecisionTree::new(TreeParams::default(), 0);
        tree.fit(&m, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = tree.predict_row(&[qa, qb]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    /// Forest predictions inherit the same range bound.
    #[test]
    fn forest_predictions_within_target_range((x, y) in arb_dataset(), qa in -150.0..150.0f64) {
        let m = Matrix::from_rows(&x);
        let mut f = RandomForest::new(
            RandomForestParams { n_estimators: 8, ..Default::default() },
            1,
        );
        f.fit(&m, &y);
        let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let p = f.predict_row(&[qa, 0.0]);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    /// A fully-grown tree with distinct feature rows memorizes training data.
    #[test]
    fn deep_tree_memorizes(rows in proptest::collection::vec((0u32..10_000, -10.0..10.0f64), 4..40)) {
        // Distinct integer keys guarantee separable rows.
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<(u32, f64)> = rows.into_iter().filter(|(k, _)| seen.insert(*k)).collect();
        prop_assume!(rows.len() >= 3);
        let x: Vec<Vec<f64>> = rows.iter().map(|(k, _)| vec![*k as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|(_, v)| *v).collect();
        let m = Matrix::from_rows(&x);
        let mut tree = DecisionTree::new(TreeParams::default(), 0);
        tree.fit(&m, &y);
        for (xi, yi) in x.iter().zip(&y) {
            prop_assert!((tree.predict_row(xi) - yi).abs() < 1e-9);
        }
    }

    /// Metrics invariants: non-negative errors, R² ≤ 1, perfect prediction
    /// is a fixed point.
    #[test]
    fn metric_invariants(y in proptest::collection::vec(0.1..1000.0f64, 2..40), shift in -0.5..0.5f64) {
        let pred: Vec<f64> = y.iter().map(|v| v * (1.0 + shift)).collect();
        prop_assert!(mape(&y, &pred) >= 0.0);
        prop_assert!(mae(&y, &pred) >= 0.0);
        prop_assert!(mse(&y, &pred) >= 0.0);
        prop_assert!(r2(&y, &pred) <= 1.0 + 1e-12);
        prop_assert!(mape(&y, &y) == 0.0);
        prop_assert!((mape(&y, &pred) - shift.abs()).abs() < 1e-9);
    }

    /// Scaler transform/inverse round-trips any row.
    #[test]
    fn scaler_round_trip((x, _) in arb_dataset(), qa in -50.0..50.0f64, qb in -50.0..50.0f64) {
        let m = Matrix::from_rows(&x);
        let sc = StandardScaler::fit(&m);
        let mut row = vec![qa, qb];
        let orig = row.clone();
        sc.transform_row(&mut row);
        sc.inverse_transform_row(&mut row);
        for (a, b) in row.iter().zip(&orig) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// Train/test splits partition the dataset for any fraction.
    #[test]
    fn split_partitions((x, y) in arb_dataset(), frac in 0.1..0.9f64, seed in 0u64..1000) {
        let ds = Dataset::new(Matrix::from_rows(&x), y);
        let (train, test) = ds.train_test_split(frac, seed);
        prop_assert_eq!(train.len() + test.len(), ds.len());
        prop_assert!(!train.is_empty());
        prop_assert!(!test.is_empty());
    }

    /// K-fold covers every sample exactly once, for any k.
    #[test]
    fn kfold_covers_once(n in 4usize..80, k in 2usize..6, seed in 0u64..100) {
        prop_assume!(k <= n);
        let folds = ml::cv::kfold_indices(n, k, seed);
        let mut count = vec![0; n];
        for (_, val) in &folds {
            for &i in val {
                count[i] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }
}
