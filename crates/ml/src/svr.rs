//! ε-insensitive support-vector regression with an RBF kernel.
//!
//! Solves the SVR dual in the `β = α − α*` parameterization with cyclic
//! coordinate descent (a sequential-minimal-optimization variant that
//! updates one dual variable per step):
//!
//! ```text
//! min_β  ½ βᵀKβ − βᵀy + ε‖β‖₁     s.t.  −C ≤ βᵢ ≤ C
//! ```
//!
//! The bias is handled by centering the targets, and features are
//! standardized internally (RBF kernels are scale-sensitive). `gamma`
//! defaults to scikit-learn's `"scale"` heuristic, which after
//! standardization reduces to `1/p`.

use serde::{Deserialize, Serialize};

use crate::dataset::Matrix;
use crate::scaler::StandardScaler;
use crate::Regressor;

/// SVR hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvrParams {
    /// Box constraint (regularization strength; larger = less regular).
    pub c: f64,
    /// ε-insensitive tube half-width.
    pub epsilon: f64,
    /// RBF width; `None` = `"scale"` (1/p after standardization).
    pub gamma: Option<f64>,
    /// Convergence tolerance on the largest dual update per sweep.
    pub tol: f64,
    /// Sweep cap.
    pub max_iter: usize,
}

impl Default for SvrParams {
    fn default() -> Self {
        SvrParams {
            c: 10.0,
            epsilon: 0.01,
            gamma: None,
            tol: 1e-6,
            max_iter: 2_000,
        }
    }
}

/// A fitted RBF-kernel support-vector regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvrRbf {
    /// Hyper-parameters.
    pub params: SvrParams,
    scaler: Option<StandardScaler>,
    support_x: Option<Matrix>,
    beta: Vec<f64>,
    bias: f64,
    gamma: f64,
}

impl SvrRbf {
    /// SVR with explicit parameters.
    ///
    /// # Panics
    /// Panics on non-positive `C` or negative `epsilon`.
    pub fn new(params: SvrParams) -> Self {
        assert!(params.c > 0.0, "C must be positive");
        assert!(params.epsilon >= 0.0, "epsilon must be ≥ 0");
        SvrRbf {
            params,
            scaler: None,
            support_x: None,
            beta: Vec::new(),
            bias: 0.0,
            gamma: 0.0,
        }
    }

    /// SVR with default parameters.
    pub fn with_defaults() -> Self {
        SvrRbf::new(SvrParams::default())
    }

    /// Number of support vectors (non-zero dual coefficients).
    pub fn n_support(&self) -> usize {
        self.beta.iter().filter(|b| b.abs() > 1e-12).count()
    }

    fn rbf(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        (-self.gamma * d2).exp()
    }
}

impl Regressor for SvrRbf {
    fn fit(&mut self, x_raw: &Matrix, y: &[f64]) {
        assert_eq!(x_raw.rows(), y.len(), "x/y length mismatch");
        assert!(x_raw.rows() > 0, "cannot fit on an empty dataset");
        let scaler = StandardScaler::fit(x_raw);
        let x = scaler.transform(x_raw);
        let n = x.rows();
        self.gamma = self.params.gamma.unwrap_or(1.0 / x.cols() as f64);

        // Center targets; the mean is the bias.
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();

        // Dense kernel matrix. The paper's datasets are a few thousand rows
        // at most (inputs × frequencies), so O(n²) memory is fine; guard
        // against accidental misuse anyway.
        assert!(
            n <= 20_000,
            "dense-kernel SVR is limited to 20k samples (got {n})"
        );
        let mut k = vec![0.0f64; n * n];
        for i in 0..n {
            for j in i..n {
                let v = self.rbf(x.row(i), x.row(j));
                k[i * n + j] = v;
                k[j * n + i] = v;
            }
        }

        let c = self.params.c;
        let eps = self.params.epsilon;
        let mut beta = vec![0.0f64; n];
        // f_i = Σ_j K_ij β_j, maintained incrementally.
        let mut f = vec![0.0f64; n];

        for _ in 0..self.params.max_iter {
            let mut max_delta: f64 = 0.0;
            for i in 0..n {
                let kii = k[i * n + i];
                if kii <= 0.0 {
                    continue;
                }
                let b_old = beta[i];
                // Gradient of the smooth part w.r.t. β_i, excluding the
                // diagonal contribution of β_i itself.
                let g = f[i] - kii * b_old - yc[i];
                // Unconstrained soft-threshold minimizer, then box-clip.
                let raw = -g;
                let b_new = if raw > eps {
                    (raw - eps) / kii
                } else if raw < -eps {
                    (raw + eps) / kii
                } else {
                    0.0
                }
                .clamp(-c, c);
                if b_new != b_old {
                    let delta = b_new - b_old;
                    let krow = &k[i * n..(i + 1) * n];
                    for (fj, kij) in f.iter_mut().zip(krow) {
                        *fj += kij * delta;
                    }
                    beta[i] = b_new;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.params.tol {
                break;
            }
        }

        self.scaler = Some(scaler);
        self.support_x = Some(x);
        self.beta = beta;
        self.bias = y_mean;
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let scaler = self.scaler.as_ref().expect("predict before fit");
        let sx = self.support_x.as_ref().expect("fitted");
        let mut buf = row.to_vec();
        scaler.transform_row(&mut buf);
        let mut acc = self.bias;
        for (i, b) in self.beta.iter().enumerate() {
            if b.abs() > 1e-12 {
                acc += b * self.rbf(sx.row(i), &buf);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mape, r2};

    fn sine_data(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / n as f64 * 4.0]).collect();
        let y = rows.iter().map(|r| r[0].sin() + 2.0).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_smooth_nonlinear_function() {
        let (x, y) = sine_data(120);
        let mut m = SvrRbf::with_defaults();
        m.fit(&x, &y);
        let pred = m.predict(&x);
        assert!(r2(&y, &pred) > 0.99, "R² = {}", r2(&y, &pred));
        assert!(mape(&y, &pred) < 0.02);
    }

    #[test]
    fn epsilon_tube_creates_sparsity() {
        let (x, y) = sine_data(100);
        let mut tight = SvrRbf::new(SvrParams {
            epsilon: 0.0,
            ..Default::default()
        });
        tight.fit(&x, &y);
        let mut loose = SvrRbf::new(SvrParams {
            epsilon: 0.3,
            ..Default::default()
        });
        loose.fit(&x, &y);
        assert!(
            loose.n_support() < tight.n_support(),
            "wider tube ⇒ fewer support vectors ({} vs {})",
            loose.n_support(),
            tight.n_support()
        );
    }

    #[test]
    fn heavy_regularization_flattens_prediction() {
        let (x, y) = sine_data(80);
        let mut m = SvrRbf::new(SvrParams {
            c: 1e-6,
            ..Default::default()
        });
        m.fit(&x, &y);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        // With a vanishing box, predictions collapse to the bias (= mean).
        for r in x.iter_rows().step_by(9) {
            assert!((m.predict_row(r) - mean).abs() < 0.05);
        }
    }

    #[test]
    fn interpolates_between_training_points() {
        let (x, y) = sine_data(100);
        let mut m = SvrRbf::with_defaults();
        m.fit(&x, &y);
        let mid = 1.02f64; // between grid points
        let expect = mid.sin() + 2.0;
        let pred = m.predict_row(&[mid]);
        assert!((pred - expect).abs() < 0.05, "pred {pred} vs {expect}");
    }

    #[test]
    fn deterministic() {
        let (x, y) = sine_data(60);
        let mut a = SvrRbf::with_defaults();
        let mut b = SvrRbf::with_defaults();
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    #[should_panic(expected = "C must be positive")]
    fn zero_c_rejected() {
        let _ = SvrRbf::new(SvrParams {
            c: 0.0,
            ..Default::default()
        });
    }
}
