//! CART regression trees.
//!
//! Variance-reduction (squared-error) splitting with the standard controls:
//! `max_depth`, `min_samples_split`, `min_samples_leaf`, and per-split
//! feature subsampling (`max_features`) — the knobs the paper grid-searches
//! for its Random Forest (§5.2.1). Split scanning sorts each candidate
//! feature once and evaluates every cut point with running sums, so a split
//! costs `O(k · n log n)` for `k` candidate features.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Matrix;
use crate::Regressor;

/// How many features to consider at each split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaxFeatures {
    /// All features (classic CART, the Random Forest regressor default in
    /// scikit-learn ≥1.0 — the paper reports default parameters win).
    All,
    /// ⌈√p⌉ features.
    Sqrt,
    /// ⌈p/3⌉ features (the old regression-forest heuristic).
    Third,
    /// An explicit count (clamped to `p`).
    Count(usize),
}

impl MaxFeatures {
    /// Resolves to a concrete count for `p` features (always ≥ 1).
    pub fn resolve(&self, p: usize) -> usize {
        let k = match self {
            MaxFeatures::All => p,
            MaxFeatures::Sqrt => (p as f64).sqrt().ceil() as usize,
            MaxFeatures::Third => p.div_ceil(3),
            MaxFeatures::Count(k) => *k,
        };
        k.clamp(1, p)
    }
}

/// Tree growth controls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth; `None` grows until purity/minimum-sample limits.
    pub max_depth: Option<usize>,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Feature subsampling rule per split.
    pub max_features: MaxFeatures,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn predict(&self, row: &[f64]) -> f64 {
        match self {
            Node::Leaf { value } => *value,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    left.predict(row)
                } else {
                    right.predict(row)
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    fn leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.leaves() + right.leaves(),
        }
    }
}

/// A fitted CART regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    /// Growth controls.
    pub params: TreeParams,
    seed: u64,
    root: Option<Node>,
    n_features: usize,
}

impl DecisionTree {
    /// A tree with the given parameters and RNG seed (used only when
    /// `max_features` subsamples).
    pub fn new(params: TreeParams, seed: u64) -> Self {
        DecisionTree {
            params,
            seed,
            root: None,
            n_features: 0,
        }
    }

    /// Depth of the fitted tree (0 = single leaf).
    ///
    /// # Panics
    /// Panics before `fit`.
    pub fn depth(&self) -> usize {
        self.root.as_ref().expect("fitted").depth()
    }

    /// Leaf count of the fitted tree.
    ///
    /// # Panics
    /// Panics before `fit`.
    pub fn n_leaves(&self) -> usize {
        self.root.as_ref().expect("fitted").leaves()
    }

    /// Root node of the fitted tree, if any (compile hook for
    /// [`crate::flat::FlatForest`]).
    pub(crate) fn root(&self) -> Option<&Node> {
        self.root.as_ref()
    }

    /// Feature width this tree was fitted on (0 before `fit`).
    pub(crate) fn n_features(&self) -> usize {
        self.n_features
    }

    fn build(
        &self,
        x: &Matrix,
        y: &[f64],
        indices: &mut [usize],
        depth: usize,
        rng: &mut ChaCha8Rng,
    ) -> Node {
        let n = indices.len();
        let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / n as f64;

        let depth_ok = self.params.max_depth.map(|d| depth < d).unwrap_or(true);
        if !depth_ok || n < self.params.min_samples_split {
            return Node::Leaf { value: mean };
        }
        // Pure node?
        let sse: f64 = indices.iter().map(|&i| (y[i] - mean) * (y[i] - mean)).sum();
        if sse <= 1e-24 {
            return Node::Leaf { value: mean };
        }

        let p = x.cols();
        let k = self.params.max_features.resolve(p);
        let mut feats: Vec<usize> = (0..p).collect();
        if k < p {
            feats.shuffle(rng);
            feats.truncate(k);
            feats.sort_unstable();
        }

        let best = self.best_split(x, y, indices, &feats);
        let Some((feature, threshold)) = best else {
            return Node::Leaf { value: mean };
        };

        // Partition indices in place: left = rows with value <= threshold.
        let mut lo = 0usize;
        let mut hi = indices.len();
        while lo < hi {
            if x.get(indices[lo], feature) <= threshold {
                lo += 1;
            } else {
                hi -= 1;
                indices.swap(lo, hi);
            }
        }
        let (left_idx, right_idx) = indices.split_at_mut(lo);
        debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());

        let left = self.build(x, y, left_idx, depth + 1, rng);
        let right = self.build(x, y, right_idx, depth + 1, rng);
        Node::Split {
            feature,
            threshold,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Finds the (feature, threshold) minimizing child SSE, or `None` when
    /// no valid split exists (all candidate features constant or
    /// `min_samples_leaf` unsatisfiable).
    fn best_split(
        &self,
        x: &Matrix,
        y: &[f64],
        indices: &[usize],
        feats: &[usize],
    ) -> Option<(usize, f64)> {
        let n = indices.len();
        let min_leaf = self.params.min_samples_leaf;
        let total_sum: f64 = indices.iter().map(|&i| y[i]).sum();
        let total_sq: f64 = indices.iter().map(|&i| y[i] * y[i]).sum();

        let mut best: Option<(usize, f64, f64)> = None; // (feat, thr, score)
        let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);
        for &j in feats {
            pairs.clear();
            pairs.extend(indices.iter().map(|&i| (x.get(i, j), y[i])));
            pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
            if pairs[0].0 == pairs[n - 1].0 {
                continue; // constant feature
            }
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for split in 1..n {
                let (v_prev, y_prev) = pairs[split - 1];
                left_sum += y_prev;
                left_sq += y_prev * y_prev;
                let v_next = pairs[split].0;
                if v_prev == v_next {
                    continue; // cannot cut between equal values
                }
                if split < min_leaf || n - split < min_leaf {
                    continue;
                }
                let nl = split as f64;
                let nr = (n - split) as f64;
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse_l = left_sq - left_sum * left_sum / nl;
                let sse_r = right_sq - right_sum * right_sum / nr;
                let score = sse_l + sse_r;
                let better = match best {
                    None => true,
                    Some((_, _, s)) => score < s,
                };
                if better {
                    let thr = 0.5 * (v_prev + v_next);
                    best = Some((j, thr, score));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

impl Regressor for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len(), "x/y length mismatch");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        assert!(self.params.min_samples_leaf >= 1, "min_samples_leaf ≥ 1");
        let mut indices: Vec<usize> = (0..x.rows()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.n_features = x.cols();
        self.root = Some(self.build(x, y, &mut indices, 0, &mut rng));
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        let root = self.root.as_ref().expect("predict before fit");
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        root.predict(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Matrix, Vec<f64>) {
        // y = 1 for x < 0.5, y = 5 for x >= 0.5
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 20.0]).collect();
        let y = rows
            .iter()
            .map(|r| if r[0] < 0.5 { 1.0 } else { 5.0 })
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn learns_step_function_exactly() {
        let (x, y) = step_data();
        let mut t = DecisionTree::new(TreeParams::default(), 0);
        t.fit(&x, &y);
        assert_eq!(t.predict_row(&[0.1]), 1.0);
        assert_eq!(t.predict_row(&[0.9]), 5.0);
        // A single split suffices.
        assert_eq!(t.n_leaves(), 2);
    }

    #[test]
    fn depth_zero_cap_yields_mean_leaf() {
        let (x, y) = step_data();
        let mut t = DecisionTree::new(
            TreeParams {
                max_depth: Some(0),
                ..Default::default()
            },
            0,
        );
        t.fit(&x, &y);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert_eq!(t.predict_row(&[0.3]), mean);
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let (x, y) = step_data();
        let mut t = DecisionTree::new(
            TreeParams {
                min_samples_leaf: 8,
                ..Default::default()
            },
            0,
        );
        t.fit(&x, &y);
        // With 20 points and a leaf minimum of 8 at most one split fits per
        // path near the boundary; the tree must stay shallow.
        assert!(t.depth() <= 2);
    }

    #[test]
    fn interpolates_smooth_function_reasonably() {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0] * 6.0).sin()).collect();
        let x = Matrix::from_rows(&rows);
        let mut t = DecisionTree::new(TreeParams::default(), 0);
        t.fit(&x, &y);
        for (i, r) in x.iter_rows().enumerate().step_by(17) {
            assert!((t.predict_row(r) - y[i]).abs() < 0.05);
        }
    }

    #[test]
    fn constant_features_give_single_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]);
        let y = vec![1.0, 2.0, 3.0];
        let mut t = DecisionTree::new(TreeParams::default(), 0);
        t.fit(&x, &y);
        assert_eq!(t.n_leaves(), 1);
        assert!((t.predict_row(&[1.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multifeature_split_picks_informative_one() {
        // Feature 0 is noise; feature 1 carries the signal.
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![((i * 31) % 7) as f64, (i % 2) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[1] * 10.0).collect();
        let x = Matrix::from_rows(&rows);
        let mut t = DecisionTree::new(TreeParams::default(), 0);
        t.fit(&x, &y);
        assert_eq!(t.predict_row(&[3.0, 0.0]), 0.0);
        assert_eq!(t.predict_row(&[3.0, 1.0]), 10.0);
    }

    #[test]
    fn max_features_resolution() {
        assert_eq!(MaxFeatures::All.resolve(10), 10);
        assert_eq!(MaxFeatures::Sqrt.resolve(10), 4);
        assert_eq!(MaxFeatures::Third.resolve(10), 4);
        assert_eq!(MaxFeatures::Count(3).resolve(10), 3);
        assert_eq!(MaxFeatures::Count(99).resolve(10), 10);
        assert_eq!(MaxFeatures::Count(0).resolve(10), 1);
    }

    #[test]
    fn deterministic_with_feature_subsampling() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 5) as f64, (i % 7) as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] + 2.0 * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let params = TreeParams {
            max_features: MaxFeatures::Count(2),
            ..Default::default()
        };
        let mut a = DecisionTree::new(params, 5);
        let mut b = DecisionTree::new(params, 5);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_eq!(a, b);
    }
}
