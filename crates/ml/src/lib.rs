//! # ml — a from-scratch machine-learning substrate
//!
//! The paper trains its energy/time models with scikit-learn (§5.2.1:
//! Linear, Lasso, SVR-RBF, and Random Forest regression, selected by
//! accuracy, with grid-search hyper-parameter tuning and leave-one-out
//! cross-validation). Rust has no equivalent batteries-included stack —
//! that gap is the main reason this paper sits at repro-band 2 — so this
//! crate implements the needed subset from scratch:
//!
//! * [`dataset`] — a row-major matrix and dataset container;
//! * [`scaler`] — feature standardization;
//! * [`linear`] — ordinary least squares (normal equations);
//! * [`lasso`] — L1-regularized regression via coordinate descent;
//! * [`svr`] — ε-insensitive support-vector regression with an RBF kernel,
//!   trained by SMO;
//! * [`tree`] / [`forest`] — CART regression trees and bagged random
//!   forests with feature subsampling (the model the paper selects);
//! * [`cv`] — K-fold and leave-one-group-out cross-validation (the paper's
//!   LOOCV over input configurations);
//! * [`grid_search`] — exhaustive hyper-parameter search;
//! * [`metrics`] — MAPE (the paper's headline metric), MAE, MSE, RMSE, R².
//!
//! Every stochastic component (bootstrap, feature subsampling, splits)
//! draws from caller-seeded ChaCha RNGs, so model training is
//! deterministic and the paper's experiments reproduce bit-for-bit.

pub mod cv;
pub mod dataset;
pub mod flat;
pub mod forest;
pub mod grid_search;
pub mod importance;
pub mod lasso;
pub mod linear;
pub mod metrics;
pub mod scaler;
pub mod svr;
pub mod tree;

pub use dataset::{Dataset, Matrix};
pub use flat::FlatForest;
pub use forest::{RandomForest, RandomForestParams};
pub use metrics::{mae, mape, mse, r2, rmse};

/// A trainable regression model mapping feature rows to scalar targets.
///
/// `fit` consumes a design matrix and target vector; `predict_row` scores a
/// single feature row. Implementations must be deterministic given their
/// construction-time seeds.
pub trait Regressor: Send + Sync {
    /// Fits the model. Panics on dimension mismatches (programming errors).
    fn fit(&mut self, x: &Matrix, y: &[f64]);

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    /// Panics if called before `fit` or with the wrong number of features.
    fn predict_row(&self, row: &[f64]) -> f64;

    /// Predicts targets for every row of `x` into a caller-owned buffer
    /// (cleared and refilled). One virtual dispatch serves the whole batch,
    /// and steady-state callers reuse `out` across calls instead of
    /// allocating per batch. Implementations may override with a layout
    /// better than row-at-a-time (the forest walks tree-major) but must
    /// stay bit-identical to `predict_row` per row.
    fn predict_batch(&self, x: &Matrix, out: &mut Vec<f64>) {
        out.clear();
        out.reserve(x.rows());
        out.extend(x.iter_rows().map(|row| self.predict_row(row)));
    }

    /// Predicts targets for every row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<f64> {
        let mut out = Vec::with_capacity(x.rows());
        self.predict_batch(x, &mut out);
        out
    }
}
