//! Lasso regression via cyclic coordinate descent.
//!
//! Minimizes `(1/2n)·‖y − Xw − b‖² + α·‖w‖₁` with the standard
//! soft-thresholding update, iterating until the maximum coefficient change
//! drops below tolerance. Features are standardized internally (and the
//! learned weights folded back), so the penalty treats features evenly —
//! the same convention scikit-learn's `Lasso` uses after a `StandardScaler`.

use serde::{Deserialize, Serialize};

use crate::dataset::Matrix;
use crate::scaler::StandardScaler;
use crate::Regressor;

/// L1-regularized linear regression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lasso {
    /// L1 penalty strength.
    pub alpha: f64,
    /// Convergence tolerance on the max coefficient update.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    weights: Vec<f64>,
    intercept: f64,
    scaler: Option<StandardScaler>,
    fitted: bool,
}

impl Lasso {
    /// Lasso with penalty `alpha` and default convergence settings.
    ///
    /// # Panics
    /// Panics on negative `alpha`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be ≥ 0");
        Lasso {
            alpha,
            tol: 1e-8,
            max_iter: 10_000,
            weights: Vec::new(),
            intercept: 0.0,
            scaler: None,
            fitted: false,
        }
    }

    /// Fitted coefficients in the *standardized* feature space.
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }

    /// Number of exactly-zero coefficients (sparsity induced by the L1
    /// penalty).
    pub fn n_zero_coefficients(&self) -> usize {
        self.weights.iter().filter(|w| **w == 0.0).count()
    }
}

fn soft_threshold(z: f64, gamma: f64) -> f64 {
    if z > gamma {
        z - gamma
    } else if z < -gamma {
        z + gamma
    } else {
        0.0
    }
}

impl Regressor for Lasso {
    fn fit(&mut self, x_raw: &Matrix, y: &[f64]) {
        assert_eq!(x_raw.rows(), y.len(), "x/y length mismatch");
        assert!(x_raw.rows() > 0, "cannot fit on an empty dataset");
        let scaler = StandardScaler::fit(x_raw);
        let x = scaler.transform(x_raw);
        let n = x.rows();
        let p = x.cols();
        let nf = n as f64;

        let y_mean = y.iter().sum::<f64>() / nf;
        let mut w = vec![0.0; p];
        // Residual r = y_centered - Xw; starts at y_centered since w = 0.
        let mut r: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
        // Column squared norms (constant across iterations).
        let col_sq: Vec<f64> = (0..p)
            .map(|j| x.iter_rows().map(|row| row[j] * row[j]).sum::<f64>())
            .collect();

        for _ in 0..self.max_iter {
            let mut max_delta: f64 = 0.0;
            for j in 0..p {
                if col_sq[j] == 0.0 {
                    continue;
                }
                let w_old = w[j];
                // ρ = xⱼ·(r + xⱼ wⱼ)
                let mut rho = 0.0;
                for (i, row) in x.iter_rows().enumerate() {
                    rho += row[j] * (r[i] + row[j] * w_old);
                }
                let w_new = soft_threshold(rho / nf, self.alpha) / (col_sq[j] / nf);
                if w_new != w_old {
                    let delta = w_new - w_old;
                    for (i, row) in x.iter_rows().enumerate() {
                        r[i] -= row[j] * delta;
                    }
                    w[j] = w_new;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < self.tol {
                break;
            }
        }

        self.weights = w;
        self.intercept = y_mean;
        self.scaler = Some(scaler);
        self.fitted = true;
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(self.fitted, "predict before fit");
        let scaler = self.scaler.as_ref().expect("fitted");
        let mut buf = row.to_vec();
        scaler.transform_row(&mut buf);
        self.intercept
            + self
                .weights
                .iter()
                .zip(&buf)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> (Matrix, Vec<f64>) {
        // y = 4x₀ + 0·x₁ + 1
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let a = i as f64 / 4.0;
                let b = ((i * 7919) % 13) as f64; // irrelevant feature
                vec![a, b]
            })
            .collect();
        let y = rows.iter().map(|r| 4.0 * r[0] + 1.0).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn small_alpha_recovers_regression() {
        let (x, y) = linear_data();
        let mut m = Lasso::new(1e-6);
        m.fit(&x, &y);
        for (i, r) in x.iter_rows().enumerate().take(5) {
            assert!((m.predict_row(r) - y[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn l1_penalty_zeroes_irrelevant_feature() {
        let (x, y) = linear_data();
        let mut m = Lasso::new(0.1);
        m.fit(&x, &y);
        // Feature 1 carries no signal; the L1 penalty must kill it.
        assert_eq!(m.coefficients()[1], 0.0);
        assert!(m.coefficients()[0].abs() > 1.0);
        assert_eq!(m.n_zero_coefficients(), 1);
    }

    #[test]
    fn huge_alpha_predicts_mean() {
        let (x, y) = linear_data();
        let mut m = Lasso::new(1e6);
        m.fit(&x, &y);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((m.predict_row(x.row(0)) - mean).abs() < 1e-9);
        assert_eq!(m.n_zero_coefficients(), 2);
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be ≥ 0")]
    fn negative_alpha_rejected() {
        let _ = Lasso::new(-1.0);
    }
}
