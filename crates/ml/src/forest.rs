//! Random Forest regression.
//!
//! Bagged CART trees with per-split feature subsampling, averaged at
//! prediction time. This is the model the paper selects for both the
//! speedup and normalized-energy domain-specific models (§5.2.1: "Random
//! Forest achieves the maximum accuracy for both"), with the grid-searched
//! hyper-parameters `max_depth`, `n_estimators`, and `max_features`.
//!
//! Trees are trained in parallel with rayon; each tree draws its bootstrap
//! sample and split-feature subsets from its own ChaCha stream derived from
//! the forest seed, so the fitted model is independent of thread schedule.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, Matrix};
use crate::tree::{DecisionTree, MaxFeatures, TreeParams};
use crate::Regressor;

/// Random Forest hyper-parameters (the paper's grid-search space).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestParams {
    /// Number of trees (`n_estimators`; scikit-learn default 100).
    pub n_estimators: usize,
    /// Per-tree growth controls.
    pub tree: TreeParams,
    /// Draw bootstrap samples (true for classic bagging).
    pub bootstrap: bool,
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams {
            n_estimators: 100,
            tree: TreeParams::default(),
            bootstrap: true,
        }
    }
}

/// A fitted Random Forest regressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    /// Hyper-parameters.
    pub params: RandomForestParams,
    seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Forest with explicit parameters and seed.
    ///
    /// # Panics
    /// Panics if `n_estimators == 0`.
    pub fn new(params: RandomForestParams, seed: u64) -> Self {
        assert!(params.n_estimators > 0, "need at least one tree");
        RandomForest {
            params,
            seed,
            trees: Vec::new(),
        }
    }

    /// Forest with scikit-learn-like defaults (100 trees, unlimited depth,
    /// all features per split, bootstrap on) — the configuration the
    /// paper's grid search lands on.
    pub fn with_defaults(seed: u64) -> Self {
        RandomForest::new(RandomForestParams::default(), seed)
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Per-tree predictions for one row (useful for uncertainty probes).
    ///
    /// # Panics
    /// Panics before `fit`.
    pub fn tree_predictions(&self, row: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.tree_predictions_into(row, &mut out);
        out
    }

    /// [`RandomForest::tree_predictions`] into a caller-owned buffer
    /// (cleared and refilled) — no allocation in steady state.
    ///
    /// # Panics
    /// Panics before `fit`.
    pub fn tree_predictions_into(&self, row: &[f64], out: &mut Vec<f64>) {
        assert!(!self.trees.is_empty(), "predict before fit");
        out.clear();
        out.extend(self.trees.iter().map(|t| t.predict_row(row)));
    }

    /// Fitted trees (compile hook for [`crate::flat::FlatForest`]).
    pub(crate) fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }
}

impl Regressor for RandomForest {
    fn fit(&mut self, x: &Matrix, y: &[f64]) {
        assert_eq!(x.rows(), y.len(), "x/y length mismatch");
        assert!(x.rows() > 0, "cannot fit on an empty dataset");
        let ds = Dataset::new(x.clone(), y.to_vec());
        let params = self.params;
        let seed = self.seed;
        self.trees = (0..params.n_estimators)
            .into_par_iter()
            .map(|t| {
                // Independent, schedule-free stream per tree.
                let tree_seed = seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(t as u64);
                let mut tree = DecisionTree::new(params.tree, tree_seed);
                if params.bootstrap {
                    let mut rng = ChaCha8Rng::seed_from_u64(tree_seed ^ 0xB0075);
                    let sample = ds.bootstrap(&mut rng);
                    tree.fit(&sample.x, &sample.y);
                } else {
                    tree.fit(x, y);
                }
                tree
            })
            .collect();
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "predict before fit");
        let s: f64 = self.trees.iter().map(|t| t.predict_row(row)).sum();
        s / self.trees.len() as f64
    }

    /// Tree-major batched prediction: each tree scores every row before the
    /// next tree runs, keeping one tree hot in cache across the batch.
    /// Per-row accumulation stays in tree order, so results are
    /// bit-identical to `predict_row` per row.
    fn predict_batch(&self, x: &Matrix, out: &mut Vec<f64>) {
        assert!(!self.trees.is_empty(), "predict before fit");
        out.clear();
        out.resize(x.rows(), 0.0);
        for tree in &self.trees {
            for (acc, row) in out.iter_mut().zip(x.iter_rows()) {
                *acc += tree.predict_row(row);
            }
        }
        let n = self.trees.len() as f64;
        for acc in out.iter_mut() {
            *acc /= n;
        }
    }
}

/// Convenience: a forest whose trees see ⌈p/3⌉ features per split — the
/// classic regression-forest setting, used by the ablation benches.
pub fn regression_forest_third(n_estimators: usize, seed: u64) -> RandomForest {
    RandomForest::new(
        RandomForestParams {
            n_estimators,
            tree: TreeParams {
                max_features: MaxFeatures::Third,
                ..Default::default()
            },
            bootstrap: true,
        },
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2;

    fn friedman_like(n: usize) -> (Matrix, Vec<f64>) {
        // Deterministic quasi-random design over 3 features.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = ((i * 7919) % 1000) as f64 / 1000.0;
                let b = ((i * 104729) % 1000) as f64 / 1000.0;
                let c = ((i * 1299709) % 1000) as f64 / 1000.0;
                vec![a, b, c]
            })
            .collect();
        let y = rows
            .iter()
            .map(|r| 10.0 * (std::f64::consts::PI * r[0]).sin() + 5.0 * r[1] * r[1] + 2.0 * r[2])
            .collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn fits_nonlinear_function_well() {
        let (x, y) = friedman_like(400);
        let mut f = RandomForest::new(
            RandomForestParams {
                n_estimators: 30,
                ..Default::default()
            },
            42,
        );
        f.fit(&x, &y);
        let pred = f.predict(&x);
        assert!(r2(&y, &pred) > 0.95, "in-sample R² should be high");
    }

    #[test]
    fn deterministic_across_fits() {
        let (x, y) = friedman_like(100);
        let params = RandomForestParams {
            n_estimators: 10,
            ..Default::default()
        };
        let mut a = RandomForest::new(params, 7);
        let mut b = RandomForest::new(params, 7);
        a.fit(&x, &y);
        b.fit(&x, &y);
        let pa = a.predict(&x);
        let pb = b.predict(&x);
        assert_eq!(pa, pb, "same seed ⇒ identical forests");
    }

    #[test]
    fn different_seeds_give_different_forests() {
        let (x, y) = friedman_like(100);
        let params = RandomForestParams {
            n_estimators: 5,
            ..Default::default()
        };
        let mut a = RandomForest::new(params, 1);
        let mut b = RandomForest::new(params, 2);
        a.fit(&x, &y);
        b.fit(&x, &y);
        assert_ne!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn prediction_is_tree_mean() {
        let (x, y) = friedman_like(80);
        let mut f = RandomForest::new(
            RandomForestParams {
                n_estimators: 7,
                ..Default::default()
            },
            3,
        );
        f.fit(&x, &y);
        let row = x.row(5);
        let per_tree = f.tree_predictions(row);
        let mean = per_tree.iter().sum::<f64>() / per_tree.len() as f64;
        assert!((f.predict_row(row) - mean).abs() < 1e-12);
        assert_eq!(f.n_trees(), 7);
    }

    #[test]
    fn forest_beats_single_tree_on_noisy_data() {
        // Bagging reduces variance: train on noisy targets, evaluate against
        // the clean function. A single deep tree memorizes the noise.
        let (x, y_clean) = friedman_like(600);
        let y_noisy: Vec<f64> = y_clean
            .iter()
            .enumerate()
            .map(|(i, v)| {
                // Deterministic pseudo-noise in [-1.5, 1.5].
                let u = ((i * 2654435761) % 1000) as f64 / 1000.0;
                v + (u - 0.5) * 3.0
            })
            .collect();
        let ds = Dataset::new(x, y_noisy);
        let (train, test_noisy) = ds.train_test_split(0.3, 11);
        // Clean targets for the test rows: recompute from the features.
        let test_clean: Vec<f64> = test_noisy
            .x
            .iter_rows()
            .map(|r| 10.0 * (std::f64::consts::PI * r[0]).sin() + 5.0 * r[1] * r[1] + 2.0 * r[2])
            .collect();

        let mut tree = DecisionTree::new(TreeParams::default(), 0);
        tree.fit(&train.x, &train.y);
        let tree_pred: Vec<f64> = test_noisy
            .x
            .iter_rows()
            .map(|r| tree.predict_row(r))
            .collect();

        let mut forest = RandomForest::new(
            RandomForestParams {
                n_estimators: 40,
                ..Default::default()
            },
            0,
        );
        forest.fit(&train.x, &train.y);
        let forest_pred = forest.predict(&test_noisy.x);

        let r2_tree = r2(&test_clean, &tree_pred);
        let r2_forest = r2(&test_clean, &forest_pred);
        assert!(
            r2_forest > r2_tree,
            "bagging should beat one deep tree on noisy data: {r2_forest} vs {r2_tree}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let _ = RandomForest::new(
            RandomForestParams {
                n_estimators: 0,
                ..Default::default()
            },
            0,
        );
    }
}
